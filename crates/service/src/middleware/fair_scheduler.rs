//! Deficit-round-robin fair scheduling across tenants.
//!
//! The pipeline is synchronous — each request occupies its calling thread —
//! so the only lever a middleware has over *ordering* is which blocked
//! threads it releases next.  [`FairScheduler`] parks every arriving request
//! in its tenant's pending queue and grants execution slots by
//! deficit-round-robin over pending request bytes: each backlogged tenant's
//! deficit grows by one quantum per round, a request runs when its tenant's
//! deficit covers its cost, and per-tenant in-flight bytes are capped.  A hot
//! tenant with a thousand queued megabytes therefore drains at the same
//! byte rate as a cold tenant with three queued requests — the cold tenant's
//! requests overtake the hot backlog instead of queueing behind it.

use crate::middleware::{Middleware, Next, ServiceResult};
use crate::RequestEnvelope;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One parked request's wait handle: granted flag + wake signal.
///
/// Uses `std::sync` (not the workspace's `parking_lot` shim, which has no
/// condvar) and recovers from poisoning: a panic elsewhere must not wedge
/// every parked tenant.
#[derive(Debug, Default)]
struct Ticket {
    granted: Mutex<bool>,
    wake: Condvar,
}

impl Ticket {
    fn grant(&self) {
        let mut granted = self.granted.lock().unwrap_or_else(|e| e.into_inner());
        *granted = true;
        self.wake.notify_one();
    }

    fn wait(&self) {
        let mut granted = self.granted.lock().unwrap_or_else(|e| e.into_inner());
        while !*granted {
            granted = self.wake.wait(granted).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// One queued request: its wait handle and its byte cost.
#[derive(Debug)]
struct Pending {
    ticket: Arc<Ticket>,
    cost: u64,
}

/// One tenant's scheduling state.
#[derive(Debug, Default)]
struct TenantQueue {
    /// DRR deficit in bytes: how much service this tenant is currently owed.
    deficit: u64,
    /// Bytes of this tenant's requests granted but not yet completed.
    inflight_bytes: u64,
    /// Parked requests, arrival order.
    pending: VecDeque<Pending>,
    /// Whether the tenant currently sits in the round-robin ring.
    in_round: bool,
    /// Request bytes completed for this tenant (observability/fairness).
    completed_bytes: u64,
}

/// Shared scheduler state behind one mutex.
#[derive(Debug, Default)]
struct SchedState {
    tenants: HashMap<String, TenantQueue>,
    /// Round-robin ring of tenants with pending work.
    round: VecDeque<String>,
    /// Granted-but-not-completed requests (bounded by `max_concurrent`).
    running: usize,
}

/// Deficit-round-robin fair scheduler over per-tenant pending-byte queues.
///
/// Three knobs:
///
/// * `quantum_bytes` — service a backlogged tenant earns per round; the
///   byte granularity of fairness.
/// * `max_tenant_inflight_bytes` — cap on one tenant's granted-but-running
///   bytes, so a tenant cannot occupy every execution slot between rounds.
///   A request larger than the cap still runs when the tenant is otherwise
///   idle (the cap bounds aggregate occupancy, not request size).
/// * `max_concurrent` — global execution slots; requests beyond it park
///   regardless of tenant.
///
/// Admission control above this layer bounds how many requests may be
/// *parked* here at all; see
/// [`AdmissionControl`](crate::middleware::AdmissionControl).
///
/// # Example
///
/// ```
/// use sigma_service::middleware::FairScheduler;
///
/// let sched = FairScheduler::new(64 * 1024, 256 * 1024, 8);
/// assert_eq!(sched.quantum_bytes(), 64 * 1024);
/// assert!(sched.completed_bytes().is_empty(), "nothing scheduled yet");
/// ```
#[derive(Debug)]
pub struct FairScheduler {
    quantum_bytes: u64,
    max_tenant_inflight_bytes: u64,
    max_concurrent: usize,
    state: Mutex<SchedState>,
    granted: AtomicU64,
}

impl FairScheduler {
    /// Creates a scheduler.  All three bounds are clamped to at least 1 —
    /// a zero quantum would never grant, zero slots would park everything
    /// forever.
    pub fn new(quantum_bytes: u64, max_tenant_inflight_bytes: u64, max_concurrent: usize) -> Self {
        FairScheduler {
            quantum_bytes: quantum_bytes.max(1),
            max_tenant_inflight_bytes: max_tenant_inflight_bytes.max(1),
            max_concurrent: max_concurrent.max(1),
            state: Mutex::new(SchedState::default()),
            granted: AtomicU64::new(0),
        }
    }

    /// The per-round byte quantum.
    pub fn quantum_bytes(&self) -> u64 {
        self.quantum_bytes
    }

    /// The per-tenant in-flight byte cap.
    pub fn max_tenant_inflight_bytes(&self) -> u64 {
        self.max_tenant_inflight_bytes
    }

    /// The global execution-slot count.
    pub fn max_concurrent(&self) -> usize {
        self.max_concurrent
    }

    /// Requests granted so far.
    pub fn granted_count(&self) -> u64 {
        self.granted.load(Ordering::Relaxed)
    }

    /// Request bytes completed per tenant so far.
    ///
    /// Snapshotting this during a contended window and feeding the values to
    /// [`sigma_metrics::jain_fairness_index`] measures how evenly the
    /// scheduler divided service.
    pub fn completed_bytes(&self) -> BTreeMap<String, u64> {
        let state = self.lock_state();
        state
            .tenants
            .iter()
            .filter(|(_, q)| q.completed_bytes > 0)
            .map(|(t, q)| (t.clone(), q.completed_bytes))
            .collect()
    }

    /// Parked requests for `tenant` right now.
    pub fn pending_requests(&self, tenant: &str) -> usize {
        self.lock_state()
            .tenants
            .get(tenant)
            .map(|q| q.pending.len())
            .unwrap_or(0)
    }

    /// Granted-but-running bytes for `tenant` right now.
    pub fn inflight_bytes(&self, tenant: &str) -> u64 {
        self.lock_state()
            .tenants
            .get(tenant)
            .map(|q| q.inflight_bytes)
            .unwrap_or(0)
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Parks a request and returns its wait handle.
    fn enqueue(&self, tenant: &str, cost: u64) -> Arc<Ticket> {
        let ticket = Arc::new(Ticket::default());
        let mut state = self.lock_state();
        let queue = state.tenants.entry(tenant.to_string()).or_default();
        queue.pending.push_back(Pending {
            ticket: ticket.clone(),
            cost,
        });
        if !queue.in_round {
            queue.in_round = true;
            state.round.push_back(tenant.to_string());
        }
        self.dispatch(&mut state);
        ticket
    }

    /// Marks a granted request complete and hands its slot to the next one.
    fn complete(&self, tenant: &str, cost: u64) {
        let mut state = self.lock_state();
        state.running = state.running.saturating_sub(1);
        if let Some(queue) = state.tenants.get_mut(tenant) {
            queue.inflight_bytes = queue.inflight_bytes.saturating_sub(cost);
            queue.completed_bytes += cost;
        }
        self.dispatch(&mut state);
    }

    /// The DRR grant pass.  Called with the state lock held, on every
    /// enqueue and every completion.
    ///
    /// Processes tenants from the front of the ring: tops up the tenant's
    /// deficit (only when the tenant is blocked on deficit, not on its
    /// in-flight cap — a cap-blocked tenant must not bank unbounded credit),
    /// grants as many of its head requests as deficit, cap and free slots
    /// allow, then rotates it to the back.  Stops when the slots are full or
    /// a full circuit granted nothing; if the scheduler is completely idle
    /// at that point, the smallest deficit gap is paid directly so an
    /// oversized request on an idle service starts now rather than after
    /// `cost / quantum` ring circuits.
    fn dispatch(&self, state: &mut SchedState) {
        let mut fruitless = 0usize;
        while state.running < self.max_concurrent && !state.round.is_empty() {
            let tenant = state.round.pop_front().expect("ring non-empty inside loop");
            let Some(queue) = state.tenants.get_mut(&tenant) else {
                continue;
            };
            if queue.pending.is_empty() {
                // Tenant went idle: leave the ring and forfeit residual
                // credit (classic DRR — credit never outlives the backlog).
                queue.deficit = 0;
                queue.in_round = false;
                continue;
            }
            let head_cost = queue.pending.front().expect("non-empty").cost;
            let head_fits_cap = queue.inflight_bytes == 0
                || queue.inflight_bytes.saturating_add(head_cost) <= self.max_tenant_inflight_bytes;
            if head_fits_cap {
                queue.deficit = queue.deficit.saturating_add(self.quantum_bytes);
            }
            let mut granted_here = 0usize;
            while state.running < self.max_concurrent {
                let Some(head) = queue.pending.front() else {
                    break;
                };
                let cost = head.cost;
                let fits_cap = queue.inflight_bytes == 0
                    || queue.inflight_bytes.saturating_add(cost) <= self.max_tenant_inflight_bytes;
                if !fits_cap || queue.deficit < cost {
                    break;
                }
                let pending = queue.pending.pop_front().expect("non-empty");
                queue.deficit -= cost;
                queue.inflight_bytes += cost;
                state.running += 1;
                self.granted.fetch_add(1, Ordering::Relaxed);
                pending.ticket.grant();
                granted_here += 1;
            }
            if queue.pending.is_empty() {
                queue.deficit = 0;
                queue.in_round = false;
            } else {
                state.round.push_back(tenant);
            }
            if granted_here > 0 {
                fruitless = 0;
                continue;
            }
            fruitless += 1;
            if fruitless <= state.round.len() {
                continue;
            }
            // A full circuit granted nothing.
            if state.running > 0 {
                // Running work will re-dispatch on completion (and every
                // fruitless circuit already topped up deficits).
                return;
            }
            // Idle scheduler, yet nothing grantable: every pending head is
            // blocked on deficit (caps cannot block when nothing is in
            // flight).  Pay the smallest gap directly so the cheapest head
            // starts immediately.
            let mut best: Option<(String, u64)> = None;
            for name in state.round.iter() {
                let Some(q) = state.tenants.get(name) else {
                    continue;
                };
                let Some(head) = q.pending.front() else {
                    continue;
                };
                let gap = head.cost.saturating_sub(q.deficit);
                if best.as_ref().map(|(_, g)| gap < *g).unwrap_or(true) {
                    best = Some((name.clone(), gap));
                }
            }
            let Some((name, gap)) = best else { return };
            if let Some(q) = state.tenants.get_mut(&name) {
                q.deficit = q.deficit.saturating_add(gap);
            }
            fruitless = 0;
        }
    }
}

/// Releases the slot/bytes of a granted request on every exit path —
/// response, error, or a panic unwinding through the stack.
struct CompletionGuard<'a> {
    scheduler: &'a FairScheduler,
    tenant: String,
    cost: u64,
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        self.scheduler.complete(&self.tenant, self.cost);
    }
}

impl Middleware for FairScheduler {
    fn name(&self) -> &'static str {
        "fair-scheduler"
    }

    fn handle(&self, req: RequestEnvelope, next: &dyn Next) -> ServiceResult {
        // Zero-payload operations (restore, delete, stats) cost one byte:
        // they must still take a scheduling turn, or a tenant could bypass
        // fairness entirely with metadata traffic.
        let cost = (req.payload.len() as u64).max(1);
        let tenant = req.tenant.clone();
        let ticket = self.enqueue(&tenant, cost);
        ticket.wait();
        let _guard = CompletionGuard {
            scheduler: self,
            tenant,
            cost,
        };
        next.run(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Operation, PipelineExecutor, ResponseEnvelope};
    use parking_lot::Mutex as PlMutex;
    use std::sync::mpsc;
    use std::time::Duration;

    fn backup(id: u64, tenant: &str, bytes: usize) -> RequestEnvelope {
        RequestEnvelope::new(
            id,
            tenant,
            Operation::Backup {
                file_name: format!("f{}", id),
                generation: 0,
            },
        )
        .with_payload(vec![0u8; bytes])
    }

    /// Backend that records the tenant order of execution and can be gated.
    struct Recorder {
        order: PlMutex<Vec<String>>,
        gate: PlMutex<mpsc::Receiver<()>>,
    }

    #[test]
    fn single_tenant_requests_flow_through() {
        let sched = Arc::new(FairScheduler::new(1024, 4096, 2));
        let p = PipelineExecutor::new(
            vec![sched.clone()],
            Arc::new(|r: RequestEnvelope| Ok(ResponseEnvelope::ok(r.request_id))),
        );
        for i in 0..5 {
            assert!(p.execute(backup(i, "t", 100)).is_ok());
        }
        assert_eq!(sched.granted_count(), 5);
        assert_eq!(sched.completed_bytes()["t"], 500);
        assert_eq!(sched.pending_requests("t"), 0);
        assert_eq!(sched.inflight_bytes("t"), 0);
    }

    #[test]
    fn oversized_request_runs_when_tenant_is_idle() {
        // Cost exceeds both the quantum and the per-tenant cap; an idle
        // scheduler must still run it (bounds cap aggregates, not size).
        let sched = Arc::new(FairScheduler::new(16, 64, 1));
        let p = PipelineExecutor::new(
            vec![sched.clone()],
            Arc::new(|r: RequestEnvelope| Ok(ResponseEnvelope::ok(r.request_id))),
        );
        assert!(p.execute(backup(1, "t", 10_000)).is_ok());
        assert_eq!(sched.completed_bytes()["t"], 10_000);
    }

    #[test]
    fn drr_interleaves_a_hot_tenant_with_a_cold_one() {
        // One execution slot; the hot tenant parks 6 requests before the
        // cold tenant parks 3.  Strict FIFO would run all of hot first; DRR
        // with equal quanta must alternate once both are backlogged.
        let (gate_tx, gate_rx) = mpsc::channel();
        let recorder = Arc::new(Recorder {
            order: PlMutex::new(Vec::new()),
            gate: PlMutex::new(gate_rx),
        });
        let sched = Arc::new(FairScheduler::new(100, 1000, 1));
        let p = Arc::new(PipelineExecutor::new(
            vec![sched.clone()],
            Arc::new({
                let recorder = recorder.clone();
                move |r: RequestEnvelope| {
                    recorder.order.lock().push(r.tenant.clone());
                    recorder.gate.lock().recv().unwrap();
                    Ok(ResponseEnvelope::ok(r.request_id))
                }
            }),
        ));

        // Request 0 occupies the slot and blocks on the gate; everything
        // else parks behind it in a known arrival order.
        let first = {
            let p = p.clone();
            std::thread::spawn(move || p.execute(backup(0, "warmup", 100)))
        };
        while sched.granted_count() == 0 {
            std::thread::yield_now();
        }

        let mut workers = Vec::new();
        for i in 0..6 {
            let p = p.clone();
            workers.push(std::thread::spawn(move || {
                p.execute(backup(100 + i, "hot", 100))
            }));
            // Deterministic arrival order within the hot queue.
            while sched.pending_requests("hot") < (i + 1) as usize {
                std::thread::yield_now();
            }
        }
        for i in 0..3 {
            let p = p.clone();
            workers.push(std::thread::spawn(move || {
                p.execute(backup(200 + i, "cold", 100))
            }));
            while sched.pending_requests("cold") < (i + 1) as usize {
                std::thread::yield_now();
            }
        }

        // Release everything, one grant at a time.
        for _ in 0..10 {
            gate_tx.send(()).unwrap();
        }
        assert!(first.join().unwrap().is_ok());
        for w in workers {
            assert!(w.join().unwrap().is_ok());
        }

        let order = recorder.order.lock().clone();
        assert_eq!(order.len(), 10);
        // While both tenants are backlogged (execution slots 1..=6 after the
        // warmup), service must alternate rather than drain hot first.
        let contended = &order[1..7];
        let cold_served = contended.iter().filter(|t| *t == "cold").count();
        assert_eq!(
            cold_served, 3,
            "all cold requests overtake the hot backlog: {:?}",
            order
        );
        assert!(
            contended.windows(2).any(|w| w[0] != w[1]),
            "interleaved, not batched: {:?}",
            order
        );
        let done = sched.completed_bytes();
        assert_eq!(done["hot"], 600);
        assert_eq!(done["cold"], 300);
    }

    #[test]
    fn per_tenant_inflight_cap_holds_back_second_request() {
        let (gate_tx, gate_rx) = mpsc::channel();
        let recorder = Arc::new(Recorder {
            order: PlMutex::new(Vec::new()),
            gate: PlMutex::new(gate_rx),
        });
        // Plenty of slots and quantum, but only 100 in-flight bytes per
        // tenant: the second 100-byte request must wait for the first.
        let sched = Arc::new(FairScheduler::new(1000, 100, 8));
        let p = Arc::new(PipelineExecutor::new(
            vec![sched.clone()],
            Arc::new({
                let recorder = recorder.clone();
                move |r: RequestEnvelope| {
                    recorder.order.lock().push(r.tenant.clone());
                    recorder.gate.lock().recv().unwrap();
                    Ok(ResponseEnvelope::ok(r.request_id))
                }
            }),
        ));
        let a = {
            let p = p.clone();
            std::thread::spawn(move || p.execute(backup(1, "t", 100)))
        };
        while sched.inflight_bytes("t") < 100 {
            std::thread::yield_now();
        }
        let b = {
            let p = p.clone();
            std::thread::spawn(move || p.execute(backup(2, "t", 100)))
        };
        while sched.pending_requests("t") < 1 {
            std::thread::yield_now();
        }
        // Give the scheduler a chance to (wrongly) grant the parked request.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(
            sched.inflight_bytes("t"),
            100,
            "cap keeps the second request parked while the first runs"
        );
        assert_eq!(sched.pending_requests("t"), 1);
        gate_tx.send(()).unwrap();
        gate_tx.send(()).unwrap();
        assert!(a.join().unwrap().is_ok());
        assert!(b.join().unwrap().is_ok());
        assert_eq!(sched.completed_bytes()["t"], 200);
    }

    #[test]
    fn slot_released_on_backend_error() {
        let sched = Arc::new(FairScheduler::new(100, 100, 1));
        let p = PipelineExecutor::new(
            vec![sched.clone()],
            Arc::new(|_r: RequestEnvelope| -> ServiceResult {
                Err(sigma_core::SigmaError::FileNotFound(7))
            }),
        );
        let resp = p.execute(backup(1, "t", 50));
        assert_eq!(resp.code, sigma_core::ServiceCode::NotFound);
        // The slot and bytes must be free again: the next request reaches
        // the backend (and its error) instead of parking forever.
        assert_eq!(sched.inflight_bytes("t"), 0);
        let again = p.execute(backup(2, "t", 50));
        assert_eq!(again.code, sigma_core::ServiceCode::NotFound);
        assert_eq!(sched.granted_count(), 2);
        assert_eq!(sched.inflight_bytes("t"), 0);
    }

    #[test]
    fn zero_payload_operations_take_a_turn() {
        let sched = Arc::new(FairScheduler::new(10, 10, 1));
        let p = PipelineExecutor::new(
            vec![sched.clone()],
            Arc::new(|r: RequestEnvelope| Ok(ResponseEnvelope::ok(r.request_id))),
        );
        assert!(p
            .execute(RequestEnvelope::new(1, "t", Operation::Stats))
            .is_ok());
        assert_eq!(sched.completed_bytes()["t"], 1, "stats costs one byte");
    }
}
