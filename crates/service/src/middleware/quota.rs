//! Per-tenant logical-bytes quota, wired to the backup lifecycle's delete
//! accounting.

use crate::middleware::{Middleware, Next, ServiceResult};
use crate::{backend::FREED_BYTES_KEY, RequestEnvelope};
use parking_lot::Mutex;
use sigma_core::SigmaError;
use std::collections::HashMap;

/// Enforces a logical-bytes budget per tenant.
///
/// Admission is a *reservation*: an ingesting request debits its payload size
/// before it runs (so two concurrent requests cannot both squeeze through the
/// last free bytes) and is refunded if any lower layer rejects it.  Deletes
/// credit the budget with the `freed_bytes` figure the
/// [`BackupService`](crate::BackupService) reports — the same accounting the
/// backup lifecycle's delete/GC machinery returns — so expiring old backups
/// makes room for new ones.
///
/// Tenants with no registered budget are unlimited; their usage is still
/// tracked for observability.
///
/// An over-quota request is rejected with [`SigmaError::QuotaExceeded`]
/// (code [`ResourceExhausted`](sigma_core::ServiceCode::ResourceExhausted))
/// before it reaches any lower layer, so cluster accounting is untouched.
#[derive(Debug, Default)]
pub struct TenantQuota {
    budgets: HashMap<String, u64>,
    used: Mutex<HashMap<String, u64>>,
}

impl TenantQuota {
    /// Creates a quota layer with no budgets (everything unlimited).
    pub fn new() -> Self {
        TenantQuota::default()
    }

    /// Registers (or replaces) a tenant's logical-bytes budget.
    pub fn budget(mut self, tenant: impl Into<String>, logical_bytes: u64) -> Self {
        self.budgets.insert(tenant.into(), logical_bytes);
        self
    }

    /// The tenant's configured budget, if any.
    pub fn budget_of(&self, tenant: &str) -> Option<u64> {
        self.budgets.get(tenant).copied()
    }

    /// Logical bytes currently accounted to the tenant.
    pub fn usage(&self, tenant: &str) -> u64 {
        self.used.lock().get(tenant).copied().unwrap_or(0)
    }

    /// Reserves `requested` bytes for the tenant.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::QuotaExceeded`] without reserving anything when
    /// the tenant's remaining budget cannot cover the request.
    fn reserve(&self, tenant: &str, requested: u64) -> Result<(), SigmaError> {
        let mut used = self.used.lock();
        let current = used.get(tenant).copied().unwrap_or(0);
        if let Some(&budget) = self.budgets.get(tenant) {
            let remaining = budget.saturating_sub(current);
            if requested > remaining {
                return Err(SigmaError::QuotaExceeded {
                    tenant: tenant.to_string(),
                    requested_bytes: requested,
                    remaining_bytes: remaining,
                });
            }
        }
        *used.entry(tenant.to_string()).or_insert(0) = current + requested;
        Ok(())
    }

    /// Returns `bytes` to the tenant's budget (refund or delete credit).
    fn credit(&self, tenant: &str, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let mut used = self.used.lock();
        if let Some(u) = used.get_mut(tenant) {
            *u = u.saturating_sub(bytes);
        }
    }
}

impl Middleware for TenantQuota {
    fn name(&self) -> &'static str {
        "quota"
    }

    fn handle(&self, req: RequestEnvelope, next: &dyn Next) -> ServiceResult {
        let tenant = req.tenant.clone();
        let reserved = if req.operation.ingests() {
            let requested = req.payload.len() as u64;
            self.reserve(&tenant, requested)?;
            requested
        } else {
            0
        };
        match next.run(req) {
            Ok(resp) => {
                if !resp.is_ok() {
                    // A lower layer rejected via envelope rather than error:
                    // the reservation must not leak.
                    self.credit(&tenant, reserved);
                } else if let Some(freed) = resp.metadata_u64(FREED_BYTES_KEY) {
                    self.credit(&tenant, freed);
                }
                Ok(resp)
            }
            Err(err) => {
                self.credit(&tenant, reserved);
                Err(err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Operation, PipelineExecutor, ResponseEnvelope};
    use sigma_core::ServiceCode;
    use std::sync::Arc;

    fn backup(id: u64, bytes: usize) -> RequestEnvelope {
        RequestEnvelope::new(
            id,
            "acme",
            Operation::Backup {
                file_name: format!("f{}", id),
                generation: 0,
            },
        )
        .with_payload(vec![0u8; bytes])
    }

    #[test]
    fn reservation_rejects_over_budget_and_admits_within() {
        let quota = Arc::new(TenantQuota::new().budget("acme", 1000));
        let p = PipelineExecutor::new(
            vec![quota.clone()],
            Arc::new(|r: RequestEnvelope| Ok(ResponseEnvelope::ok(r.request_id))),
        );
        assert!(p.execute(backup(1, 600)).is_ok());
        assert_eq!(quota.usage("acme"), 600);
        let over = p.execute(backup(2, 600));
        assert_eq!(over.code, ServiceCode::ResourceExhausted);
        assert!(over.message.contains("400"), "names the remaining bytes");
        assert_eq!(quota.usage("acme"), 600, "failed request reserved nothing");
        assert!(p.execute(backup(3, 400)).is_ok());
        assert_eq!(quota.usage("acme"), 1000);
    }

    #[test]
    fn backend_failure_refunds_the_reservation() {
        let quota = Arc::new(TenantQuota::new().budget("acme", 1000));
        let p = PipelineExecutor::new(
            vec![quota.clone()],
            Arc::new(|_r: RequestEnvelope| -> ServiceResult { Err(SigmaError::FileNotFound(1)) }),
        );
        let resp = p.execute(backup(1, 800));
        assert_eq!(resp.code, ServiceCode::NotFound);
        assert_eq!(quota.usage("acme"), 0, "reservation refunded on error");
    }

    #[test]
    fn delete_credits_freed_bytes() {
        let quota = Arc::new(TenantQuota::new().budget("acme", 1000));
        let p = PipelineExecutor::new(
            vec![quota.clone()],
            Arc::new(|r: RequestEnvelope| {
                let resp = match r.operation {
                    Operation::DeleteFile { .. } => {
                        ResponseEnvelope::ok(r.request_id).with_metadata(FREED_BYTES_KEY, "700")
                    }
                    _ => ResponseEnvelope::ok(r.request_id),
                };
                Ok(resp)
            }),
        );
        assert!(p.execute(backup(1, 900)).is_ok());
        assert_eq!(quota.usage("acme"), 900);
        let del = p.execute(RequestEnvelope::new(
            2,
            "acme",
            Operation::DeleteFile { file_id: 1 },
        ));
        assert!(del.is_ok());
        assert_eq!(quota.usage("acme"), 200, "freed bytes returned to budget");
        assert!(p.execute(backup(3, 700)).is_ok(), "room again after delete");
    }

    #[test]
    fn unbudgeted_tenants_are_unlimited_but_tracked() {
        let quota = Arc::new(TenantQuota::new());
        let p = PipelineExecutor::new(
            vec![quota.clone()],
            Arc::new(|r: RequestEnvelope| Ok(ResponseEnvelope::ok(r.request_id))),
        );
        assert!(p.execute(backup(1, 10_000_000)).is_ok());
        assert_eq!(quota.usage("acme"), 10_000_000);
        assert_eq!(quota.budget_of("acme"), None);
    }

    #[test]
    fn non_ingesting_ops_reserve_nothing() {
        let quota = Arc::new(TenantQuota::new().budget("acme", 10));
        let p = PipelineExecutor::new(
            vec![quota.clone()],
            Arc::new(|r: RequestEnvelope| Ok(ResponseEnvelope::ok(r.request_id))),
        );
        // A huge restore payload-to-be doesn't touch the budget.
        let resp = p.execute(RequestEnvelope::new(
            1,
            "acme",
            Operation::Restore { file_id: 7 },
        ));
        assert!(resp.is_ok());
        assert_eq!(quota.usage("acme"), 0);
    }
}
