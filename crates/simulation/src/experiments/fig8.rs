//! Figure 8: normalized effective deduplication ratio (EDR) vs. cluster size.
//!
//! The headline capacity result: across the four workloads, Σ-Dedupe's EDR stays
//! close to the costly Stateful routing (≥ ~90 % at 128 nodes in the paper) and
//! clearly above Stateless routing and Extreme Binning, whose effectiveness drops as
//! the cluster grows (Extreme Binning suffering most on the VM dataset with its
//! large, skewed files).

use crate::runner::{run_cluster, SimulationConfig};
use serde::{Deserialize, Serialize};
use sigma_baselines::{ExtremeBinningRouter, StatefulRouter, StatelessRouter};
use sigma_core::{DataRouter, SigmaConfig, SimilarityRouter};
use sigma_metrics::report::TextTable;
use sigma_metrics::ClusterRunSummary;
use sigma_workloads::{presets, DatasetTrace, Scale};

/// One measured point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Dataset name.
    pub dataset: String,
    /// Routing scheme name.
    pub scheme: String,
    /// Number of deduplication nodes.
    pub cluster_size: usize,
    /// Normalized effective deduplication ratio.
    pub nedr: f64,
    /// Cluster deduplication ratio (before the skew penalty), for reference.
    pub dedup_ratio: f64,
    /// Storage-usage skew (σ/α).
    pub skew: f64,
}

impl Fig8Row {
    fn from_summary(summary: &ClusterRunSummary, cluster_size: usize) -> Self {
        Fig8Row {
            dataset: summary.dataset.clone(),
            scheme: summary.scheme.clone(),
            cluster_size,
            nedr: summary.nedr(),
            dedup_ratio: summary.dedup_ratio,
            skew: summary.skew,
        }
    }
}

/// Parameters of the experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Params {
    /// Workload scale.
    pub scale: Scale,
    /// Cluster sizes to sweep.
    pub cluster_sizes: Vec<usize>,
    /// Super-chunk size in bytes.  The paper uses 1 MB against hundreds of gigabytes
    /// of data; scaled-down runs should shrink it proportionally so that every node
    /// still receives a statistically meaningful number of routing units (otherwise
    /// the skew term is dominated by placement granularity, not by the scheme).
    pub super_chunk_size: usize,
    /// Also run the no-load-balancing ablation of Σ-Dedupe (`sigma-nobalance`).
    pub include_balance_ablation: bool,
}

impl Default for Fig8Params {
    fn default() -> Self {
        Fig8Params {
            scale: Scale::Small,
            cluster_sizes: vec![1, 2, 4, 8, 16, 32, 64, 128],
            super_chunk_size: 256 << 10,
            include_balance_ablation: false,
        }
    }
}

/// The scheme names of Figure 8 in plotting order.
pub const SCHEMES: [&str; 4] = ["sigma", "stateful", "stateless", "extreme-binning"];

fn make_router(name: &str) -> Box<dyn DataRouter> {
    match name {
        "sigma" => Box::new(SimilarityRouter::new(true)),
        "sigma-nobalance" => Box::new(SimilarityRouter::new(false)),
        "stateless" => Box::new(StatelessRouter::new()),
        "stateful" => Box::new(StatefulRouter::new()),
        "extreme-binning" => Box::new(ExtremeBinningRouter::new()),
        other => panic!("unknown routing scheme {other}"),
    }
}

/// Runs the experiment on all four paper workloads.
pub fn run(params: &Fig8Params) -> Vec<Fig8Row> {
    presets::paper_datasets(params.scale)
        .iter()
        .flat_map(|d| run_on(d, params))
        .collect()
}

/// Runs the experiment on one workload.
pub fn run_on(dataset: &DatasetTrace, params: &Fig8Params) -> Vec<Fig8Row> {
    let mut schemes: Vec<&str> = SCHEMES.to_vec();
    if params.include_balance_ablation {
        schemes.push("sigma-nobalance");
    }
    let mut rows = Vec::new();
    for scheme in schemes {
        if scheme == "extreme-binning" && !dataset.has_file_boundaries {
            continue;
        }
        for &cluster_size in &params.cluster_sizes {
            let sigma = SigmaConfig::builder()
                .super_chunk_size(params.super_chunk_size)
                .build()
                .expect("valid configuration");
            let summary = run_cluster(
                dataset,
                make_router(scheme),
                &SimulationConfig {
                    node_count: cluster_size,
                    sigma,
                    client_streams: 4,
                },
            );
            rows.push(Fig8Row::from_summary(&summary, cluster_size));
        }
    }
    rows
}

/// Renders one dataset panel of the figure (cluster sizes as rows, schemes as
/// columns).
pub fn render(dataset: &str, rows: &[Fig8Row]) -> String {
    let rows: Vec<&Fig8Row> = rows.iter().filter(|r| r.dataset == dataset).collect();
    let mut clusters: Vec<usize> = rows.iter().map(|r| r.cluster_size).collect();
    clusters.sort_unstable();
    clusters.dedup();
    let mut schemes: Vec<String> = rows.iter().map(|r| r.scheme.clone()).collect();
    schemes.sort();
    schemes.dedup();

    let mut headers = vec![format!("{}: nodes", dataset)];
    headers.extend(schemes.iter().cloned());
    let mut table = TextTable::new(headers.iter().map(|s| s.as_str()).collect());
    for c in clusters {
        let mut cells = vec![c.to_string()];
        for scheme in &schemes {
            let cell = rows
                .iter()
                .find(|r| r.cluster_size == c && &r.scheme == scheme)
                .map(|r| format!("{:.3}", r.nedr))
                .unwrap_or_else(|| "-".to_string());
            cells.push(cell);
        }
        table.add_row(cells);
    }
    table.render()
}

/// Checks the paper's headline claims for every dataset's rows at the largest swept
/// cluster size: Σ-Dedupe retains at least `stateful_fraction` of Stateful's EDR
/// (the paper reports ≈ 0.9 at 128 nodes at full scale; scaled-down runs should pass
/// a smaller fraction because Σ-Dedupe's candidate-local balancing needs enough
/// super-chunks per node to converge) and stays at or above Stateless.
pub fn capacity_shape_holds(rows: &[Fig8Row], stateful_fraction: f64) -> bool {
    let datasets: std::collections::HashSet<&str> =
        rows.iter().map(|r| r.dataset.as_str()).collect();
    datasets.iter().all(|dataset| {
        let largest = rows
            .iter()
            .filter(|r| &r.dataset == dataset)
            .map(|r| r.cluster_size)
            .max()
            .unwrap_or(1);
        let of = |scheme: &str| {
            rows.iter()
                .find(|r| &r.dataset == dataset && r.scheme == scheme && r.cluster_size == largest)
                .map(|r| r.nedr)
        };
        let (Some(sigma), Some(stateful), Some(stateless)) =
            (of("sigma"), of("stateful"), of("stateless"))
        else {
            return false;
        };
        sigma >= stateful_fraction * stateful && sigma >= stateless * 0.95
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Fig8Params {
        Fig8Params {
            scale: Scale::Tiny,
            cluster_sizes: vec![4, 16],
            super_chunk_size: 128 << 10,
            include_balance_ablation: false,
        }
    }

    #[test]
    fn sigma_tracks_stateful_and_beats_stateless_on_linux() {
        let dataset = presets::linux_dataset(Scale::Tiny);
        let rows = run_on(&dataset, &tiny_params());
        assert!(capacity_shape_holds(&rows, 0.7), "{:#?}", rows);
    }

    #[test]
    fn extreme_binning_runs_only_on_file_datasets() {
        let web = presets::web_dataset(Scale::Tiny);
        let rows = run_on(&web, &tiny_params());
        assert!(rows.iter().all(|r| r.scheme != "extreme-binning"));
        let linux = presets::linux_dataset(Scale::Tiny);
        let rows = run_on(&linux, &tiny_params());
        assert!(rows.iter().any(|r| r.scheme == "extreme-binning"));
    }

    #[test]
    fn single_node_nedr_is_one_for_exact_schemes() {
        let dataset = presets::web_dataset(Scale::Tiny);
        let rows = run_on(
            &dataset,
            &Fig8Params {
                scale: Scale::Tiny,
                cluster_sizes: vec![1],
                super_chunk_size: 128 << 10,
                include_balance_ablation: false,
            },
        );
        for r in rows.iter().filter(|r| r.scheme != "extreme-binning") {
            assert!(
                (r.nedr - 1.0).abs() < 0.02,
                "{} single-node NEDR = {}",
                r.scheme,
                r.nedr
            );
        }
    }

    #[test]
    fn ablation_adds_the_nobalance_series() {
        let dataset = presets::web_dataset(Scale::Tiny);
        let rows = run_on(
            &dataset,
            &Fig8Params {
                scale: Scale::Tiny,
                cluster_sizes: vec![4],
                super_chunk_size: 128 << 10,
                include_balance_ablation: true,
            },
        );
        assert!(rows.iter().any(|r| r.scheme == "sigma-nobalance"));
    }

    #[test]
    fn render_formats_nedr_values() {
        let dataset = presets::linux_dataset(Scale::Tiny);
        let rows = run_on(&dataset, &tiny_params());
        let text = render("Linux", &rows);
        assert!(text.contains("Linux: nodes"));
        assert!(text.contains("sigma"));
    }
}
