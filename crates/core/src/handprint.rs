//! Handprinting: deterministic min-k sampling of chunk fingerprints.
//!
//! Section 2.2 of the paper generalises Broder's theorem: if `h` is (approximately)
//! min-wise independent, the probability that two super-chunks share at least one of
//! their k smallest chunk fingerprints is at least `1 - (1 - r)^k`, where `r` is the
//! Jaccard resemblance of the two chunk-fingerprint sets.  The k smallest
//! fingerprints of a super-chunk therefore form a *handprint* whose overlap with
//! stored handprints is a cheap, RAM-friendly resemblance detector — the basis of
//! both the similarity router (inter-node) and the similarity index (intra-node).

use serde::{Deserialize, Serialize};
use sigma_hashkit::Fingerprint;
use std::collections::BTreeSet;

/// Exact Jaccard index of two fingerprint sets.
///
/// Used as the ground-truth resemblance in the Figure 1 reproduction; duplicates in
/// the inputs are ignored (set semantics).  Returns 1.0 when both sets are empty.
///
/// # Example
///
/// ```
/// use sigma_core::jaccard;
/// use sigma_hashkit::{Digest, Sha1};
///
/// let a: Vec<_> = [b"x" as &[u8], b"y", b"z"].iter().map(|d| Sha1::fingerprint(d)).collect();
/// let b: Vec<_> = [b"y" as &[u8], b"z", b"w"].iter().map(|d| Sha1::fingerprint(d)).collect();
/// let r = jaccard(&a, &b);
/// assert!((r - 0.5).abs() < 1e-9); // |{y,z}| / |{x,y,z,w}|
/// ```
pub fn jaccard(a: &[Fingerprint], b: &[Fingerprint]) -> f64 {
    let sa: BTreeSet<_> = a.iter().copied().collect();
    let sb: BTreeSet<_> = b.iter().copied().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let intersection = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - intersection;
    intersection as f64 / union as f64
}

/// The k smallest chunk fingerprints of a super-chunk, kept sorted ascending.
///
/// # Example
///
/// ```
/// use sigma_core::Handprint;
/// use sigma_hashkit::{Digest, Sha1};
///
/// let fps: Vec<_> = (0..100u32).map(|i| Sha1::fingerprint(&i.to_le_bytes())).collect();
/// let hp = Handprint::from_fingerprints(fps.iter().copied(), 8);
/// assert_eq!(hp.size(), 8);
/// // The handprint of the same data is identical, so the overlap is total.
/// let hp2 = Handprint::from_fingerprints(fps.iter().copied(), 8);
/// assert_eq!(hp.overlap(&hp2), 8);
/// assert!((hp.estimate_resemblance(&hp2) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Handprint {
    /// Sorted ascending, deduplicated, at most k entries.
    rfps: Vec<Fingerprint>,
}

impl Handprint {
    /// Selects the `k` smallest distinct fingerprints from `fingerprints`.
    ///
    /// If the input has fewer than `k` distinct fingerprints the handprint is
    /// correspondingly smaller.  A `k` of zero yields an empty handprint.
    pub fn from_fingerprints(
        fingerprints: impl IntoIterator<Item = Fingerprint>,
        k: usize,
    ) -> Self {
        if k == 0 {
            return Handprint::default();
        }
        // A bounded BTreeSet keeps the k smallest seen so far.
        let mut set: BTreeSet<Fingerprint> = BTreeSet::new();
        for fp in fingerprints {
            if set.len() < k {
                set.insert(fp);
            } else if let Some(max) = set.iter().next_back().copied() {
                if fp < max && set.insert(fp) {
                    set.remove(&max);
                }
            }
        }
        Handprint {
            rfps: set.into_iter().collect(),
        }
    }

    /// The representative fingerprints, sorted ascending.
    pub fn representative_fingerprints(&self) -> &[Fingerprint] {
        &self.rfps
    }

    /// Number of representative fingerprints (≤ k).
    pub fn size(&self) -> usize {
        self.rfps.len()
    }

    /// True when the handprint holds no fingerprints.
    pub fn is_empty(&self) -> bool {
        self.rfps.is_empty()
    }

    /// The single smallest fingerprint (the "characteristic fingerprint" used by
    /// file-similarity schemes such as Extreme Binning), if any.
    pub fn min_fingerprint(&self) -> Option<Fingerprint> {
        self.rfps.first().copied()
    }

    /// Number of representative fingerprints shared with `other`.
    pub fn overlap(&self, other: &Handprint) -> usize {
        // Both sides are sorted: merge-count.
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        while i < self.rfps.len() && j < other.rfps.len() {
            match self.rfps[i].cmp(&other.rfps[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Estimated resemblance of the two underlying super-chunks: the fraction of this
    /// handprint's fingerprints found in `other`.
    ///
    /// Returns 0 for an empty handprint.
    pub fn estimate_resemblance(&self, other: &Handprint) -> f64 {
        if self.rfps.is_empty() {
            return 0.0;
        }
        self.overlap(other) as f64 / self.rfps.len() as f64
    }

    /// The candidate deduplication nodes for this handprint in a cluster of
    /// `node_count` nodes: `rfp mod N` for each representative fingerprint, with
    /// duplicates removed (first occurrence kept).
    ///
    /// This is step 1 of Algorithm 1.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero.
    pub fn candidate_nodes(&self, node_count: usize) -> Vec<usize> {
        assert!(node_count > 0, "node count must be non-zero");
        let mut out = Vec::with_capacity(self.rfps.len());
        for rfp in &self.rfps {
            let node = rfp.bucket(node_count);
            if !out.contains(&node) {
                out.push(node);
            }
        }
        out
    }
}

impl FromIterator<Fingerprint> for Handprint {
    /// Collects *all* distinct fingerprints (equivalent to `from_fingerprints` with
    /// an unbounded k); mostly useful in tests.
    fn from_iter<T: IntoIterator<Item = Fingerprint>>(iter: T) -> Self {
        let set: BTreeSet<Fingerprint> = iter.into_iter().collect();
        Handprint {
            rfps: set.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sigma_hashkit::{Digest, Sha1};

    fn fp(i: u64) -> Fingerprint {
        Sha1::fingerprint(&i.to_le_bytes())
    }

    #[test]
    fn handprint_is_k_smallest_sorted() {
        let fps: Vec<Fingerprint> = (0..1000u64).map(fp).collect();
        let hp = Handprint::from_fingerprints(fps.iter().copied(), 16);
        let mut sorted = fps.clone();
        sorted.sort();
        assert_eq!(hp.representative_fingerprints(), &sorted[..16]);
        assert_eq!(hp.min_fingerprint(), Some(sorted[0]));
    }

    #[test]
    fn handprint_smaller_than_k_when_few_distinct() {
        let fps = vec![fp(1), fp(1), fp(2)];
        let hp = Handprint::from_fingerprints(fps, 8);
        assert_eq!(hp.size(), 2);
    }

    #[test]
    fn zero_k_yields_empty() {
        let hp = Handprint::from_fingerprints((0..10u64).map(fp), 0);
        assert!(hp.is_empty());
        assert_eq!(hp.min_fingerprint(), None);
        assert_eq!(hp.estimate_resemblance(&hp.clone()), 0.0);
    }

    #[test]
    fn overlap_and_resemblance() {
        // Two streams sharing half their chunks.
        let a = Handprint::from_fingerprints((0..64u64).map(fp), 8);
        let b = Handprint::from_fingerprints((32..96u64).map(fp), 8);
        let overlap = a.overlap(&b);
        assert_eq!(overlap, b.overlap(&a));
        assert!(overlap <= 8);
        let disjoint = Handprint::from_fingerprints((1000..1064u64).map(fp), 8);
        assert_eq!(a.overlap(&disjoint), 0);
        assert_eq!(a.estimate_resemblance(&disjoint), 0.0);
        assert!((a.estimate_resemblance(&a.clone()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn candidate_nodes_are_stable_and_bounded() {
        let hp = Handprint::from_fingerprints((0..256u64).map(fp), 8);
        let candidates = hp.candidate_nodes(32);
        assert!(!candidates.is_empty());
        assert!(candidates.len() <= 8);
        assert!(candidates.iter().all(|&c| c < 32));
        assert_eq!(candidates, hp.candidate_nodes(32));
        // With a single node everything maps to node 0.
        assert_eq!(hp.candidate_nodes(1), vec![0]);
    }

    #[test]
    #[should_panic(expected = "node count must be non-zero")]
    fn candidate_nodes_zero_panics() {
        Handprint::from_fingerprints((0..8u64).map(fp), 4).candidate_nodes(0);
    }

    #[test]
    fn jaccard_edge_cases() {
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&[fp(1)], &[]), 0.0);
        assert_eq!(jaccard(&[fp(1), fp(1)], &[fp(1)]), 1.0);
    }

    #[test]
    fn broder_bound_holds_on_synthetic_data() {
        // Estimated resemblance via handprints should grow with the true Jaccard
        // index, and larger handprints should detect similarity at least as often as
        // a single representative fingerprint.
        let base: Vec<Fingerprint> = (0..512u64).map(fp).collect();
        let mut detections_k1 = 0usize;
        let mut detections_k16 = 0usize;
        let trials = 50usize;
        for t in 0..trials {
            // ~25% overlap with `base`.
            let other: Vec<Fingerprint> = (384..512u64)
                .map(fp)
                .chain((0..384u64).map(|i| fp(10_000 + t as u64 * 1000 + i)))
                .collect();
            let a1 = Handprint::from_fingerprints(base.iter().copied(), 1);
            let b1 = Handprint::from_fingerprints(other.iter().copied(), 1);
            let a16 = Handprint::from_fingerprints(base.iter().copied(), 16);
            let b16 = Handprint::from_fingerprints(other.iter().copied(), 16);
            if a1.overlap(&b1) > 0 {
                detections_k1 += 1;
            }
            if a16.overlap(&b16) > 0 {
                detections_k16 += 1;
            }
        }
        assert!(
            detections_k16 >= detections_k1,
            "larger handprints must not detect less similarity ({} vs {})",
            detections_k16,
            detections_k1
        );
        assert!(
            detections_k16 > trials / 2,
            "a 16-fingerprint handprint should usually detect 25% resemblance, got {}/{}",
            detections_k16,
            trials
        );
    }

    proptest! {
        #[test]
        fn prop_handprint_subset_of_input(
            keys in proptest::collection::vec(any::<u64>(), 0..200),
            k in 0usize..32,
        ) {
            let fps: Vec<Fingerprint> = keys.iter().map(|&i| fp(i)).collect();
            let hp = Handprint::from_fingerprints(fps.iter().copied(), k);
            prop_assert!(hp.size() <= k);
            for rfp in hp.representative_fingerprints() {
                prop_assert!(fps.contains(rfp));
            }
            // Sorted ascending and unique.
            let v = hp.representative_fingerprints();
            for w in v.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }

        #[test]
        fn prop_overlap_symmetric_and_bounded(
            a in proptest::collection::vec(any::<u64>(), 0..100),
            b in proptest::collection::vec(any::<u64>(), 0..100),
            k in 1usize..16,
        ) {
            let ha = Handprint::from_fingerprints(a.iter().map(|&i| fp(i)), k);
            let hb = Handprint::from_fingerprints(b.iter().map(|&i| fp(i)), k);
            let o = ha.overlap(&hb);
            prop_assert_eq!(o, hb.overlap(&ha));
            prop_assert!(o <= ha.size().min(hb.size()));
            prop_assert!(ha.estimate_resemblance(&hb) <= 1.0);
        }

        #[test]
        fn prop_jaccard_bounds(
            a in proptest::collection::vec(any::<u64>(), 0..60),
            b in proptest::collection::vec(any::<u64>(), 0..60),
        ) {
            let fa: Vec<Fingerprint> = a.iter().map(|&i| fp(i)).collect();
            let fb: Vec<Fingerprint> = b.iter().map(|&i| fp(i)).collect();
            let r = jaccard(&fa, &fb);
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert!((jaccard(&fa, &fa) - 1.0).abs() < 1e-12 || fa.is_empty());
        }
    }
}
