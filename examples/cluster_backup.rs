//! Cluster backup at scale: drive the four paper workloads through a 32-node
//! Σ-Dedupe cluster and report the paper's capacity and overhead metrics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cluster_backup
//! ```

use sigma_dedupe::prelude::*;

fn main() {
    let scale = Scale::Small;
    let nodes = 32;
    println!(
        "Σ-Dedupe cluster backup: {} nodes, {} per workload (synthetic stand-ins)\n",
        nodes,
        human_bytes(scale.target_logical_bytes())
    );

    let mut table = TextTable::new(vec![
        "workload",
        "logical",
        "stored",
        "cluster DR",
        "single-node DR",
        "normalized DR",
        "skew",
        "NEDR",
        "lookup msgs",
    ]);

    for dataset in presets::paper_datasets(scale) {
        let summary = run_cluster(
            &dataset,
            Box::new(SimilarityRouter::new(true)),
            &SimulationConfig {
                node_count: nodes,
                sigma: SigmaConfig::default(),
                client_streams: 8,
            },
        );
        table.add_row(vec![
            summary.dataset.clone(),
            human_bytes(summary.logical_bytes),
            human_bytes(summary.physical_bytes),
            format!("{:.2}", summary.dedup_ratio),
            format!("{:.2}", summary.single_node_dr),
            format!("{:.3}", summary.normalized_dr()),
            format!("{:.3}", summary.skew),
            format!("{:.3}", summary.nedr()),
            summary.total_lookups().to_string(),
        ]);
    }

    println!("{}", table.render());
    println!("NEDR = cluster DR / single-node DR / (1 + skew)  —  the Figure 8 metric.");
}
