//! Recovery-replay throughput: how fast a crashed node comes back.
//!
//! Not a figure of the paper — its prototype has no durability story — but the
//! metric that gates restart latency once nodes journal: MB/s of write-ahead-log
//! replay, i.e. how quickly [`DedupNode::recover`] turns journal bytes back into
//! a serving node (containers reinstalled, chunk + similarity indexes rebuilt).
//! The byte basis is *journal bytes consumed* — neither logical client bytes
//! nor physical container bytes — so raw and compacted numbers are comparable
//! to each other but not to ingest MB/s.
//!
//! The banner prints a one-shot table comparing a raw (append-by-append) journal
//! against its compacted (single-snapshot) form at a reporting scale; criterion
//! then measures both replay paths on a mid-size journal.  Compaction replay
//! should win: one frame instead of thousands, no superseded records.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sigma_core::{DedupNode, SigmaConfig};
use sigma_storage::Journal;
use std::sync::Arc;

fn bench_config() -> SigmaConfig {
    SigmaConfig::builder()
        .super_chunk_size(64 * 1024)
        .container_capacity(256 * 1024)
        .durability(true)
        .build()
        .expect("valid bench config")
}

/// Ingests `bytes` of deterministic payload into a durable node and returns the
/// journal image a crash would leave behind, optionally compacted first.
fn journal_image(config: &SigmaConfig, bytes: usize, compacted: bool) -> Vec<u8> {
    let node = DedupNode::new(0, config);
    let client_chunks: Vec<Vec<u8>> = sigma_workloads::payload::random_bytes(bytes, 0x4EC0)
        .chunks(4096)
        .map(<[u8]>::to_vec)
        .collect();
    for (i, window) in client_chunks.chunks(16).enumerate() {
        let sc = sigma_core::SuperChunk::from_payloads(
            sigma_hashkit::FingerprintAlgorithm::Sha1,
            i as u64,
            window.to_vec(),
        );
        node.process_super_chunk(0, &sc, &sc.handprint(8))
            .expect("payload ingest cannot fail");
    }
    node.try_flush().expect("no faults in bench");
    if compacted {
        node.compact_journal().expect("no faults in bench");
    }
    node.journal().expect("durable node has a journal").bytes()
}

fn recover(config: &SigmaConfig, image: &[u8]) -> u64 {
    let journal = Arc::new(Journal::from_bytes(image.to_vec()));
    let (node, report) = DedupNode::recover(0, config, journal).expect("recovery cannot fail");
    assert!(report.containers_recovered > 0);
    node.storage_usage()
}

fn report() {
    sigma_bench::banner(
        "recovery replay",
        "journal-replay throughput of DedupNode::recover, raw vs compacted log",
    );
    let config = bench_config();
    let mut table = sigma_metrics::report::TextTable::new(vec![
        "journal",
        "payload MiB",
        "journal MiB",
        "replay MB/s",
    ]);
    for (label, payload_bytes, compacted) in [
        ("raw", 4 << 20, false),
        ("raw", 16 << 20, false),
        ("compacted", 16 << 20, true),
    ] {
        let image = journal_image(&config, payload_bytes, compacted);
        let sw = sigma_metrics::Stopwatch::start();
        let recovered = recover(&config, &image);
        let tp = sw.stop(image.len() as u64);
        assert!(recovered > 0);
        table.add_row(vec![
            label.to_string(),
            format!("{:.1}", payload_bytes as f64 / (1 << 20) as f64),
            format!("{:.1}", image.len() as f64 / (1 << 20) as f64),
            format!("{:.1}", tp.mb_per_sec()),
        ]);
    }
    sigma_bench::print_table("recovery replay throughput", &table.render());
}

fn bench(c: &mut Criterion) {
    report();

    let config = bench_config();
    let raw = journal_image(&config, 8 << 20, false);
    let compacted = journal_image(&config, 8 << 20, true);

    let mut group = c.benchmark_group("recovery_replay");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(raw.len() as u64));
    group.bench_function("raw_journal", |b| b.iter(|| recover(&config, &raw)));
    group.throughput(Throughput::Bytes(compacted.len() as u64));
    group.bench_function("compacted_journal", |b| {
        b.iter(|| recover(&config, &compacted))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
