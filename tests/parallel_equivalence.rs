//! Property tests: the parallel ingest pipeline is observably equivalent to the
//! serial [`BackupClient`] path.
//!
//! Two properties, each over 256 deterministically generated cases:
//!
//! * on a single node (exact deduplication), arbitrary payloads spread over
//!   arbitrary stream counts yield the same `dedup_ratio`, the same
//!   `physical_bytes` and byte-identical `restore_file` output, no matter how the
//!   pipeline's worker threads interleave — the chunk-index claim protocol stores
//!   every unique fingerprint exactly once;
//! * with a single stream the submission order is identical, so even a multi-node
//!   cluster produces identical per-node usage and message counters.

use proptest::prelude::*;
use sigma_dedupe::prelude::*;
use std::sync::Arc;

/// Small chunks and super-chunks so even a few KB of payload crosses several
/// super-chunk and container boundaries.
fn equivalence_config(parallelism: usize) -> SigmaConfig {
    SigmaConfig::builder()
        .super_chunk_size(4 * 1024)
        .chunker(ChunkerParams::fixed(512))
        .container_capacity(16 * 1024)
        .cache_containers(4)
        .parallelism(parallelism)
        .build()
        .expect("valid test config")
}

/// Builds one stream's payload by concatenating blocks from a shared pool, so
/// streams overlap with each other and with themselves.
fn compose(blocks: &[Vec<u8>], picks: &[usize]) -> Vec<u8> {
    let mut data = Vec::new();
    for &pick in picks {
        data.extend_from_slice(&blocks[pick % blocks.len()]);
    }
    data
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Serial and parallel ingest agree on a single exact-dedup node for any
    /// payloads and stream counts.
    #[test]
    fn parallel_matches_serial_on_one_node(
        blocks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..1024),
            1..6,
        ),
        compositions in proptest::collection::vec(
            proptest::collection::vec(0usize..8, 0..16),
            1..4,
        ),
    ) {
        let datas: Vec<Vec<u8>> = compositions
            .iter()
            .map(|picks| compose(&blocks, picks))
            .collect();

        // Serial reference: one client per stream, driven back to back.
        let serial_cluster =
            Arc::new(DedupCluster::with_similarity_router(1, equivalence_config(1)));
        let mut serial_restored = Vec::new();
        for (stream, data) in datas.iter().enumerate() {
            let client = BackupClient::new(serial_cluster.clone(), stream as u64);
            let report = client.backup_bytes(&format!("f{stream}"), data).unwrap();
            serial_restored.push(serial_cluster.restore_file(report.file_id).unwrap());
        }
        serial_cluster.flush();

        // Parallel pipeline: same streams, 4 worker threads.
        let parallel_cluster =
            Arc::new(DedupCluster::with_similarity_router(1, equivalence_config(4)));
        let pipeline = IngestPipeline::new(parallel_cluster.clone());
        let reports = pipeline.backup_streams(
            datas
                .iter()
                .enumerate()
                .map(|(stream, data)| {
                    StreamPayload::new(stream as u64, format!("f{stream}"), data.clone())
                })
                .collect(),
        ).unwrap();
        parallel_cluster.flush();

        let serial_stats = serial_cluster.stats();
        let parallel_stats = parallel_cluster.stats();
        prop_assert_eq!(parallel_stats.logical_bytes, serial_stats.logical_bytes);
        prop_assert_eq!(
            parallel_stats.physical_bytes,
            serial_stats.physical_bytes,
            "the claim protocol must store each unique chunk exactly once"
        );
        prop_assert_eq!(parallel_stats.dedup_ratio, serial_stats.dedup_ratio);

        for ((report, data), serial) in reports.iter().zip(&datas).zip(&serial_restored) {
            let restored = parallel_cluster.restore_file(report.file_id).unwrap();
            prop_assert_eq!(&restored, data, "parallel restore must match the original");
            prop_assert_eq!(&restored, serial, "parallel restore must match the serial path");
        }
    }

    /// With one stream the pipeline submits in serial order, so a multi-node
    /// cluster is bit-for-bit equivalent: same routing, same per-node usage, same
    /// message counters.
    #[test]
    fn single_stream_matches_serial_on_multinode(
        blocks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..1024),
            1..6,
        ),
        picks in proptest::collection::vec(0usize..8, 0..32),
        nodes in 2usize..5,
    ) {
        let data = compose(&blocks, &picks);

        let serial_cluster = Arc::new(DedupCluster::with_similarity_router(
            nodes,
            equivalence_config(1),
        ));
        let client = BackupClient::new(serial_cluster.clone(), 0);
        let serial_report = client.backup_bytes("stream", &data).unwrap();
        serial_cluster.flush();

        let parallel_cluster = Arc::new(DedupCluster::with_similarity_router(
            nodes,
            equivalence_config(4),
        ));
        let pipeline = IngestPipeline::new(parallel_cluster.clone());
        let parallel_report = pipeline.backup_stream(0, "stream", data.clone()).unwrap();
        parallel_cluster.flush();

        prop_assert_eq!(parallel_report.chunks, serial_report.chunks);
        prop_assert_eq!(parallel_report.super_chunks, serial_report.super_chunks);
        prop_assert_eq!(
            parallel_report.transferred_bytes,
            serial_report.transferred_bytes
        );
        prop_assert_eq!(
            parallel_report.duplicate_chunks,
            serial_report.duplicate_chunks
        );

        let serial_stats = serial_cluster.stats();
        let parallel_stats = parallel_cluster.stats();
        prop_assert_eq!(parallel_stats.logical_bytes, serial_stats.logical_bytes);
        prop_assert_eq!(parallel_stats.physical_bytes, serial_stats.physical_bytes);
        prop_assert_eq!(&parallel_stats.node_usage, &serial_stats.node_usage);
        prop_assert_eq!(parallel_stats.messages, serial_stats.messages);

        prop_assert_eq!(
            parallel_cluster.restore_file(parallel_report.file_id).unwrap(),
            data
        );
    }
}
