//! Parallel ingest: many concurrent backup streams through the worker-pool
//! pipeline, with a serial-vs-parallel throughput comparison and proof that the
//! parallel path restores byte-identically.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example parallel_ingest
//! ```

use sigma_dedupe::prelude::*;
use std::sync::Arc;
use std::time::Instant;

const STREAMS: u64 = 8;
const STREAM_BYTES: usize = 2 << 20;

fn streams() -> Vec<StreamPayload> {
    (0..STREAMS)
        .flat_map(|s| {
            versioned_payloads(VersionedPayloadParams {
                seed: 0xA11CE + s,
                versions: 2,
                version_size: STREAM_BYTES,
                mutation_rate: 0.05,
            })
            .into_iter()
            .map(move |(name, data)| StreamPayload::new(s, format!("user-{s}/{name}"), data))
        })
        .collect()
}

fn main() {
    let inputs = streams();
    let total: u64 = inputs.iter().map(|s| s.data.len() as u64).sum();
    println!(
        "Parallel ingest: {} streams, {} total, 4-node cluster\n",
        STREAMS,
        human_bytes(total)
    );

    // Serial baseline: one BackupClient per stream, driven back to back.
    let serial_cluster = Arc::new(DedupCluster::with_similarity_router(
        4,
        SigmaConfig::default(),
    ));
    let start = Instant::now();
    for input in &inputs {
        let client = BackupClient::new(serial_cluster.clone(), input.stream_id);
        client
            .backup_bytes(&input.name, &input.data)
            .expect("serial backup");
    }
    serial_cluster.flush();
    let serial_secs = start.elapsed().as_secs_f64();

    // Parallel pipeline: same data, worker pool sized to the machine.
    let config = SigmaConfig::builder().parallelism(0).build().unwrap();
    let parallel_cluster = Arc::new(DedupCluster::with_similarity_router(4, config));
    let pipeline = IngestPipeline::new(parallel_cluster.clone());
    let start = Instant::now();
    let reports = pipeline
        .backup_streams(inputs.clone())
        .expect("pipeline backup");
    parallel_cluster.flush();
    let parallel_secs = start.elapsed().as_secs_f64();

    // Every file restores byte-identically through the parallel path.
    for (report, input) in reports.iter().zip(&inputs) {
        let restored = parallel_cluster
            .restore_file(report.file_id)
            .expect("restore");
        assert_eq!(restored, input.data, "{} must restore intact", input.name);
    }

    let mut table = TextTable::new(vec!["path", "threads", "seconds", "MB/s", "dedup ratio"]);
    let serial_stats = serial_cluster.stats();
    let parallel_stats = parallel_cluster.stats();
    table.add_row(vec![
        "serial client".to_string(),
        "1".to_string(),
        format!("{serial_secs:.2}"),
        format!("{:.1}", total as f64 / 1e6 / serial_secs),
        format!("{:.2}", serial_stats.dedup_ratio),
    ]);
    table.add_row(vec![
        "ingest pipeline".to_string(),
        pipeline.parallelism().to_string(),
        format!("{parallel_secs:.2}"),
        format!("{:.1}", total as f64 / 1e6 / parallel_secs),
        format!("{:.2}", parallel_stats.dedup_ratio),
    ]);
    println!("{}", table.render());
    println!(
        "\nAll {} files restored byte-identically through the parallel path.",
        reports.len()
    );
}
