//! The fixed-width chunk fingerprint value type.

use serde::{Deserialize, Serialize};

/// A chunk fingerprint: the (possibly truncated) output of a cryptographic hash.
///
/// The paper uses SHA-1 (20 bytes) as the default fingerprinting function; MD5
/// digests (16 bytes) are zero-padded to the same width so that all indexes in the
/// workspace can store a single fixed-width key type.  The natural lexicographic
/// ordering of fingerprints is used by the handprinting technique, which selects the
/// *k smallest* fingerprints of a super-chunk as its handprint.
///
/// # Example
///
/// ```
/// use sigma_hashkit::{Digest, Fingerprint, Sha1};
///
/// let a = Sha1::fingerprint(b"chunk A");
/// let b = Sha1::fingerprint(b"chunk B");
/// assert_ne!(a, b);
/// let hex = a.to_string();
/// assert_eq!(Fingerprint::from_hex(&hex).unwrap(), a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Fingerprint([u8; Fingerprint::LEN]);

impl Fingerprint {
    /// Width of a fingerprint in bytes (SHA-1 output size).
    pub const LEN: usize = 20;

    /// The all-zero fingerprint. Useful as a sentinel in tests.
    pub const ZERO: Fingerprint = Fingerprint([0u8; Fingerprint::LEN]);

    /// Creates a fingerprint from exactly [`Fingerprint::LEN`] bytes.
    pub fn new(bytes: [u8; Fingerprint::LEN]) -> Self {
        Fingerprint(bytes)
    }

    /// Builds a fingerprint from an arbitrary-length digest.
    ///
    /// Digests longer than [`Fingerprint::LEN`] are truncated; shorter digests are
    /// zero-padded on the right.  This is how 16-byte MD5 digests are widened.
    pub fn from_digest(digest: &[u8]) -> Self {
        let mut out = [0u8; Fingerprint::LEN];
        let n = digest.len().min(Fingerprint::LEN);
        out[..n].copy_from_slice(&digest[..n]);
        Fingerprint(out)
    }

    /// Parses a fingerprint from a lowercase or uppercase hex string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseFingerprintError`] if the string is not exactly
    /// `2 * Fingerprint::LEN` hex digits.
    pub fn from_hex(s: &str) -> Result<Self, ParseFingerprintError> {
        let s = s.trim();
        if s.len() != 2 * Fingerprint::LEN {
            return Err(ParseFingerprintError::Length(s.len()));
        }
        let mut out = [0u8; Fingerprint::LEN];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi =
                hex_val(chunk[0]).ok_or(ParseFingerprintError::InvalidDigit(chunk[0] as char))?;
            let lo =
                hex_val(chunk[1]).ok_or(ParseFingerprintError::InvalidDigit(chunk[1] as char))?;
            out[i] = (hi << 4) | lo;
        }
        Ok(Fingerprint(out))
    }

    /// Raw fingerprint bytes.
    pub fn as_bytes(&self) -> &[u8; Fingerprint::LEN] {
        &self.0
    }

    /// Consumes the fingerprint, returning its raw bytes.
    pub fn into_bytes(self) -> [u8; Fingerprint::LEN] {
        self.0
    }

    /// Interprets the first eight bytes as a big-endian `u64`.
    ///
    /// Because a cryptographic hash output is (approximately) uniformly distributed,
    /// this prefix is itself uniformly distributed and is used for modulo-based node
    /// placement (`rfp mod N`) by the routing schemes.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("fingerprint has >= 8 bytes"))
    }

    /// Deterministically maps this fingerprint onto one of `buckets` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn bucket(&self, buckets: usize) -> usize {
        assert!(buckets > 0, "bucket count must be non-zero");
        (self.prefix_u64() % buckets as u64) as usize
    }

    /// Returns true if every byte is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.0 {
            write!(f, "{:02x}", b)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fingerprint({})", self)
    }
}

impl std::str::FromStr for Fingerprint {
    type Err = ParseFingerprintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Fingerprint::from_hex(s)
    }
}

impl From<[u8; Fingerprint::LEN]> for Fingerprint {
    fn from(bytes: [u8; Fingerprint::LEN]) -> Self {
        Fingerprint(bytes)
    }
}

impl AsRef<[u8]> for Fingerprint {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Error returned when parsing a [`Fingerprint`] from hex fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseFingerprintError {
    /// The input length was not `2 * Fingerprint::LEN` characters.
    Length(usize),
    /// The input contained a non-hex character.
    InvalidDigit(char),
}

impl std::fmt::Display for ParseFingerprintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseFingerprintError::Length(n) => {
                write!(f, "expected {} hex digits, got {}", 2 * Fingerprint::LEN, n)
            }
            ParseFingerprintError::InvalidDigit(c) => write!(f, "invalid hex digit `{}`", c),
        }
    }
}

impl std::error::Error for ParseFingerprintError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Digest, Md5, Sha1};
    use proptest::prelude::*;

    #[test]
    fn zero_is_zero() {
        assert!(Fingerprint::ZERO.is_zero());
        assert!(!Sha1::fingerprint(b"x").is_zero());
    }

    #[test]
    fn md5_digest_is_zero_padded() {
        let fp = Md5::fingerprint(b"hello");
        assert_eq!(&fp.as_bytes()[16..], &[0u8; 4]);
        assert_ne!(&fp.as_bytes()[..16], &[0u8; 16]);
    }

    #[test]
    fn hex_roundtrip() {
        let fp = Sha1::fingerprint(b"roundtrip");
        let parsed: Fingerprint = fp.to_string().parse().unwrap();
        assert_eq!(parsed, fp);
    }

    #[test]
    fn hex_parse_rejects_bad_input() {
        assert_eq!(
            Fingerprint::from_hex("abcd"),
            Err(ParseFingerprintError::Length(4))
        );
        let bad = "zz".repeat(Fingerprint::LEN);
        assert!(matches!(
            Fingerprint::from_hex(&bad),
            Err(ParseFingerprintError::InvalidDigit('z'))
        ));
    }

    #[test]
    fn bucket_is_stable_and_in_range() {
        let fp = Sha1::fingerprint(b"bucket me");
        for n in 1..100usize {
            let b = fp.bucket(n);
            assert!(b < n);
            assert_eq!(b, fp.bucket(n));
        }
    }

    #[test]
    #[should_panic(expected = "bucket count must be non-zero")]
    fn bucket_zero_panics() {
        Fingerprint::ZERO.bucket(0);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Fingerprint::from_digest(&[1u8; 20]);
        let b = Fingerprint::from_digest(&[2u8; 20]);
        assert!(a < b);
    }

    proptest! {
        #[test]
        fn prop_hex_roundtrip(bytes in proptest::array::uniform20(any::<u8>())) {
            let fp = Fingerprint::new(bytes);
            let back = Fingerprint::from_hex(&fp.to_string()).unwrap();
            prop_assert_eq!(back, fp);
        }

        #[test]
        fn prop_bucket_in_range(bytes in proptest::array::uniform20(any::<u8>()), n in 1usize..4096) {
            let fp = Fingerprint::new(bytes);
            prop_assert!(fp.bucket(n) < n);
        }

        #[test]
        fn prop_from_digest_truncates(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let fp = Fingerprint::from_digest(&data);
            let n = data.len().min(Fingerprint::LEN);
            prop_assert_eq!(&fp.as_bytes()[..n], &data[..n]);
        }
    }
}
