//! Backend-equivalence property: the storage backend is a *medium*, never a
//! *policy*.  The same deterministic workload — generational backups, a
//! deletion, a mark-and-sweep GC, then restores — run against the in-memory,
//! simulated-disk and real-file backends must produce bit-identical recipes,
//! identical per-node dedup figures, identical post-GC physical bytes, and
//! byte-identical restored files.
//!
//! The file-backend runs live under a per-case scratch directory that is
//! removed on success (left behind on failure for inspection).

use proptest::prelude::*;
use sigma_dedupe::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sigma-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
    dir
}

fn config_for(kind: BackendKind, root: Option<&std::path::Path>) -> SigmaConfig {
    let mut builder = SigmaConfig::builder()
        .super_chunk_size(8 * 1024)
        .chunker(ChunkerParams::fixed(1024))
        .container_capacity(32 * 1024)
        .cache_containers(4)
        .durability(true)
        .gc_liveness_threshold(1.0)
        .storage_backend(kind);
    if let Some(root) = root {
        builder = builder.storage_root(root);
    }
    builder.build().expect("valid test config")
}

/// Everything the workload observably produces on one backend.
#[derive(Debug, PartialEq)]
struct Observed {
    recipes: Vec<FileRecipe>,
    node_figures: Vec<(u64, u64, u64, u64)>,
    logical_bytes: u64,
    physical_after_gc: u64,
    bytes_reclaimed: u64,
    restored: Vec<Vec<u8>>,
}

/// Runs the canonical workload on a 2-node cluster over `config`.
fn run_workload(config: SigmaConfig, streams: u64, generations: usize, size: usize) -> Observed {
    let cluster = Arc::new(DedupCluster::with_similarity_router(2, config));
    let mut file_ids = Vec::new();
    for stream in 0..streams {
        let dataset = generational_payloads(GenerationalPayloadParams {
            seed: 0xE0_0E ^ stream,
            generations,
            initial_size: size,
            mutation_rate: 0.15,
            growth_per_generation: size / 8,
        });
        for (generation, (name, data)) in dataset.iter().enumerate() {
            let client = BackupClient::with_generation(cluster.clone(), stream, generation as u64);
            let report = client
                .backup_bytes(name, data)
                .expect("payload backup cannot fail");
            file_ids.push(report.file_id);
        }
    }
    cluster.try_flush().expect("no faults armed");
    cluster.delete_generation(0).expect("generation 0 exists");
    let gc = cluster.collect_garbage().expect("no faults armed");

    let recipes: Vec<FileRecipe> = cluster
        .director()
        .recipes()
        .iter()
        .map(|r| (**r).clone())
        .collect();
    let stats = cluster.stats();
    let restored = file_ids
        .iter()
        .filter_map(|&id| cluster.restore_file(id).ok())
        .collect();
    for id in 0..2 {
        cluster
            .node_by_id(id)
            .unwrap()
            .verify_consistency()
            .expect("node is consistent post-GC");
    }
    Observed {
        recipes,
        node_figures: stats
            .nodes
            .iter()
            .map(|n| {
                (
                    n.logical_bytes,
                    n.physical_bytes,
                    n.total_chunks,
                    n.unique_chunks,
                )
            })
            .collect(),
        logical_bytes: stats.logical_bytes,
        physical_after_gc: stats.physical_bytes,
        bytes_reclaimed: gc.bytes_reclaimed,
        restored,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn all_three_backends_observe_identical_worlds(
        streams in 1u64..3,
        generations in 2usize..4,
        size in 16usize..64,
    ) {
        let size = size * 1024;
        let root = scratch_dir("backend-equivalence");

        let memory = run_workload(
            config_for(BackendKind::Memory, None), streams, generations, size);
        let sim = run_workload(
            config_for(BackendKind::SimDisk, None), streams, generations, size);
        let file = run_workload(
            config_for(BackendKind::File, Some(&root)), streams, generations, size);

        prop_assert!(!memory.restored.is_empty(), "survivors must restore");
        prop_assert!(memory.bytes_reclaimed > 0, "expiry must reclaim space");
        prop_assert_eq!(&memory, &sim);
        prop_assert_eq!(&memory, &file);
        std::fs::remove_dir_all(&root).expect("clean up scenario directory");
    }
}
