//! Error type for the Σ-Dedupe core.

use sigma_storage::StorageError;

/// Errors produced by backup, deduplication and restore operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigmaError {
    /// An underlying storage operation failed.
    Storage(StorageError),
    /// No file recipe exists for this file ID.
    FileNotFound(u64),
    /// No backup session exists with this session ID (already deleted or never
    /// opened).
    BackupNotFound(u64),
    /// A chunk referenced by a file recipe could not be found on its node.
    ChunkMissing {
        /// Node that was expected to hold the chunk.
        node: usize,
        /// Hex form of the missing fingerprint.
        fingerprint: String,
    },
    /// The chunk exists but its payload was not stored (trace-driven/synthetic mode).
    PayloadUnavailable {
        /// Hex form of the fingerprint whose payload is unavailable.
        fingerprint: String,
    },
    /// The chunk's container was migrated to another node; the error carries the
    /// forwarding tombstone's destination.  Cluster-level restores follow the
    /// chain transparently, so callers normally never observe this variant.
    ChunkMigrated {
        /// Hex form of the migrated chunk's fingerprint.
        fingerprint: String,
        /// Node the container was forwarded to.
        node: usize,
    },
    /// Membership operation referenced a node ID that is not in the cluster.
    UnknownNode(usize),
    /// Membership operation would leave the cluster without any node.
    ClusterTooSmall,
    /// The routing scheme requires file boundaries but none were provided.
    FileBoundariesRequired {
        /// Name of the routing scheme that raised the error.
        router: String,
    },
    /// Configuration rejected at validation time.
    InvalidConfig(String),
}

impl std::fmt::Display for SigmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SigmaError::Storage(e) => write!(f, "storage error: {}", e),
            SigmaError::FileNotFound(id) => write!(f, "no file recipe for file id {}", id),
            SigmaError::BackupNotFound(id) => {
                write!(f, "no backup session with id {}", id)
            }
            SigmaError::ChunkMissing { node, fingerprint } => {
                write!(f, "chunk {} missing on node {}", fingerprint, node)
            }
            SigmaError::PayloadUnavailable { fingerprint } => write!(
                f,
                "payload for chunk {} was not stored (synthetic mode)",
                fingerprint
            ),
            SigmaError::ChunkMigrated { fingerprint, node } => {
                write!(f, "chunk {} was migrated to node {}", fingerprint, node)
            }
            SigmaError::UnknownNode(id) => write!(f, "no active node with id {}", id),
            SigmaError::ClusterTooSmall => {
                write!(f, "cannot remove the last node of a cluster")
            }
            SigmaError::FileBoundariesRequired { router } => write!(
                f,
                "routing scheme {} requires file boundary information",
                router
            ),
            SigmaError::InvalidConfig(msg) => write!(f, "invalid configuration: {}", msg),
        }
    }
}

impl std::error::Error for SigmaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SigmaError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for SigmaError {
    fn from(e: StorageError) -> Self {
        SigmaError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_storage::ContainerId;

    #[test]
    fn display_and_source() {
        let e = SigmaError::from(StorageError::ContainerNotFound(ContainerId::new(3)));
        assert!(e.to_string().contains("container-3"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&SigmaError::FileNotFound(1)).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SigmaError>();
    }
}
