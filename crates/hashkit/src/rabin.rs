//! Rabin fingerprinting: a rolling hash over GF(2) polynomials.
//!
//! Content-defined chunking (CDC) — including the TTTD variant used by the paper —
//! slides a fixed-size window over the data stream and declares a chunk boundary
//! whenever the Rabin fingerprint of the window matches a divisor condition.  This
//! module implements the classic table-driven Rabin fingerprint (as popularised by
//! LBFS) with an explicit sliding window.

use crate::RollingHash;

/// A degree-53 irreducible polynomial over GF(2), the classic LBFS choice.
///
/// The top set bit encodes the leading coefficient (x^53).
pub const DEFAULT_IRREDUCIBLE_POLY: u64 = 0x003D_A335_8B4D_C173;

/// Default sliding-window width in bytes.
pub const DEFAULT_WINDOW_SIZE: usize = 48;

/// Parameters for a [`RabinHasher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RabinParams {
    /// The irreducible polynomial (with its leading coefficient bit set).
    pub poly: u64,
    /// Sliding-window width in bytes.
    pub window_size: usize,
}

impl Default for RabinParams {
    fn default() -> Self {
        RabinParams {
            poly: DEFAULT_IRREDUCIBLE_POLY,
            window_size: DEFAULT_WINDOW_SIZE,
        }
    }
}

/// Degree of a GF(2) polynomial represented as a bit mask.
fn degree(poly: u64) -> u32 {
    63 - poly.leading_zeros()
}

/// Reduces a 128-bit GF(2) polynomial modulo `poly`.
fn polymod128(mut value: u128, poly: u64) -> u64 {
    let deg = degree(poly);
    let poly128 = poly as u128;
    let mut bit = 127u32;
    loop {
        if value >> bit & 1 == 1 && bit >= deg {
            value ^= poly128 << (bit - deg);
        }
        if bit == 0 {
            break;
        }
        bit -= 1;
    }
    value as u64
}

/// Carry-less multiplication of two GF(2) polynomials (result up to 127 bits).
fn polymul(a: u64, b: u64) -> u128 {
    let mut result = 0u128;
    let a = a as u128;
    for i in 0..64 {
        if b >> i & 1 == 1 {
            result ^= a << i;
        }
    }
    result
}

/// Multiplies two polynomials modulo `poly`.
fn polymulmod(a: u64, b: u64, poly: u64) -> u64 {
    polymod128(polymul(a, b), poly)
}

/// A table-driven Rabin rolling hash with an explicit byte window.
///
/// # Example
///
/// ```
/// use sigma_hashkit::{RabinHasher, RabinParams, RollingHash};
///
/// let mut h = RabinHasher::new(RabinParams::default());
/// let data = b"some streaming data that is longer than the window .....";
/// for &b in data.iter() {
///     h.roll(b);
/// }
/// let v = h.value();
/// assert_ne!(v, 0);
/// ```
#[derive(Debug, Clone)]
pub struct RabinHasher {
    params: RabinParams,
    /// Degree of the polynomial.
    deg: u32,
    /// Mask keeping values below 2^deg.
    mask: u64,
    /// Shift extracting the byte that overflows past the degree when appending.
    shift: u32,
    /// Append table: cancels the overflowing byte and adds its reduced equivalent.
    append_table: [u64; 256],
    /// Remove table: contribution of the outgoing (oldest) window byte.
    remove_table: [u64; 256],
    window: Vec<u8>,
    window_pos: usize,
    window_filled: usize,
    hash: u64,
}

impl RabinHasher {
    /// Creates a new hasher with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial degree is less than 9 (the table method needs at
    /// least one full byte of headroom) or the window size is zero.
    pub fn new(params: RabinParams) -> Self {
        let deg = degree(params.poly);
        assert!(
            (9..=56).contains(&deg),
            "polynomial degree must be between 9 and 56"
        );
        assert!(params.window_size > 0, "window size must be non-zero");

        let shift = deg - 8;
        let mask = (1u64 << deg) - 1;

        // x^deg mod P
        let x_deg_mod = polymod128(1u128 << deg, params.poly);
        let mut append_table = [0u64; 256];
        for (j, entry) in append_table.iter_mut().enumerate() {
            // (j * x^deg) mod P, together with the bits j << deg that the append
            // operation must cancel.
            *entry = polymulmod(j as u64, x_deg_mod, params.poly) | ((j as u64) << deg);
        }

        // The outgoing byte of a full window contributes b * x^(8*(W-1)); precompute
        // x^(8*(W-1)) mod P and multiply per byte value.
        let mut x_out = 1u64;
        let x8 = polymod128(1u128 << 8, params.poly);
        for _ in 0..(params.window_size - 1) {
            x_out = polymulmod(x_out, x8, params.poly);
        }
        let mut remove_table = [0u64; 256];
        for (j, entry) in remove_table.iter_mut().enumerate() {
            *entry = polymulmod(j as u64, x_out, params.poly);
        }

        RabinHasher {
            deg,
            mask,
            shift,
            append_table,
            remove_table,
            window: vec![0u8; params.window_size],
            window_pos: 0,
            window_filled: 0,
            hash: 0,
            params,
        }
    }

    /// Creates a hasher with the default polynomial and window size.
    pub fn with_defaults() -> Self {
        Self::new(RabinParams::default())
    }

    /// The parameters this hasher was created with.
    pub fn params(&self) -> RabinParams {
        self.params
    }

    /// Polynomial degree.
    pub fn poly_degree(&self) -> u32 {
        self.deg
    }

    #[inline]
    fn append_byte(&self, hash: u64, byte: u8) -> u64 {
        let top = (hash >> self.shift) as usize & 0xff;
        (((hash << 8) | byte as u64) ^ self.append_table[top]) & self.mask
    }
}

impl Default for RabinHasher {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl RollingHash for RabinHasher {
    fn reset(&mut self) {
        self.hash = 0;
        self.window_pos = 0;
        self.window_filled = 0;
        self.window.iter_mut().for_each(|b| *b = 0);
    }

    fn roll(&mut self, byte: u8) -> u64 {
        if self.window_filled == self.window.len() {
            let outgoing = self.window[self.window_pos];
            self.hash ^= self.remove_table[outgoing as usize];
        } else {
            self.window_filled += 1;
        }
        self.window[self.window_pos] = byte;
        self.window_pos = (self.window_pos + 1) % self.window.len();
        self.hash = self.append_byte(self.hash, byte);
        self.hash
    }

    fn value(&self) -> u64 {
        self.hash
    }

    fn window_size(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fingerprint_of(data: &[u8], params: RabinParams) -> u64 {
        let mut h = RabinHasher::new(params);
        for &b in data {
            h.roll(b);
        }
        h.value()
    }

    #[test]
    fn window_only_depends_on_last_w_bytes() {
        let params = RabinParams {
            window_size: 16,
            ..RabinParams::default()
        };
        let tail: Vec<u8> = (0..16u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect();

        let mut prefix_a = vec![1u8; 100];
        prefix_a.extend_from_slice(&tail);
        let mut prefix_b = vec![250u8; 7];
        prefix_b.extend_from_slice(&tail);

        assert_eq!(
            fingerprint_of(&prefix_a, params),
            fingerprint_of(&prefix_b, params),
            "hash must be a function of the window contents only"
        );
    }

    #[test]
    fn different_windows_hash_differently() {
        let params = RabinParams::default();
        let a = fingerprint_of(b"abcdefghabcdefghabcdefghabcdefghabcdefghabcdefgh", params);
        let b = fingerprint_of(b"abcdefghabcdefghabcdefghabcdefghabcdefghabcdefgX", params);
        assert_ne!(a, b);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut h = RabinHasher::with_defaults();
        for &b in b"some data".iter() {
            h.roll(b);
        }
        h.reset();
        assert_eq!(h.value(), 0);
        let v1 = {
            for &b in b"replay".iter() {
                h.roll(b);
            }
            h.value()
        };
        let mut fresh = RabinHasher::with_defaults();
        for &b in b"replay".iter() {
            fresh.roll(b);
        }
        assert_eq!(v1, fresh.value());
    }

    #[test]
    fn value_stays_below_degree() {
        let mut h = RabinHasher::with_defaults();
        let limit = 1u64 << h.poly_degree();
        for i in 0..10_000u32 {
            let v = h.roll((i % 251) as u8);
            assert!(v < limit);
        }
    }

    #[test]
    fn polymod_reduces_below_poly_degree() {
        let poly = DEFAULT_IRREDUCIBLE_POLY;
        let deg = degree(poly);
        for v in [0u128, 1, 0xdeadbeef, u64::MAX as u128, u128::MAX / 3] {
            assert!(polymod128(v, poly) < (1u64 << deg));
        }
    }

    #[test]
    fn polymul_matches_schoolbook_for_small_inputs() {
        // (x+1)*(x+1) = x^2 + 1 over GF(2)
        assert_eq!(polymul(0b11, 0b11), 0b101);
        // x * x^2 = x^3
        assert_eq!(polymul(0b10, 0b100), 0b1000);
    }

    proptest! {
        #[test]
        fn prop_window_locality(
            prefix_a in proptest::collection::vec(any::<u8>(), 0..200),
            prefix_b in proptest::collection::vec(any::<u8>(), 0..200),
            tail in proptest::collection::vec(any::<u8>(), 48..128),
        ) {
            let params = RabinParams::default();
            let mut a = prefix_a.clone();
            a.extend_from_slice(&tail);
            let mut b = prefix_b.clone();
            b.extend_from_slice(&tail);
            prop_assert_eq!(fingerprint_of(&a, params), fingerprint_of(&b, params));
        }

        #[test]
        fn prop_value_bounded(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut h = RabinHasher::with_defaults();
            let limit = 1u64 << h.poly_degree();
            for &byte in &data {
                prop_assert!(h.roll(byte) < limit);
            }
        }
    }
}
