//! Table 2: workload characteristics of the evaluation datasets.
//!
//! For each of the four workloads the paper reports the original capacity and the
//! deduplication ratio under 4 KB static chunking (SC) and, for the two file
//! datasets, content-defined chunking (CDC).  The synthetic stand-ins are generated
//! at a configurable scale; what is expected to match the paper is the *ordering and
//! rough magnitude* of the deduplication ratios (Mail ≫ Linux > VM > Web ≈ 2).

use serde::{Deserialize, Serialize};
use sigma_chunking::ChunkerParams;
use sigma_hashkit::{Digest, Sha1};
use sigma_metrics::report::{human_bytes, TextTable};
use sigma_workloads::payload::{versioned_payloads, VersionedPayloadParams};
use sigma_workloads::{presets, DatasetTrace, Scale};
use std::collections::HashSet;

/// One dataset row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: String,
    /// Logical size in bytes.
    pub size_bytes: u64,
    /// Deduplication ratio with 4 KB static chunking.
    pub dedup_ratio_sc: f64,
    /// Deduplication ratio with content-defined chunking, when the dataset has real
    /// payloads to chunk (the pre-chunked FIU-style traces have `None`, as the
    /// paper's Table 2 also lists SC-only numbers for them).
    pub dedup_ratio_cdc: Option<f64>,
    /// Whether the workload carries file boundaries.
    pub has_file_boundaries: bool,
}

/// Runs the Table 2 characterisation at the given scale.
pub fn run(scale: Scale) -> Vec<Table2Row> {
    presets::paper_datasets(scale)
        .into_iter()
        .map(|dataset| characterize(&dataset, scale))
        .collect()
}

fn characterize(dataset: &DatasetTrace, scale: Scale) -> Table2Row {
    // The traces are pre-chunked with 4 KB static chunks, so their exact DR *is* the
    // SC figure.  For the two payload-backed dataset kinds we additionally measure a
    // CDC ratio on a small payload rendition with matching redundancy structure.
    let cdc = match dataset.kind {
        sigma_workloads::DatasetKind::Linux => Some(measure_payload_cdc(0.03, scale)),
        sigma_workloads::DatasetKind::Vm => Some(measure_payload_cdc(0.12, scale)),
        _ => None,
    };
    Table2Row {
        dataset: dataset.name.clone(),
        size_bytes: dataset.logical_bytes(),
        dedup_ratio_sc: dataset.exact_dedup_ratio(),
        dedup_ratio_cdc: cdc,
        has_file_boundaries: dataset.has_file_boundaries,
    }
}

/// Measures the CDC deduplication ratio of a versioned payload family whose
/// mutation rate mirrors the dataset's churn.
fn measure_payload_cdc(mutation_rate: f64, scale: Scale) -> f64 {
    let version_size = match scale {
        Scale::Tiny => 1 << 20,
        Scale::Small => 4 << 20,
        _ => 8 << 20,
    };
    let versions = versioned_payloads(VersionedPayloadParams {
        seed: 0x7ab1e2,
        versions: 4,
        version_size,
        mutation_rate,
    });
    let chunker = ChunkerParams::cdc(1024, 4096, 16 * 1024).build();
    let mut logical = 0u64;
    let mut unique_bytes = 0u64;
    let mut seen = HashSet::new();
    for (_, data) in &versions {
        for chunk in chunker.split(data) {
            logical += chunk.len() as u64;
            if seen.insert(Sha1::fingerprint(chunk.data())) {
                unique_bytes += chunk.len() as u64;
            }
        }
    }
    if unique_bytes == 0 {
        1.0
    } else {
        logical as f64 / unique_bytes as f64
    }
}

/// Renders Table 2.
pub fn render(rows: &[Table2Row]) -> String {
    let mut table = TextTable::new(vec![
        "dataset",
        "size",
        "dedup ratio (SC 4K)",
        "dedup ratio (CDC 4K)",
        "file boundaries",
    ]);
    for row in rows {
        table.add_row(vec![
            row.dataset.clone(),
            human_bytes(row.size_bytes),
            format!("{:.2}", row.dedup_ratio_sc),
            row.dedup_ratio_cdc
                .map(|v| format!("{:.2}", v))
                .unwrap_or_else(|| "-".to_string()),
            if row.has_file_boundaries { "yes" } else { "no" }.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rows_matching_paper_ordering() {
        let rows = run(Scale::Tiny);
        assert_eq!(rows.len(), 4);
        let by_name = |n: &str| rows.iter().find(|r| r.dataset == n).unwrap();
        let (linux, vm, mail, web) = (
            by_name("Linux"),
            by_name("VM"),
            by_name("Mail"),
            by_name("Web"),
        );
        assert!(mail.dedup_ratio_sc > linux.dedup_ratio_sc);
        assert!(linux.dedup_ratio_sc > vm.dedup_ratio_sc);
        assert!(vm.dedup_ratio_sc > web.dedup_ratio_sc);
        assert!(web.dedup_ratio_sc > 1.2);
        // CDC measured only where payloads exist.
        assert!(linux.dedup_ratio_cdc.is_some());
        assert!(vm.dedup_ratio_cdc.is_some());
        assert!(mail.dedup_ratio_cdc.is_none());
        assert!(web.dedup_ratio_cdc.is_none());
        assert!(linux.dedup_ratio_cdc.unwrap() > 1.5);
    }

    #[test]
    fn render_is_complete() {
        let text = render(&run(Scale::Tiny));
        for name in ["Linux", "VM", "Mail", "Web"] {
            assert!(text.contains(name));
        }
        assert!(text.contains("dedup ratio"));
    }
}
