//! Extreme Binning: file-similarity based stateless routing.

use parking_lot::Mutex;
use sigma_core::{DataRouter, RoutingContext, RoutingDecision};
use std::collections::HashMap;

/// Extreme Binning routes *whole files* by their representative (minimum) chunk
/// fingerprint: every chunk of a file follows the file's representative to the same
/// bin/node.
///
/// Two properties of the original scheme matter for the evaluation and are modelled
/// here:
///
/// * it needs **file boundaries** — the two FIU traces (Mail, Web) carry none, so
///   the scheme cannot run on them (the missing bars of Figure 8); and
/// * because placement is per *file*, large or heavily skewed file sizes (the VM
///   dataset) translate directly into capacity skew and poor effective
///   deduplication.
///
/// The first super-chunk of a file fixes the file's bin using the minimum
/// representative fingerprint seen so far; subsequent super-chunks of the same file
/// stick to that bin.  This matches the original scheme whenever the file's
/// representative chunk appears in its first super-chunk, which is the common case
/// for the min-hash of uniformly distributed fingerprints, and is noted as an
/// approximation in DESIGN.md.
///
/// # Example
///
/// ```
/// use sigma_baselines::ExtremeBinningRouter;
/// use sigma_core::DataRouter;
///
/// let router = ExtremeBinningRouter::new();
/// assert!(router.requires_file_boundaries());
/// assert_eq!(router.name(), "extreme-binning");
/// ```
#[derive(Debug, Default)]
pub struct ExtremeBinningRouter {
    assignments: Mutex<HashMap<u64, usize>>,
}

impl ExtremeBinningRouter {
    /// Creates the router.
    pub fn new() -> Self {
        ExtremeBinningRouter::default()
    }

    /// Number of files that currently have a bin assignment.
    pub fn assigned_files(&self) -> usize {
        self.assignments.lock().len()
    }
}

impl DataRouter for ExtremeBinningRouter {
    fn name(&self) -> String {
        "extreme-binning".to_string()
    }

    fn requires_file_boundaries(&self) -> bool {
        true
    }

    fn route(&self, ctx: &RoutingContext<'_>) -> RoutingDecision {
        let node_count = ctx.nodes.len();
        assert!(node_count > 0, "cannot route in an empty cluster");

        let representative_target = ctx
            .handprint
            .min_fingerprint()
            .or_else(|| ctx.super_chunk.fingerprints().next())
            .map(|fp| fp.bucket(node_count))
            .unwrap_or(0);

        let target = match ctx.file_id {
            Some(file) => {
                let mut assignments = self.assignments.lock();
                *assignments.entry(file).or_insert(representative_target)
            }
            // Without file information fall back to per-super-chunk placement
            // (callers normally reject this via `requires_file_boundaries`).
            None => representative_target,
        };
        RoutingDecision::stateless(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_core::{ChunkDescriptor, DedupNode, SigmaConfig, SuperChunk};
    use sigma_hashkit::{Digest, Sha1};
    use std::sync::Arc;

    fn nodes(n: usize) -> Vec<Arc<DedupNode>> {
        let c = SigmaConfig::default();
        (0..n).map(|i| Arc::new(DedupNode::new(i, &c))).collect()
    }

    fn super_chunk(ids: std::ops::Range<u64>) -> SuperChunk {
        SuperChunk::from_descriptors(
            0,
            ids.map(|i| ChunkDescriptor::new(Sha1::fingerprint(&i.to_le_bytes()), 4096))
                .collect(),
        )
    }

    fn ctx<'a>(
        sc: &'a SuperChunk,
        hp: &'a sigma_core::Handprint,
        nodes: &'a [Arc<DedupNode>],
        file_id: Option<u64>,
    ) -> RoutingContext<'a> {
        RoutingContext {
            super_chunk: sc,
            handprint: hp,
            file_id,
            nodes,
        }
    }

    #[test]
    fn all_super_chunks_of_a_file_share_a_bin() {
        let nodes = nodes(16);
        let router = ExtremeBinningRouter::new();
        let mut targets = std::collections::HashSet::new();
        for part in 0..8u64 {
            let sc = super_chunk(part * 256..(part + 1) * 256);
            let hp = sc.handprint(8);
            let d = router.route(&ctx(&sc, &hp, &nodes, Some(42)));
            targets.insert(d.target);
            assert_eq!(d.prerouting_lookup_messages, 0);
        }
        assert_eq!(targets.len(), 1, "a file must map to exactly one bin");
        assert_eq!(router.assigned_files(), 1);
    }

    #[test]
    fn identical_files_share_a_bin_across_clients() {
        // Whole-file duplicates are what Extreme Binning deduplicates well: the
        // representative fingerprint is identical, so the bin is identical.
        let nodes = nodes(8);
        let router = ExtremeBinningRouter::new();
        let sc = super_chunk(0..256);
        let hp = sc.handprint(8);
        let a = router.route(&ctx(&sc, &hp, &nodes, Some(1)));
        let b = router.route(&ctx(&sc, &hp, &nodes, Some(2)));
        assert_eq!(a.target, b.target);
        assert_eq!(router.assigned_files(), 2);
    }

    #[test]
    fn different_files_spread_over_bins() {
        let nodes = nodes(8);
        let router = ExtremeBinningRouter::new();
        let mut seen = std::collections::HashSet::new();
        for f in 0..64u64 {
            let sc = super_chunk(f * 1000..f * 1000 + 32);
            let hp = sc.handprint(8);
            let d = router.route(&ctx(&sc, &hp, &nodes, Some(f)));
            seen.insert(d.target);
        }
        assert!(seen.len() >= 6);
    }

    #[test]
    fn missing_file_id_falls_back_to_per_super_chunk_placement() {
        let nodes = nodes(4);
        let router = ExtremeBinningRouter::new();
        let sc = super_chunk(0..64);
        let hp = sc.handprint(8);
        let d = router.route(&ctx(&sc, &hp, &nodes, None));
        assert!(d.target < 4);
        assert_eq!(router.assigned_files(), 0);
    }
}
