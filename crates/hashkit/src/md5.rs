//! A self-contained MD5 implementation (RFC 1321).
//!
//! MD5 is evaluated in the paper as the faster fingerprinting alternative
//! (roughly twice the throughput of SHA-1 in Figure 4(a)); the prototype ultimately
//! selects SHA-1 for its lower collision probability, but MD5 is kept here both for
//! the benchmark reproduction and as a runtime option.

use crate::Digest;

const BLOCK_LEN: usize = 64;

/// Per-round left-rotation amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived additive constants: `K[i] = floor(2^32 * abs(sin(i + 1)))`.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Streaming MD5 hasher.
///
/// # Example
///
/// ```
/// use sigma_hashkit::{Digest, Md5};
///
/// let digest = Md5::digest(b"abc");
/// assert_eq!(
///     digest.iter().map(|b| format!("{:02x}", b)).collect::<String>(),
///     "900150983cd24fb0d6963f7d28e17f72"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; BLOCK_LEN],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Md5 {
    fn default() -> Self {
        Md5 {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476],
            buffer: [0u8; BLOCK_LEN],
            buffer_len: 0,
            total_len: 0,
        }
    }
}

impl Md5 {
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut m = [0u32; 16];
        for (i, word) in m.iter_mut().enumerate() {
            *word = u32::from_le_bytes(block[4 * i..4 * i + 4].try_into().unwrap());
        }

        let [mut a, mut b, mut c, mut d] = self.state;

        for i in 0..64 {
            let (f, g) = match i {
                0..=15 => ((b & c) | ((!b) & d), i),
                16..=31 => ((d & b) | ((!d) & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let sum = a.wrapping_add(f).wrapping_add(K[i]).wrapping_add(m[g]);
            b = b.wrapping_add(sum.rotate_left(S[i]));
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

impl Digest for Md5 {
    const OUTPUT_LEN: usize = 16;
    const NAME: &'static str = "md5";

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);

        if self.buffer_len > 0 {
            let need = BLOCK_LEN - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }

        while data.len() >= BLOCK_LEN {
            let block: [u8; BLOCK_LEN] = data[..BLOCK_LEN].try_into().unwrap();
            self.compress(&block);
            data = &data[BLOCK_LEN..];
        }

        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);

        let mut padding = Vec::with_capacity(2 * BLOCK_LEN);
        padding.push(0x80u8);
        let pad_to = {
            let rem = (self.buffer_len + 1) % BLOCK_LEN;
            if rem <= 56 {
                56 - rem
            } else {
                BLOCK_LEN + 56 - rem
            }
        };
        padding.extend(std::iter::repeat(0u8).take(pad_to));
        padding.extend_from_slice(&bit_len.to_le_bytes());

        self.update(&padding);
        debug_assert_eq!(self.buffer_len, 0);

        let mut out = Vec::with_capacity(Self::OUTPUT_LEN);
        for word in self.state {
            out.extend_from_slice(&word.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{:02x}", b)).collect()
    }

    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(hex(&Md5::digest(input)), *expected, "input {:?}", input);
        }
    }

    #[test]
    fn boundary_lengths() {
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0x5au8; len];
            let one_shot = Md5::digest(&data);
            let mut streaming = Md5::new();
            for piece in data.chunks(3) {
                streaming.update(piece);
            }
            assert_eq!(streaming.finalize(), one_shot, "length {}", len);
        }
    }

    proptest! {
        #[test]
        fn prop_streaming_equals_one_shot(
            data in proptest::collection::vec(any::<u8>(), 0..2048),
            split in 0usize..2048,
        ) {
            let split = split.min(data.len());
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), Md5::digest(&data));
        }

        #[test]
        fn prop_output_len(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            prop_assert_eq!(Md5::digest(&data).len(), Md5::OUTPUT_LEN);
        }
    }
}
