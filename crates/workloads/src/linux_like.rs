//! A Linux-kernel-source-like workload: many small files across many versions.
//!
//! The paper's Linux dataset is every kernel source tree from 1.0 to 3.3.6
//! (160 GB, DR ≈ 8 with 4 KB chunks).  Its redundancy structure — and the reason it
//! deduplicates so well — is that consecutive *versions* share the overwhelming
//! majority of their files verbatim, while a small fraction of files change a little
//! and a few files are added.  This generator reproduces exactly that structure over
//! an abstract chunk universe.

use crate::{
    ChunkSpec, DatasetKind, DatasetTrace, DeterministicRng, FileTrace, GenerationTrace, LogNormal,
};
use serde::{Deserialize, Serialize};

/// Parameters of the Linux-like generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinuxLikeParams {
    /// Deterministic seed (also namespaces the fingerprints).
    pub seed: u64,
    /// Number of source-tree versions (backup generations).
    pub versions: usize,
    /// Number of files in the first version.
    pub files_per_version: usize,
    /// Median file size in bytes (file sizes are log-normal around this).
    pub median_file_size: u64,
    /// Chunk size in bytes (the trace is pre-chunked).
    pub chunk_size: u32,
    /// Fraction of files modified from one version to the next.
    pub file_change_rate: f64,
    /// Fraction of a modified file's chunks that are replaced.
    pub chunk_change_rate: f64,
    /// Fraction of new files added each version (relative to the file count).
    pub file_add_rate: f64,
}

impl Default for LinuxLikeParams {
    fn default() -> Self {
        LinuxLikeParams {
            seed: 0x11c0de,
            versions: 10,
            files_per_version: 2000,
            median_file_size: 8 * 1024,
            chunk_size: 4096,
            file_change_rate: 0.08,
            chunk_change_rate: 0.3,
            file_add_rate: 0.02,
        }
    }
}

/// Generates the trace described by `params`.
///
/// # Example
///
/// ```
/// use sigma_workloads::linux_like::{generate, LinuxLikeParams};
///
/// let trace = generate(LinuxLikeParams { versions: 4, files_per_version: 100, ..LinuxLikeParams::default() });
/// assert_eq!(trace.generations.len(), 4);
/// assert!(trace.exact_dedup_ratio() > 2.0);
/// ```
pub fn generate(params: LinuxLikeParams) -> DatasetTrace {
    let mut rng = DeterministicRng::new(params.seed);
    let size_dist = LogNormal::with_median(params.median_file_size as f64, 2.5);
    let mut next_chunk_id = 0u64;
    let mut next_file_id = 0u64;

    let mut new_chunk = |rng_len: u32| {
        let id = next_chunk_id;
        next_chunk_id += 1;
        ChunkSpec::from_identity(params.seed, id, rng_len)
    };

    // Version 0: all-new files.
    let mut current: Vec<FileTrace> = Vec::with_capacity(params.files_per_version);
    for _ in 0..params.files_per_version {
        let size = rng.log_normal(size_dist).max(1.0) as u64;
        let chunks = chunk_sizes(size, params.chunk_size)
            .into_iter()
            .map(&mut new_chunk)
            .collect();
        current.push(FileTrace {
            file_id: next_file_id,
            name: format!("v0/src/file-{}.c", next_file_id),
            chunks,
        });
        next_file_id += 1;
    }

    let mut generations = vec![GenerationTrace {
        generation: 0,
        files: current.clone(),
    }];

    for version in 1..params.versions {
        // Most files carry over unchanged; a few are modified in place; a few new
        // files appear.
        let mut files = current.clone();
        for file in files.iter_mut() {
            if rng.chance(params.file_change_rate) {
                for chunk in file.chunks.iter_mut() {
                    if rng.chance(params.chunk_change_rate) {
                        *chunk = new_chunk(chunk.len);
                    }
                }
            }
        }
        let additions = ((params.files_per_version as f64) * params.file_add_rate).round() as usize;
        for _ in 0..additions {
            let size = rng.log_normal(size_dist).max(1.0) as u64;
            let chunks = chunk_sizes(size, params.chunk_size)
                .into_iter()
                .map(&mut new_chunk)
                .collect();
            files.push(FileTrace {
                file_id: next_file_id,
                name: format!("v{}/src/new-{}.c", version, next_file_id),
                chunks,
            });
            next_file_id += 1;
        }
        generations.push(GenerationTrace {
            generation: version,
            files: files.clone(),
        });
        current = files;
    }

    DatasetTrace {
        name: "Linux".to_string(),
        kind: DatasetKind::Linux,
        has_file_boundaries: true,
        generations,
    }
}

/// Splits a logical size into chunk sizes of at most `chunk_size` bytes.
fn chunk_sizes(total: u64, chunk_size: u32) -> Vec<u32> {
    let mut out = Vec::with_capacity((total / chunk_size as u64 + 1) as usize);
    let mut remaining = total;
    while remaining > 0 {
        let take = remaining.min(chunk_size as u64) as u32;
        out.push(take);
        remaining -= take as u64;
    }
    if out.is_empty() {
        out.push(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> LinuxLikeParams {
        LinuxLikeParams {
            versions: 6,
            files_per_version: 200,
            ..LinuxLikeParams::default()
        }
    }

    #[test]
    fn generations_and_boundaries() {
        let t = generate(small_params());
        assert_eq!(t.generations.len(), 6);
        assert!(t.has_file_boundaries);
        assert_eq!(t.kind, DatasetKind::Linux);
        // Files are added over time.
        assert!(t.generations[5].files.len() > t.generations[0].files.len());
    }

    #[test]
    fn high_inter_version_redundancy() {
        let t = generate(small_params());
        let dr = t.exact_dedup_ratio();
        // 6 versions with ~8% of files changing slightly: DR should approach the
        // number of versions.
        assert!(dr > 3.5 && dr < 6.5, "dr = {}", dr);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(small_params());
        let b = generate(small_params());
        assert_eq!(a, b);
        let c = generate(LinuxLikeParams {
            seed: 999,
            ..small_params()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn file_identity_is_stable_across_versions() {
        let t = generate(small_params());
        let first_ids: std::collections::HashSet<u64> =
            t.generations[0].files.iter().map(|f| f.file_id).collect();
        let later_ids: std::collections::HashSet<u64> =
            t.generations[3].files.iter().map(|f| f.file_id).collect();
        assert!(first_ids.is_subset(&later_ids));
    }

    #[test]
    fn chunk_sizes_tile_the_file() {
        assert_eq!(chunk_sizes(10_000, 4096), vec![4096, 4096, 1808]);
        assert_eq!(chunk_sizes(0, 4096), vec![1]);
        assert_eq!(chunk_sizes(4096, 4096), vec![4096]);
    }

    #[test]
    fn small_files_dominate() {
        let t = generate(small_params());
        let small = t.generations[0]
            .files
            .iter()
            .filter(|f| f.logical_bytes() < 64 * 1024)
            .count();
        assert!(small * 10 > t.generations[0].files.len() * 7);
    }
}
