//! Parallel container management.
//!
//! The deduplication server keeps one *open* container per incoming data stream so
//! that the chunks of different backup streams do not interleave (which would destroy
//! the locality the fingerprint cache depends on).  When an open container fills up
//! it is sealed, charged to the disk model as a sequential write, and a new one is
//! opened.  Sealed containers can be read back for restores and for fingerprint
//! prefetching.
//!
//! Concurrency: each open container sits behind its own mutex, so streams append
//! in parallel and only contend when they touch the *same* stream's container —
//! which, by construction, only happens for requests of that one stream.  The
//! open- and sealed-container directories are reader/writer-locked maps, and the
//! aggregate counters are atomics, so reads (restores, metadata prefetches) never
//! block writers of unrelated containers.  Lock order is always directory → slot →
//! sealed-map; no path takes them in another order, which is what the concurrency
//! stress suite exercises.

use crate::read_cache::{ContainerReadCache, ReadCacheStats};
use crate::{
    ChunkLocation, Container, ContainerBuilder, ContainerId, ContainerMeta, DiskModel, Journal,
    JournalRecord, MemoryBackend, Result, SimDiskBackend, StorageBackend, StorageError,
    StorageObject, CONTAINER_BLOB_DATA_OFFSET,
};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use sigma_hashkit::Fingerprint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a backup data stream within one node.
pub type StreamId = u64;

/// Default container data-section capacity: 4 MB, as in the Data Domain design the
/// paper builds on.
pub const DEFAULT_CONTAINER_CAPACITY: usize = 4 * 1024 * 1024;

/// Aggregate statistics of a [`ContainerStore`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainerStoreStats {
    /// Containers sealed and written to (simulated) disk.
    pub sealed_containers: u64,
    /// Containers still open.
    pub open_containers: u64,
    /// Total bytes stored in sealed containers' data sections.
    pub stored_bytes: u64,
    /// Total chunks stored in sealed containers.
    pub stored_chunks: u64,
    /// Container metadata sections read back (fingerprint prefetches).
    pub metadata_reads: u64,
    /// Full container data reads (restores).
    pub data_reads: u64,
    /// Containers dropped by the garbage collector (no live chunks).
    pub gc_dropped_containers: u64,
    /// Containers compacted by the garbage collector (live chunks rewritten).
    pub gc_compacted_containers: u64,
    /// Bytes reclaimed by garbage collection (drops + compactions).
    pub gc_reclaimed_bytes: u64,
}

/// Per-container live/dead byte accounting, as of the last GC mark that scored
/// the container (see [`ContainerStore::container_liveness`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainerLiveness {
    /// Bytes of chunks referenced by at least one surviving recipe.
    pub live_bytes: u64,
    /// Bytes of chunks no surviving recipe references.
    pub dead_bytes: u64,
    /// Chunks referenced by at least one surviving recipe.
    pub live_chunks: u64,
    /// Chunks no surviving recipe references.
    pub dead_chunks: u64,
}

impl ContainerLiveness {
    /// Fraction of the container's data section that is live (1.0 when empty).
    pub fn liveness(&self) -> f64 {
        let total = self.live_bytes + self.dead_bytes;
        if total == 0 {
            1.0
        } else {
            self.live_bytes as f64 / total as f64
        }
    }
}

/// What one container compaction did (see [`ContainerStore::compact_container`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// The container that was compacted away.
    pub victim: ContainerId,
    /// The fresh container now holding the victim's live chunks.
    pub replacement: ContainerId,
    /// The live chunks' records *at their new offsets* in the replacement.
    pub live_records: Vec<crate::ChunkRecord>,
    /// The dead chunks' records (old offsets; their index entries must go).
    pub dead_records: Vec<crate::ChunkRecord>,
    /// Physical bytes reclaimed (victim data size − replacement data size).
    pub reclaimed_bytes: u64,
}

/// One stream's open container.  `builder` is `None` once the slot has been
/// retired by a flush racing with a store; the storer re-fetches a fresh slot
/// from the directory instead of appending to a container that was just sealed.
struct OpenSlot {
    builder: Option<ContainerBuilder>,
}

/// A node-local store of open and sealed containers.
///
/// # Example
///
/// ```
/// use sigma_storage::ContainerStore;
/// use sigma_hashkit::{Digest, Sha1};
///
/// let store = ContainerStore::new(1024 * 1024);
/// let payload = b"a unique chunk".to_vec();
/// let fp = Sha1::fingerprint(&payload);
/// let location = store.store_chunk(0, fp, &payload).unwrap();
/// store.flush().unwrap();
/// assert_eq!(store.read_chunk(&location.container, &fp).unwrap(), payload);
/// ```
pub struct ContainerStore {
    capacity: usize,
    /// The durable medium.  Volatile backends ([`MemoryBackend`],
    /// [`SimDiskBackend`]) carry no container objects — the journal flowing
    /// through the same simulated medium already embeds every sealed container,
    /// so mirroring them would only double RAM.  A persistent backend
    /// ([`persistent`](StorageBackend::persistent)) gets one object per sealed
    /// container, written at the same journal-first ack points, and the restore
    /// path reads payload bytes back *from the object* so the files are
    /// load-bearing, not decorative.
    backend: Arc<dyn StorageBackend>,
    /// Write-ahead journal, when the node is durable: container seals, adoptions
    /// and their chunk-index finalizations are appended *before* they take effect
    /// in memory, so a crash can lose at most the open (unacknowledged) tail.
    journal: Option<Arc<Journal>>,
    next_id: AtomicU64,
    open: RwLock<HashMap<StreamId, Arc<Mutex<OpenSlot>>>>,
    sealed: RwLock<HashMap<ContainerId, Container>>,
    /// Adoption ledger: `(origin node, origin container) → local container`.
    /// Adopting the same origin twice (a retried rebalance step, or replay of a
    /// duplicated migration record) returns the existing local container instead
    /// of double-storing the data.
    adopted: RwLock<HashMap<(u64, ContainerId), ContainerId>>,
    /// Per-container live/dead byte accounting, refreshed by every GC mark that
    /// scores the container and dropped with it.  Containers never scored (no GC
    /// ran yet) are absent.
    liveness: RwLock<HashMap<ContainerId, ContainerLiveness>>,
    /// Bounded LRU of container data sections serving repeat restore reads on
    /// persistent backends; `None` when disabled (the default, and always on
    /// volatile backends, whose data sections already live in the sealed map).
    read_cache: Option<ContainerReadCache>,
    sealed_containers: AtomicU64,
    stored_bytes: AtomicU64,
    stored_chunks: AtomicU64,
    metadata_reads: AtomicU64,
    data_reads: AtomicU64,
    gc_dropped: AtomicU64,
    gc_compacted: AtomicU64,
    gc_reclaimed_bytes: AtomicU64,
}

impl std::fmt::Debug for ContainerStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContainerStore")
            .field("capacity", &self.capacity)
            .field("open", &self.open.read().len())
            .field("sealed", &self.sealed.read().len())
            .finish()
    }
}

/// Maximum gap (bytes) between two record extents that still coalesces them
/// into one backend read: streaming a small skipped stretch is cheaper than
/// paying a second seek + syscall.
const COALESCE_GAP: usize = 64 * 1024;

/// One chunk's worth of work for [`ContainerStore::read_chunks_batched`]: a
/// record extent to read and the output slice to decode it into.  The caller
/// resolves fingerprints to extents via the chunk index; `out.len()` is the
/// record length.
pub struct ChunkFetch<'a> {
    /// Fingerprint the extent was resolved from (error reporting only).
    pub fingerprint: Fingerprint,
    /// Record offset within the container's data section.
    pub offset: u32,
    /// Destination slice, typically a window of the restore's preallocated
    /// output buffer.
    pub out: &'a mut [u8],
}

/// What one [`ContainerStore::read_chunks_batched`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchedReadStats {
    /// Chunk payloads decoded.
    pub chunks: u64,
    /// Bytes actually read from the backend (0 on a cache hit or volatile
    /// serve); divided into logical bytes this is the read amplification.
    pub backend_bytes_read: u64,
    /// Backend reads issued after coalescing (0 when served from RAM).
    pub coalesced_runs: u64,
    /// Batches served entirely from the container read cache.
    pub cache_hits: u64,
    /// Batches that had to read the backend with a cache attached.
    pub cache_misses: u64,
}

/// Location information returned when a chunk is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredChunk {
    /// Container the chunk was appended to.
    pub container: ContainerId,
    /// Offset within the container's data section.
    pub offset: u32,
    /// Chunk length in bytes.
    pub len: u32,
}

impl ContainerStore {
    /// Creates a store with the given per-container data capacity (bytes).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "container capacity must be non-zero");
        ContainerStore {
            capacity,
            backend: Arc::new(MemoryBackend::new()),
            journal: None,
            next_id: AtomicU64::new(0),
            open: RwLock::new(HashMap::new()),
            sealed: RwLock::new(HashMap::new()),
            adopted: RwLock::new(HashMap::new()),
            liveness: RwLock::new(HashMap::new()),
            read_cache: None,
            sealed_containers: AtomicU64::new(0),
            stored_bytes: AtomicU64::new(0),
            stored_chunks: AtomicU64::new(0),
            metadata_reads: AtomicU64::new(0),
            data_reads: AtomicU64::new(0),
            gc_dropped: AtomicU64::new(0),
            gc_compacted: AtomicU64::new(0),
            gc_reclaimed_bytes: AtomicU64::new(0),
        }
    }

    /// Creates a store with the default 4 MB container capacity.
    pub fn with_default_capacity() -> Self {
        ContainerStore::new(DEFAULT_CONTAINER_CAPACITY)
    }

    /// Attaches a disk model: sealed containers are charged as sequential writes,
    /// metadata and data reads as sequential reads.  (Equivalent to
    /// [`with_backend`](Self::with_backend) with a [`SimDiskBackend`].)
    pub fn with_disk(self, disk: Arc<DiskModel>) -> Self {
        self.with_backend(Arc::new(SimDiskBackend::new(disk)))
    }

    /// Attaches a storage backend.  Disk-model charging follows the backend's
    /// own [`disk`](StorageBackend::disk); persistent backends additionally get
    /// one object per sealed container.
    pub fn with_backend(mut self, backend: Arc<dyn StorageBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// The backend this store's sealed containers live on.
    pub fn backend(&self) -> Arc<dyn StorageBackend> {
        self.backend.clone()
    }

    fn disk(&self) -> Option<Arc<DiskModel>> {
        self.backend.disk()
    }

    /// Attaches a write-ahead journal: every seal and adoption appends its records
    /// before taking effect in memory.
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Gives the restore path a [`ContainerReadCache`] bounded at
    /// `capacity_bytes`; `0` disables caching.  Only persistent backends ever
    /// populate it — volatile data sections already live in RAM.
    pub fn with_read_cache_bytes(mut self, capacity_bytes: u64) -> Self {
        self.read_cache = (capacity_bytes > 0).then(|| ContainerReadCache::new(capacity_bytes));
        self
    }

    /// The read cache's counters and occupancy, `None` when caching is off.
    pub fn read_cache_stats(&self) -> Option<ReadCacheStats> {
        self.read_cache.as_ref().map(|c| c.stats())
    }

    fn invalidate_cached(&self, container: &ContainerId) {
        if let Some(cache) = &self.read_cache {
            cache.invalidate(container);
        }
    }

    /// Per-container data capacity in bytes.
    pub fn container_capacity(&self) -> usize {
        self.capacity
    }

    fn alloc_id(&self) -> ContainerId {
        ContainerId::new(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Appends a unique chunk to the open container of `stream`, sealing and rolling
    /// over to a fresh container when the current one is full.
    ///
    /// Returns where the chunk was stored.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ChunkTooLarge`] when a single chunk exceeds the
    /// container capacity.
    pub fn store_chunk(
        &self,
        stream: StreamId,
        fingerprint: Fingerprint,
        data: &[u8],
    ) -> Result<StoredChunk> {
        self.store_impl(stream, fingerprint, data.len(), Some(data))
    }

    /// Appends a *synthetic* chunk of `len` bytes: only its metadata record and
    /// logical length are tracked, no payload is kept.  Used when a node is driven by
    /// a fingerprint trace instead of real data; such chunks cannot be read back.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ChunkTooLarge`] when a single chunk exceeds the
    /// container capacity.
    pub fn store_chunk_synthetic(
        &self,
        stream: StreamId,
        fingerprint: Fingerprint,
        len: u32,
    ) -> Result<StoredChunk> {
        self.store_impl(stream, fingerprint, len as usize, None)
    }

    fn store_impl(
        &self,
        stream: StreamId,
        fingerprint: Fingerprint,
        len: usize,
        data: Option<&[u8]>,
    ) -> Result<StoredChunk> {
        if len > self.capacity {
            return Err(StorageError::ChunkTooLarge {
                chunk_size: len,
                container_capacity: self.capacity,
            });
        }
        loop {
            // Fetch (or create) this stream's open slot; only the directory lock is
            // held while doing so, never a slot lock.
            let slot = {
                let open = self.open.read();
                open.get(&stream).cloned()
            };
            let slot = match slot {
                Some(slot) => slot,
                None => {
                    let mut open = self.open.write();
                    open.entry(stream)
                        .or_insert_with(|| {
                            Arc::new(Mutex::new(OpenSlot {
                                builder: Some(ContainerBuilder::new(
                                    self.alloc_id(),
                                    self.capacity,
                                )),
                            }))
                        })
                        .clone()
                }
            };

            let mut guard = slot.lock();
            if guard.builder.is_none() {
                // A concurrent flush retired this slot between our directory fetch
                // and the lock; start over with a fresh container.
                continue;
            }

            // Roll over if the chunk does not fit.
            if !guard.builder.as_ref().expect("checked above").fits(len) {
                let full = guard.builder.take().expect("checked above");
                guard.builder = Some(ContainerBuilder::new(self.alloc_id(), self.capacity));
                self.seal(full)?;
            }

            let builder = guard.builder.as_mut().expect("fresh after rollover");
            let offset = builder.used() as u32;
            let appended = match data {
                Some(bytes) => builder.try_append(fingerprint, bytes),
                None => builder.try_append_synthetic(fingerprint, len as u32),
            };
            debug_assert!(appended, "chunk must fit after rollover");
            return Ok(StoredChunk {
                container: builder.id(),
                offset,
                len: len as u32,
            });
        }
    }

    /// The container currently open for `stream`, if any.
    pub fn open_container(&self, stream: StreamId) -> Option<ContainerId> {
        let slot = self.open.read().get(&stream).cloned()?;
        let guard = slot.lock();
        guard.builder.as_ref().map(|b| b.id())
    }

    /// The chunk-index entries a container's seal makes durable: one batched
    /// finalize record per sealed container.
    fn finalize_entries(container: &Container) -> Vec<(Fingerprint, ChunkLocation)> {
        container
            .meta()
            .records
            .iter()
            .map(|r| {
                (
                    r.fingerprint,
                    ChunkLocation {
                        container: container.id(),
                        offset: r.offset,
                        len: r.len,
                    },
                )
            })
            .collect()
    }

    fn seal(&self, builder: ContainerBuilder) -> Result<()> {
        self.seal_group(vec![builder])
    }

    /// Seals a group of full containers as one buffered write: every container's
    /// seal and batched chunk-index finalize goes into a single journal group
    /// commit, and the containers' data+metadata sections are charged to the
    /// disk model as one coalesced sequential transfer.  A rollover seals a
    /// group of one; [`flush`](Self::flush) seals every retired stream at once.
    ///
    /// Write-ahead: the group must be durable before any seal takes effect in
    /// memory.  A crash mid-group installs nothing — the journaled prefix is
    /// recovered by replay, and the unacknowledged rest is dropped, exactly as
    /// an interrupted session would drop it.
    fn seal_group(&self, builders: Vec<ContainerBuilder>) -> Result<()> {
        if builders.is_empty() {
            return Ok(());
        }
        let containers: Vec<Container> = builders.into_iter().map(|b| b.seal()).collect();
        if let Some(journal) = &self.journal {
            let mut records = Vec::with_capacity(containers.len() * 2);
            for container in &containers {
                records.push(JournalRecord::ContainerSeal {
                    container: container.clone(),
                });
                records.push(JournalRecord::ChunkIndexFinalize {
                    container: container.id(),
                    entries: Self::finalize_entries(container),
                });
            }
            journal.append_batch(&records)?;
        }
        if let Some(disk) = self.disk() {
            let total: u64 = containers
                .iter()
                .map(|c| (c.data_size() + c.meta().serialized_size()) as u64)
                .sum();
            disk.record_sequential_transfer(total);
        }
        // Persistent backends materialize each sealed container as an object,
        // after the journal records (write-ahead) and before the seal becomes
        // visible in memory — an error leaves the node recoverable from the
        // journal rather than serving containers the medium never got.
        if self.backend.persistent() {
            for container in &containers {
                self.backend.write_object(
                    StorageObject::Container(container.id()),
                    &container.encode_blob(),
                )?;
            }
        }
        let mut sealed = self.sealed.write();
        for container in containers {
            self.sealed_containers.fetch_add(1, Ordering::Relaxed);
            self.stored_bytes
                .fetch_add(container.data_size() as u64, Ordering::Relaxed);
            self.stored_chunks
                .fetch_add(container.chunk_count() as u64, Ordering::Relaxed);
            sealed.insert(container.id(), container);
        }
        Ok(())
    }

    /// Seals every open container (end of a backup session) as one coalesced
    /// group write — one journal group commit, one sequential disk transfer —
    /// instead of a per-container trickle.
    ///
    /// # Errors
    ///
    /// Returns the journal crash hit while sealing; every open container of the
    /// session is then dropped, exactly as a crash would drop them.
    pub fn flush(&self) -> Result<()> {
        // Retire every open slot.  The directory lock is released before the slots
        // are sealed; a store racing with the flush either appended before its slot
        // was retired (its chunk is sealed here) or finds the retired slot and
        // opens a fresh container.
        let slots: Vec<Arc<Mutex<OpenSlot>>> = {
            let mut open = self.open.write();
            open.drain().map(|(_, slot)| slot).collect()
        };
        let builders: Vec<ContainerBuilder> = slots
            .into_iter()
            .filter_map(|slot| slot.lock().builder.take())
            .filter(|b| b.chunk_count() > 0)
            .collect();
        self.seal_group(builders)
    }

    /// Snapshots a still-open container holding `container`, if any.
    fn clone_open(&self, container: &ContainerId) -> Option<Container> {
        let slots: Vec<Arc<Mutex<OpenSlot>>> = self.open.read().values().cloned().collect();
        for slot in slots {
            let guard = slot.lock();
            if let Some(builder) = guard.builder.as_ref() {
                if builder.id() == *container {
                    return Some(builder.clone().seal());
                }
            }
        }
        None
    }

    /// Reads a sealed container's metadata section (fingerprint list).
    ///
    /// Charged to the disk model as a sequential read of the metadata section; this
    /// is the "prefetch" operation behind the chunk fingerprint cache.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ContainerNotFound`] if the container is not sealed.
    pub fn read_metadata(&self, container: &ContainerId) -> Result<ContainerMeta> {
        self.metadata_reads.fetch_add(1, Ordering::Relaxed);
        // The sealed-map guard must be dropped before falling back to the open
        // directory: clone_open takes slot mutexes, and the store path seals while
        // holding a slot mutex (slot → sealed); holding sealed here would invert
        // that order and deadlock.
        let sealed = {
            let map = self.sealed.read();
            map.get(container).map(|c| c.meta().clone())
        };
        let meta = match sealed {
            Some(m) => m,
            None => {
                // Still-open containers (written moments ago by some stream) are
                // visible too: their fingerprints are in memory on a real server.
                self.clone_open(container)
                    .map(|c| c.meta().clone())
                    .ok_or(StorageError::ContainerNotFound(*container))?
            }
        };
        if let Some(disk) = self.disk() {
            // A metadata prefetch is a seek into the container object followed
            // by a short stream of the metadata section: charge the seek via
            // the random-read model instead of pretending the whole operation
            // was one sequential transfer.
            disk.record_random_read();
            disk.record_sequential_transfer(meta.serialized_size() as u64);
        }
        Ok(meta)
    }

    /// Reads one chunk's payload from a sealed container (restore path).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ContainerNotFound`] if the container is unknown, or
    /// [`StorageError::ChunkNotInContainer`] if the fingerprint is not stored there.
    pub fn read_chunk(&self, container: &ContainerId, fp: &Fingerprint) -> Result<Vec<u8>> {
        self.data_reads.fetch_add(1, Ordering::Relaxed);
        // Check sealed containers first, then containers still open (their contents
        // are in memory on a real server and readable immediately).  As in
        // read_metadata, the sealed guard is dropped before clone_open so the
        // slot → sealed lock order of the store path is never inverted.
        // What the sealed map knows about the chunk: on a volatile backend the
        // payload is cloned under the guard; on a persistent backend only the
        // record's extent is taken, and the bytes are read back *off the object
        // file* after the guard drops — the file is the restore medium, so a
        // byte the medium lost is a byte the restore visibly loses.
        enum SealedHit {
            Bytes(Vec<u8>),
            Extent(u32, u32),
        }
        let sealed = {
            let map = self.sealed.read();
            map.get(container).map(|c| {
                c.meta()
                    .records
                    .iter()
                    .find(|r| &r.fingerprint == fp)
                    // Synthetic (trace-driven) chunks have no payload: their
                    // records point past the real data section.
                    .filter(|r| (r.offset + r.len) as usize <= c.data().len())
                    .map(|r| {
                        if self.backend.persistent() {
                            SealedHit::Extent(r.offset, r.len)
                        } else {
                            SealedHit::Bytes(
                                c.data()[r.offset as usize..(r.offset + r.len) as usize].to_vec(),
                            )
                        }
                    })
            })
        };
        let data = match sealed {
            Some(found) => match found {
                Some(SealedHit::Bytes(bytes)) => Some(bytes),
                Some(SealedHit::Extent(offset, len)) => Some(self.backend.read_at(
                    StorageObject::Container(*container),
                    (CONTAINER_BLOB_DATA_OFFSET + offset as usize) as u64,
                    len as usize,
                )?),
                None => None,
            },
            None => {
                let open = self
                    .clone_open(container)
                    .ok_or(StorageError::ContainerNotFound(*container))?;
                open.chunk_data(fp).map(|d| d.to_vec())
            }
        };
        let data = data.ok_or_else(|| StorageError::ChunkNotInContainer {
            container: *container,
            fingerprint: fp.to_string(),
        })?;
        if let Some(disk) = self.disk() {
            disk.record_sequential_transfer(data.len() as u64);
        }
        Ok(data)
    }

    /// Reads a batch of chunk payloads out of **one** container, decoding each
    /// directly into its caller-provided output slice (restore path).
    ///
    /// Where the serial [`read_chunk`](Self::read_chunk) issues one backend
    /// read per chunk, this coalesces: on a volatile backend every payload is
    /// copied out of the in-RAM data section under one sealed-map guard; on a
    /// persistent backend adjacent/nearby record extents become one
    /// [`read_at`](StorageBackend::read_at) per coalesced run — or, when a
    /// [read cache](Self::with_read_cache_bytes) is attached and the section
    /// fits its budget, one whole-section read that also fills the cache, with
    /// repeat visits served from RAM.  Disk-model charging is identical to the
    /// serial path (one sequential transfer per chunk), so simulated figures do
    /// not shift because reads were batched.
    ///
    /// The caller resolves fingerprints to record extents first (via the chunk
    /// index); each [`ChunkFetch`]'s `out` length is the record length.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ContainerNotFound`] if the container is unknown,
    /// or [`StorageError::ChunkNotInContainer`] if any extent points past the
    /// data section (a synthetic trace-driven chunk, which has no payload).
    /// On error the output slices are in an unspecified partially-written
    /// state; callers fall back to the serial path.
    pub fn read_chunks_batched(
        &self,
        container: &ContainerId,
        fetches: &mut [ChunkFetch<'_>],
    ) -> Result<BatchedReadStats> {
        if fetches.is_empty() {
            return Ok(BatchedReadStats::default());
        }
        self.data_reads
            .fetch_add(fetches.len() as u64, Ordering::Relaxed);
        let mut stats = BatchedReadStats {
            chunks: fetches.len() as u64,
            ..BatchedReadStats::default()
        };
        // Sealed lookup first; as in read_chunk, the guard is dropped before
        // the open-container fallback so the slot → sealed lock order of the
        // store path is never inverted.
        enum SealedBatch {
            /// Volatile backend: every payload was copied out under the guard.
            Served,
            /// Persistent backend: extents validated; read off the object next.
            Extents { data_len: usize },
        }
        let sealed = {
            let map = self.sealed.read();
            match map.get(container) {
                None => None,
                Some(c) => {
                    for f in fetches.iter() {
                        // Synthetic (trace-driven) chunks have no payload:
                        // their records point past the real data section.
                        if f.offset as usize + f.out.len() > c.data().len() {
                            return Err(StorageError::ChunkNotInContainer {
                                container: *container,
                                fingerprint: f.fingerprint.to_string(),
                            });
                        }
                    }
                    if self.backend.persistent() {
                        Some(SealedBatch::Extents {
                            data_len: c.data().len(),
                        })
                    } else {
                        for f in fetches.iter_mut() {
                            let start = f.offset as usize;
                            f.out.copy_from_slice(&c.data()[start..start + f.out.len()]);
                        }
                        Some(SealedBatch::Served)
                    }
                }
            }
        };
        match sealed {
            Some(SealedBatch::Served) => {}
            Some(SealedBatch::Extents { data_len }) => {
                self.read_extents_persistent(container, fetches, data_len, &mut stats)?;
            }
            None => {
                let open = self
                    .clone_open(container)
                    .ok_or(StorageError::ContainerNotFound(*container))?;
                for f in fetches.iter_mut() {
                    let data = open
                        .chunk_data(&f.fingerprint)
                        .filter(|d| d.len() == f.out.len())
                        .ok_or_else(|| StorageError::ChunkNotInContainer {
                            container: *container,
                            fingerprint: f.fingerprint.to_string(),
                        })?;
                    f.out.copy_from_slice(data);
                }
            }
        }
        if let Some(disk) = self.disk() {
            // Chunk-for-chunk the same charge as the serial read path: the
            // simulated figures must not shift because reads were batched.
            for f in fetches.iter() {
                disk.record_sequential_transfer(f.out.len() as u64);
            }
        }
        Ok(stats)
    }

    /// The persistent-backend arm of [`read_chunks_batched`]: cache, then
    /// whole-section readahead, then coalesced extent runs.
    ///
    /// [`read_chunks_batched`]: Self::read_chunks_batched
    fn read_extents_persistent(
        &self,
        container: &ContainerId,
        fetches: &mut [ChunkFetch<'_>],
        data_len: usize,
        stats: &mut BatchedReadStats,
    ) -> Result<()> {
        let obj = StorageObject::Container(*container);
        if let Some(cache) = &self.read_cache {
            if let Some(section) = cache.get(container) {
                if section.len() == data_len {
                    stats.cache_hits += 1;
                    for f in fetches.iter_mut() {
                        let start = f.offset as usize;
                        f.out.copy_from_slice(&section[start..start + f.out.len()]);
                    }
                    return Ok(());
                }
                // A resident section of the wrong length can only be stale —
                // never serve it.
                cache.invalidate(container);
            }
            stats.cache_misses += 1;
            if data_len as u64 <= cache.capacity_bytes() {
                // Read the whole data section once: restores revisit
                // containers, so the readahead doubles as the cache fill.
                let section: Arc<[u8]> = self
                    .backend
                    .read_at(obj, CONTAINER_BLOB_DATA_OFFSET as u64, data_len)?
                    .into();
                stats.backend_bytes_read += data_len as u64;
                stats.coalesced_runs += 1;
                for f in fetches.iter_mut() {
                    let start = f.offset as usize;
                    f.out.copy_from_slice(&section[start..start + f.out.len()]);
                }
                cache.insert(*container, section);
                return Ok(());
            }
            // Section bigger than the whole cache budget: fall through to
            // plain coalesced runs without caching.
        }
        // Walk the extents in offset order, coalescing neighbours whose gap is
        // at most COALESCE_GAP into one backend read per run.
        let mut order: Vec<usize> = (0..fetches.len()).collect();
        order.sort_unstable_by_key(|&i| fetches[i].offset);
        let mut next = 0;
        while next < order.len() {
            let mut run = vec![order[next]];
            let run_start = fetches[order[next]].offset as usize;
            let mut run_end = run_start + fetches[order[next]].out.len();
            next += 1;
            while next < order.len() {
                let idx = order[next];
                let start = fetches[idx].offset as usize;
                if start > run_end + COALESCE_GAP {
                    break;
                }
                run_end = run_end.max(start + fetches[idx].out.len());
                run.push(idx);
                next += 1;
            }
            let run_len = run_end - run_start;
            if run.len() == 1 {
                // A lone extent reads straight into its output slice — no
                // intermediate buffer at all.
                let f = &mut fetches[run[0]];
                self.backend.read_at_into(
                    obj,
                    (CONTAINER_BLOB_DATA_OFFSET + run_start) as u64,
                    &mut f.out[..],
                )?;
            } else {
                let buf = self.backend.read_at(
                    obj,
                    (CONTAINER_BLOB_DATA_OFFSET + run_start) as u64,
                    run_len,
                )?;
                for &idx in &run {
                    let f = &mut fetches[idx];
                    let start = f.offset as usize - run_start;
                    f.out.copy_from_slice(&buf[start..start + f.out.len()]);
                }
            }
            stats.backend_bytes_read += run_len as u64;
            stats.coalesced_runs += 1;
        }
        Ok(())
    }

    /// Identifiers of every sealed container, sorted ascending.
    ///
    /// Sorted so that rebalancing plans built from this list are deterministic.
    pub fn sealed_container_ids(&self) -> Vec<ContainerId> {
        let mut ids: Vec<ContainerId> = self.sealed.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Logical data-section size of a sealed container, if it exists.
    pub fn sealed_data_size(&self, container: &ContainerId) -> Option<usize> {
        self.sealed.read().get(container).map(|c| c.data_size())
    }

    /// Clones a sealed container out of the store for migration to another node.
    ///
    /// Charged to the disk model as a sequential read of the container's data and
    /// metadata sections (the rebalancer streaming it off this node's disk).  The
    /// container stays in the store until [`remove_sealed`](Self::remove_sealed).
    pub fn export_sealed(&self, container: &ContainerId) -> Option<Container> {
        let cloned = self.sealed.read().get(container).cloned()?;
        if let Some(disk) = self.disk() {
            disk.record_sequential_transfer(
                (cloned.data_size() + cloned.meta().serialized_size()) as u64,
            );
        }
        Some(cloned)
    }

    /// Adopts a container migrated from another node, re-identifying it in this
    /// store's ID space (per-node container IDs would otherwise collide).
    ///
    /// `origin_node` is the stable ID of the node the container came from; the
    /// `(origin node, origin container)` pair keys an adoption ledger that makes
    /// this operation **idempotent**: adopting the same origin again (a retried
    /// rebalance step after a crash, or replay of a duplicated migration record)
    /// returns the already-assigned local identifier without storing the data a
    /// second time.  `rfps` are the representative fingerprints travelling with
    /// the container; they are journaled with it so the adoption is one atomic
    /// durable event.
    ///
    /// Returns the container's (possibly pre-existing) local identifier.  First
    /// adoptions are charged to the disk model as a sequential write, exactly like
    /// sealing a locally filled container.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Crashed`] when the journal refuses the append.
    pub fn adopt_sealed(
        &self,
        origin_node: u64,
        container: Container,
        rfps: &[Fingerprint],
    ) -> Result<ContainerId> {
        let origin = (origin_node, container.id());
        // The ledger write-lock is held across the whole adoption (check,
        // journal appends, counters, install): a bare check-then-act would let
        // two overlapping rebalance plans racing on the same origin both pass
        // the check and double-store the container.  The ledger lock is taken
        // before the journal's internal lock on this path and nothing takes
        // them in the opposite order, and migrations are rare enough that the
        // serialization cost is irrelevant.
        let mut adopted = self.adopted.write();
        if let Some(existing) = adopted.get(&origin) {
            return Ok(*existing);
        }
        let new_id = self.alloc_id();
        let container = container.with_id(new_id);
        if let Some(journal) = &self.journal {
            journal.append_batch(&[
                JournalRecord::ContainerAdopt {
                    origin_node,
                    origin_container: origin.1,
                    container: container.clone(),
                    rfps: rfps.to_vec(),
                },
                JournalRecord::ChunkIndexFinalize {
                    container: new_id,
                    entries: Self::finalize_entries(&container),
                },
            ])?;
        }
        if let Some(disk) = self.disk() {
            disk.record_sequential_transfer(
                (container.data_size() + container.meta().serialized_size()) as u64,
            );
        }
        if self.backend.persistent() {
            self.backend
                .write_object(StorageObject::Container(new_id), &container.encode_blob())?;
        }
        self.sealed_containers.fetch_add(1, Ordering::Relaxed);
        self.stored_bytes
            .fetch_add(container.data_size() as u64, Ordering::Relaxed);
        self.stored_chunks
            .fetch_add(container.chunk_count() as u64, Ordering::Relaxed);
        adopted.insert(origin, new_id);
        self.sealed.write().insert(new_id, container);
        Ok(new_id)
    }

    /// Installs a container during journal replay, preserving its identifier.
    ///
    /// Unlike [`adopt_sealed`](Self::adopt_sealed) this writes nothing back to the
    /// journal (the record being replayed *is* the durable copy) and charges no
    /// disk I/O (the replay itself is charged as one sequential journal read).
    /// Returns `false` when `origin` was already adopted — the guard that keeps a
    /// duplicated migration record from double-installing a container.
    pub fn install_recovered(
        &self,
        origin: Option<(u64, ContainerId)>,
        container: Container,
    ) -> bool {
        if let Some(origin) = origin {
            let mut adopted = self.adopted.write();
            if adopted.contains_key(&origin) {
                return false;
            }
            adopted.insert(origin, container.id());
        }
        let id = container.id();
        self.next_id.fetch_max(id.as_u64() + 1, Ordering::Relaxed);
        self.sealed_containers.fetch_add(1, Ordering::Relaxed);
        self.stored_bytes
            .fetch_add(container.data_size() as u64, Ordering::Relaxed);
        self.stored_chunks
            .fetch_add(container.chunk_count() as u64, Ordering::Relaxed);
        self.sealed.write().insert(id, container);
        true
    }

    /// The adoption ledger: `(origin node, origin container, local container)` for
    /// every container this store adopted, sorted for deterministic iteration.
    pub fn adopted_origins(&self) -> Vec<(u64, ContainerId, ContainerId)> {
        let mut out: Vec<(u64, ContainerId, ContainerId)> = self
            .adopted
            .read()
            .iter()
            .map(|(&(node, origin), &local)| (node, origin, local))
            .collect();
        out.sort_unstable();
        out
    }

    /// Clones every sealed container together with its adoption origin (if any),
    /// sorted by container ID — the container half of a compaction snapshot.
    pub fn sealed_snapshot(&self) -> Vec<(Option<(u64, ContainerId)>, Container)> {
        let by_local: HashMap<ContainerId, (u64, ContainerId)> = self
            .adopted
            .read()
            .iter()
            .map(|(&origin, &local)| (local, origin))
            .collect();
        let mut out: Vec<(Option<(u64, ContainerId)>, Container)> = self
            .sealed
            .read()
            .values()
            .map(|c| (by_local.get(&c.id()).copied(), c.clone()))
            .collect();
        out.sort_unstable_by_key(|(_, c)| c.id());
        out
    }

    /// The container ID the next allocation will use.
    pub fn peek_next_id(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Sets the next container ID to allocate to at least `next` (snapshot replay).
    pub fn restore_next_id(&self, next: u64) {
        self.next_id.fetch_max(next, Ordering::Relaxed);
    }

    /// True if a sealed container with this ID is present.
    pub fn contains_sealed(&self, container: &ContainerId) -> bool {
        self.sealed.read().contains_key(container)
    }

    /// Identifiers of the currently open containers (one per active stream).
    pub fn open_container_ids(&self) -> Vec<ContainerId> {
        let slots: Vec<Arc<Mutex<OpenSlot>>> = self.open.read().values().cloned().collect();
        slots
            .iter()
            .filter_map(|slot| slot.lock().builder.as_ref().map(|b| b.id()))
            .collect()
    }

    /// Removes a sealed container (the final step of migrating it away),
    /// subtracting its bytes and chunks from this store's accounting.
    pub fn remove_sealed(&self, container: &ContainerId) -> Option<Container> {
        let removed = self.sealed.write().remove(container)?;
        self.invalidate_cached(container);
        if self.backend.persistent() {
            // Best-effort: the journal record preceding the removal is the
            // durable authority; a leftover object is swept by the next
            // `sync_backend_objects`.
            let _ = self.backend.delete(StorageObject::Container(*container));
        }
        self.liveness.write().remove(container);
        self.sealed_containers.fetch_sub(1, Ordering::Relaxed);
        self.stored_bytes
            .fetch_sub(removed.data_size() as u64, Ordering::Relaxed);
        self.stored_chunks
            .fetch_sub(removed.chunk_count() as u64, Ordering::Relaxed);
        Some(removed)
    }

    // ---- Garbage collection (mark-and-sweep support) ----

    /// Scores a sealed container against the GC mark phase's live-fingerprint
    /// set, recording (and returning) its live/dead byte accounting.
    ///
    /// Returns `None` when no sealed container with this ID exists.  The figure
    /// is a *mark-time snapshot*: it is refreshed by every GC and dropped with
    /// the container; [`recorded_liveness`](Self::recorded_liveness) reads it
    /// back without rescoring.
    pub fn container_liveness(
        &self,
        container: &ContainerId,
        live: &std::collections::HashSet<Fingerprint>,
    ) -> Option<ContainerLiveness> {
        let mut acct = ContainerLiveness::default();
        {
            let sealed = self.sealed.read();
            let c = sealed.get(container)?;
            for record in &c.meta().records {
                if live.contains(&record.fingerprint) {
                    acct.live_bytes += record.len as u64;
                    acct.live_chunks += 1;
                } else {
                    acct.dead_bytes += record.len as u64;
                    acct.dead_chunks += 1;
                }
            }
        }
        self.liveness.write().insert(*container, acct);
        Some(acct)
    }

    /// The live/dead accounting the last GC mark recorded for a container, if
    /// the container still exists and has been scored.
    pub fn recorded_liveness(&self, container: &ContainerId) -> Option<ContainerLiveness> {
        self.liveness.read().get(container).copied()
    }

    /// Drops a sealed container the GC found fully dead, journaling a
    /// [`JournalRecord::GcDrop`] *before* the data goes (write-ahead, like every
    /// other state change).  Returns the dropped container so the caller can
    /// clean up the indexes that referenced it, or `None` if the container does
    /// not exist.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Crashed`] when the journal refuses the append;
    /// the container is then *not* dropped.
    pub fn drop_sealed_gc(&self, container: &ContainerId) -> Result<Option<Container>> {
        if !self.sealed.read().contains_key(container) {
            return Ok(None);
        }
        if let Some(journal) = &self.journal {
            journal.append(&JournalRecord::GcDrop {
                container: *container,
            })?;
        }
        let removed = self.remove_sealed(container);
        if removed.is_some() {
            self.gc_dropped.fetch_add(1, Ordering::Relaxed);
            if let Some(c) = &removed {
                self.gc_reclaimed_bytes
                    .fetch_add(c.data_size() as u64, Ordering::Relaxed);
            }
        }
        Ok(removed)
    }

    /// Compacts a sealed container: its chunks in `live` are rewritten into a
    /// fresh container (the same install path an adopted migrated container
    /// takes: new local ID, sealed directly, journaled as one atomic record) and
    /// the victim is dropped.  `rfps` are the representative fingerprints
    /// travelling to the replacement, journaled with it so replay re-homes the
    /// similarity entries exactly as the live path does.
    ///
    /// Returns `None` — journaling nothing — when the container does not exist,
    /// has no dead bytes (nothing to reclaim), or has no live bytes (use
    /// [`drop_sealed_gc`](Self::drop_sealed_gc)).
    ///
    /// Must run at a GC-quiescent point, like the sweep that calls it: no
    /// concurrent ingest may be deduplicating against the victim.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Crashed`] when the journal refuses the append;
    /// the victim then remains in place, untouched.
    pub fn compact_container(
        &self,
        victim: &ContainerId,
        live: &std::collections::HashSet<Fingerprint>,
        rfps: &[Fingerprint],
    ) -> Result<Option<CompactionOutcome>> {
        // The sealed write-lock is held across the whole swap.  Lock order
        // stays slot → sealed (we take no slot locks), and the journal mutex is
        // a leaf acquired and released inside `append`, so this cannot deadlock
        // against a concurrent rollover seal.
        let mut sealed = self.sealed.write();
        let Some(old) = sealed.get(victim) else {
            return Ok(None);
        };
        let mut dead_records = Vec::new();
        let mut live_src = Vec::new();
        for record in &old.meta().records {
            if live.contains(&record.fingerprint) {
                live_src.push(*record);
            } else {
                dead_records.push(*record);
            }
        }
        if dead_records.is_empty() || live_src.is_empty() {
            return Ok(None);
        }
        let old = old.clone();
        let new_id = self.alloc_id();
        let mut builder = ContainerBuilder::new(new_id, self.capacity);
        for record in &live_src {
            let end = (record.offset + record.len) as usize;
            // Synthetic (trace-driven) chunks carry no payload; their records
            // point past the real data section and travel metadata-only.
            let appended = if end <= old.data().len() {
                builder.try_append(record.fingerprint, &old.data()[record.offset as usize..end])
            } else {
                builder.try_append_synthetic(record.fingerprint, record.len)
            };
            debug_assert!(appended, "a live subset always fits its own container");
        }
        let replacement = builder.seal();
        let live_records = replacement.meta().records.clone();
        let reclaimed = (old.data_size() - replacement.data_size()) as u64;
        if let Some(journal) = &self.journal {
            journal.append(&JournalRecord::GcCompact {
                victim: *victim,
                replacement: replacement.clone(),
                rfps: rfps.to_vec(),
            })?;
        }
        if let Some(disk) = self.disk() {
            // Read the victim off disk, write the replacement back.
            disk.record_sequential_transfer(
                (old.data_size() + old.meta().serialized_size()) as u64,
            );
            disk.record_sequential_transfer(
                (replacement.data_size() + replacement.meta().serialized_size()) as u64,
            );
        }
        if self.backend.persistent() {
            // Replacement object lands before the victim object goes; the
            // GcCompact journal record is the atomic authority over the swap.
            self.backend
                .write_object(StorageObject::Container(new_id), &replacement.encode_blob())?;
            let _ = self.backend.delete(StorageObject::Container(*victim));
        }
        sealed.remove(victim);
        sealed.insert(new_id, replacement);
        drop(sealed);
        self.invalidate_cached(victim);
        self.liveness.write().remove(victim);
        self.stored_bytes.fetch_sub(reclaimed, Ordering::Relaxed);
        self.stored_chunks
            .fetch_sub(dead_records.len() as u64, Ordering::Relaxed);
        self.gc_compacted.fetch_add(1, Ordering::Relaxed);
        self.gc_reclaimed_bytes
            .fetch_add(reclaimed, Ordering::Relaxed);
        Ok(Some(CompactionOutcome {
            victim: *victim,
            replacement: new_id,
            live_records,
            dead_records,
            reclaimed_bytes: reclaimed,
        }))
    }

    /// Installs a GC-compaction replacement during journal replay: the victim is
    /// removed (if present) and the replacement installed under its recorded
    /// identifier, with the byte/chunk counters adjusted to match.  Returns the
    /// removed victim so the replaying node can clean its indexes.
    pub fn apply_compaction_recovered(
        &self,
        victim: &ContainerId,
        replacement: Container,
    ) -> Option<Container> {
        let removed = self.remove_sealed(victim);
        self.install_recovered(None, replacement);
        removed
    }

    /// True if a container with this ID is currently *open* (still being filled
    /// by some stream) — open containers are invisible to the GC sweep.
    pub fn contains_open(&self, container: &ContainerId) -> bool {
        let slots: Vec<Arc<Mutex<OpenSlot>>> = self.open.read().values().cloned().collect();
        slots.iter().any(|slot| {
            slot.lock()
                .builder
                .as_ref()
                .is_some_and(|b| b.id() == *container)
        })
    }

    /// Total physical bytes stored (sealed + open containers' data sections).
    pub fn physical_bytes(&self) -> u64 {
        let slots: Vec<Arc<Mutex<OpenSlot>>> = self.open.read().values().cloned().collect();
        let open: u64 = slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .builder
                    .as_ref()
                    .map(|b| b.used() as u64)
                    .unwrap_or(0)
            })
            .sum();
        self.stored_bytes.load(Ordering::Relaxed) + open
    }

    /// Physical bytes *as the backend sees them*: on a persistent backend, the
    /// sum of the logical data sizes decoded from every container object
    /// actually on the medium; on volatile backends (which keep no container
    /// objects) the in-memory figure.  [`verify_consistency`] on the node
    /// cross-checks this against the counter-derived figure so the file backend
    /// cannot silently drift from the in-memory directory.
    ///
    /// [`verify_consistency`]: ../../sigma_core/struct.DedupNode.html#method.verify_consistency
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] when an object cannot be read or decoded.
    pub fn backend_physical_bytes(&self) -> Result<u64> {
        if !self.backend.persistent() {
            return Ok(self.stored_bytes.load(Ordering::Relaxed));
        }
        let mut total = 0u64;
        for obj in self.backend.list()? {
            if let StorageObject::Container(id) = obj {
                let blob = self.backend.read_all(obj)?;
                let container = Container::decode_blob(&blob)
                    .ok_or_else(|| StorageError::Io(format!("{}: undecodable object", id)))?;
                total += container.data_size() as u64;
            }
        }
        Ok(total)
    }

    /// Reconciles the persistent backend's container objects with the sealed
    /// directory (recovery runs this after replay): every sealed container's
    /// object is read back and byte-compared against the replayed state, and
    /// every divergence is repaired *from the journal-derived truth* — a
    /// missing or mismatched object is rewritten, an orphan object (its seal
    /// record was torn away with the unacknowledged tail) is deleted.
    ///
    /// Returns `(verified, repaired)`: objects that matched exactly, and
    /// objects rewritten or deleted.  A no-op `(0, 0)` on volatile backends.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] when the backend cannot be read or written.
    pub fn sync_backend_objects(&self) -> Result<(u64, u64)> {
        if !self.backend.persistent() {
            return Ok((0, 0));
        }
        let sealed: Vec<Container> = self.sealed.read().values().cloned().collect();
        let mut verified = 0u64;
        let mut repaired = 0u64;
        let mut expected: std::collections::HashSet<ContainerId> = std::collections::HashSet::new();
        for container in &sealed {
            expected.insert(container.id());
            let obj = StorageObject::Container(container.id());
            let on_medium = self.backend.read_all(obj)?;
            if Container::decode_blob(&on_medium).as_ref() == Some(container) {
                verified += 1;
            } else {
                self.backend.write_object(obj, &container.encode_blob())?;
                repaired += 1;
            }
        }
        for obj in self.backend.list()? {
            if let StorageObject::Container(id) = obj {
                if !expected.contains(&id) {
                    self.backend.delete(obj)?;
                    repaired += 1;
                }
            }
        }
        Ok((verified, repaired))
    }

    /// Number of sealed containers.
    pub fn sealed_count(&self) -> usize {
        self.sealed.read().len()
    }

    /// Snapshot of the store statistics.
    pub fn stats(&self) -> ContainerStoreStats {
        ContainerStoreStats {
            sealed_containers: self.sealed_containers.load(Ordering::Relaxed),
            open_containers: self.open.read().len() as u64,
            stored_bytes: self.stored_bytes.load(Ordering::Relaxed),
            stored_chunks: self.stored_chunks.load(Ordering::Relaxed),
            metadata_reads: self.metadata_reads.load(Ordering::Relaxed),
            data_reads: self.data_reads.load(Ordering::Relaxed),
            gc_dropped_containers: self.gc_dropped.load(Ordering::Relaxed),
            gc_compacted_containers: self.gc_compacted.load(Ordering::Relaxed),
            gc_reclaimed_bytes: self.gc_reclaimed_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskParams;
    use sigma_hashkit::{Digest, Sha1};

    fn payload(i: u64, len: usize) -> (Fingerprint, Vec<u8>) {
        let data: Vec<u8> = (0..len).map(|j| ((i as usize + j) % 251) as u8).collect();
        (Sha1::fingerprint(&data), data)
    }

    #[test]
    fn store_and_read_back() {
        let store = ContainerStore::new(1024);
        let (fp, data) = payload(1, 100);
        let loc = store.store_chunk(0, fp, &data).unwrap();
        store.flush().unwrap();
        assert_eq!(store.read_chunk(&loc.container, &fp).unwrap(), data);
        assert_eq!(store.physical_bytes(), 100);
    }

    #[test]
    fn rollover_when_container_fills() {
        let store = ContainerStore::new(250);
        let mut containers = std::collections::HashSet::new();
        for i in 0..10u64 {
            let (fp, data) = payload(i, 100);
            let loc = store.store_chunk(0, fp, &data).unwrap();
            containers.insert(loc.container);
        }
        // 100-byte chunks, 250-byte containers => 2 chunks per container => 5 containers.
        assert_eq!(containers.len(), 5);
        assert_eq!(store.stats().sealed_containers, 4, "last one still open");
        store.flush().unwrap();
        assert_eq!(store.stats().sealed_containers, 5);
        assert_eq!(store.stats().stored_chunks, 10);
    }

    #[test]
    fn per_stream_containers_do_not_interleave() {
        let store = ContainerStore::new(1024);
        let (fp_a, data_a) = payload(1, 64);
        let (fp_b, data_b) = payload(2, 64);
        let loc_a = store.store_chunk(1, fp_a, &data_a).unwrap();
        let loc_b = store.store_chunk(2, fp_b, &data_b).unwrap();
        assert_ne!(loc_a.container, loc_b.container);
        assert_eq!(store.stats().open_containers, 2);
    }

    #[test]
    fn oversized_chunk_is_rejected() {
        let store = ContainerStore::new(100);
        let (fp, data) = payload(1, 200);
        assert_eq!(
            store.store_chunk(0, fp, &data),
            Err(StorageError::ChunkTooLarge {
                chunk_size: 200,
                container_capacity: 100
            })
        );
    }

    #[test]
    fn metadata_read_returns_fingerprints_in_write_order() {
        let store = ContainerStore::new(10_000);
        let mut expect = Vec::new();
        let mut container = None;
        for i in 0..5u64 {
            let (fp, data) = payload(i, 50);
            let loc = store.store_chunk(0, fp, &data).unwrap();
            container = Some(loc.container);
            expect.push(fp);
        }
        store.flush().unwrap();
        let meta = store.read_metadata(&container.unwrap()).unwrap();
        let got: Vec<Fingerprint> = meta.fingerprints().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn missing_container_and_chunk_errors() {
        let store = ContainerStore::new(1024);
        let missing = ContainerId::new(99);
        assert!(matches!(
            store.read_metadata(&missing),
            Err(StorageError::ContainerNotFound(_))
        ));
        let (fp, data) = payload(1, 10);
        let loc = store.store_chunk(0, fp, &data).unwrap();
        store.flush().unwrap();
        let (other_fp, _) = payload(2, 10);
        assert!(matches!(
            store.read_chunk(&loc.container, &other_fp),
            Err(StorageError::ChunkNotInContainer { .. })
        ));
    }

    #[test]
    fn disk_accounting_records_sequential_io() {
        let disk = Arc::new(DiskModel::new(DiskParams::default()));
        let store = ContainerStore::new(200).with_disk(disk.clone());
        for i in 0..4u64 {
            let (fp, data) = payload(i, 100);
            store.store_chunk(0, fp, &data).unwrap();
        }
        store.flush().unwrap();
        let d = disk.stats();
        assert!(d.sequential_ops >= 2, "sealed containers must be written");
        assert!(d.sequential_bytes >= 400);
    }

    #[test]
    fn flush_skips_empty_containers() {
        let store = ContainerStore::new(1024);
        store.flush().unwrap();
        assert_eq!(store.stats().sealed_containers, 0);
    }

    #[test]
    fn synthetic_chunks_account_bytes_without_payload() {
        let store = ContainerStore::new(1000);
        let mut containers = std::collections::HashSet::new();
        for i in 0..6u64 {
            let (fp, _) = payload(i, 1);
            let loc = store.store_chunk_synthetic(0, fp, 400).unwrap();
            containers.insert(loc.container);
        }
        // 400-byte logical chunks in 1000-byte containers => 2 per container.
        assert_eq!(containers.len(), 3);
        store.flush().unwrap();
        assert_eq!(store.physical_bytes(), 2400);
        assert_eq!(store.stats().stored_chunks, 6);
        // Synthetic chunks cannot be read back.
        let (fp0, _) = payload(0, 1);
        let cid = *containers.iter().min().unwrap();
        assert!(
            store.read_chunk(&cid, &fp0).is_err()
                || store.read_chunk(&cid, &fp0).unwrap().is_empty()
        );
    }

    #[test]
    fn metadata_of_open_container_is_visible() {
        let store = ContainerStore::new(1_000_000);
        let (fp, data) = payload(1, 100);
        let loc = store.store_chunk(0, fp, &data).unwrap();
        // Not flushed: the container is still open, but its metadata must be readable.
        let meta = store.read_metadata(&loc.container).unwrap();
        assert_eq!(meta.fingerprints().collect::<Vec<_>>(), vec![fp]);
        assert_eq!(store.open_container(0), Some(loc.container));
        assert_eq!(store.open_container(7), None);
    }

    #[test]
    fn concurrent_streams_store_without_interleaving_or_loss() {
        let store = Arc::new(ContainerStore::new(2048));
        let mut handles = Vec::new();
        for stream in 0..8u64 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..64u64 {
                    let (fp, data) = payload(stream * 1_000 + i, 128);
                    store.store_chunk(stream, fp, &data).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        store.flush().unwrap();
        let stats = store.stats();
        assert_eq!(stats.stored_chunks, 8 * 64, "no chunk may be lost");
        assert_eq!(store.physical_bytes(), 8 * 64 * 128);
        assert_eq!(stats.open_containers, 0);
    }

    #[test]
    fn open_container_reads_race_rollover_without_deadlock() {
        // Regression test: read_metadata/read_chunk of a still-open container must
        // not hold the sealed-map lock while taking slot mutexes, or they deadlock
        // against a concurrent rollover (which seals while holding a slot mutex).
        let store = Arc::new(ContainerStore::new(512));
        let mut handles = Vec::new();
        for stream in 0..4u64 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..400u64 {
                    // 128-byte chunks in 512-byte containers: rollover every 4th.
                    let (fp, data) = payload(stream * 10_000 + i, 128);
                    store.store_chunk(stream, fp, &data).unwrap();
                }
            }));
        }
        for _ in 0..2 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for stream in (0..4u64).cycle().take(2_000) {
                    if let Some(cid) = store.open_container(stream) {
                        // The container may seal under us; both outcomes are fine,
                        // only a deadlock is not.
                        let _ = store.read_metadata(&cid);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        store.flush().unwrap();
        assert_eq!(store.stats().stored_chunks, 4 * 400);
    }

    #[test]
    fn liveness_accounting_scores_live_and_dead_bytes() {
        let store = ContainerStore::new(4096);
        let mut fps = Vec::new();
        for i in 0..4u64 {
            let (fp, data) = payload(i, 100);
            store.store_chunk(0, fp, &data).unwrap();
            fps.push(fp);
        }
        store.flush().unwrap();
        let cid = store.sealed_container_ids()[0];
        let live: std::collections::HashSet<Fingerprint> = fps[..3].iter().copied().collect();
        let acct = store.container_liveness(&cid, &live).unwrap();
        assert_eq!(acct.live_bytes, 300);
        assert_eq!(acct.dead_bytes, 100);
        assert_eq!(acct.live_chunks, 3);
        assert_eq!(acct.dead_chunks, 1);
        assert!((acct.liveness() - 0.75).abs() < 1e-12);
        assert_eq!(store.recorded_liveness(&cid), Some(acct));
        // Unknown containers score nothing.
        assert!(store
            .container_liveness(&ContainerId::new(999), &live)
            .is_none());
    }

    #[test]
    fn compact_container_rewrites_live_chunks_and_reclaims_dead_bytes() {
        let store = ContainerStore::new(4096);
        let chunks: Vec<(Fingerprint, Vec<u8>)> = (0..4u64).map(|i| payload(i, 100)).collect();
        for (fp, data) in &chunks {
            store.store_chunk(0, *fp, data).unwrap();
        }
        store.flush().unwrap();
        let victim = store.sealed_container_ids()[0];
        let live: std::collections::HashSet<Fingerprint> =
            [chunks[1].0, chunks[3].0].into_iter().collect();
        let outcome = store
            .compact_container(&victim, &live, &[])
            .unwrap()
            .expect("half-dead container compacts");
        assert_eq!(outcome.victim, victim);
        assert_ne!(outcome.replacement, victim);
        assert_eq!(outcome.reclaimed_bytes, 200);
        assert_eq!(outcome.live_records.len(), 2);
        assert_eq!(outcome.dead_records.len(), 2);
        // Live chunks read back from the replacement at their new offsets.
        assert!(!store.contains_sealed(&victim));
        assert_eq!(
            store
                .read_chunk(&outcome.replacement, &chunks[1].0)
                .unwrap(),
            chunks[1].1
        );
        assert_eq!(
            store
                .read_chunk(&outcome.replacement, &chunks[3].0)
                .unwrap(),
            chunks[3].1
        );
        assert_eq!(store.physical_bytes(), 200);
        let stats = store.stats();
        assert_eq!(stats.sealed_containers, 1);
        assert_eq!(stats.stored_chunks, 2);
        assert_eq!(stats.gc_compacted_containers, 1);
        assert_eq!(stats.gc_reclaimed_bytes, 200);
    }

    #[test]
    fn compact_container_declines_fully_live_and_fully_dead_containers() {
        let store = ContainerStore::new(4096);
        let chunks: Vec<(Fingerprint, Vec<u8>)> = (0..2u64).map(|i| payload(i, 100)).collect();
        for (fp, data) in &chunks {
            store.store_chunk(0, *fp, data).unwrap();
        }
        store.flush().unwrap();
        let cid = store.sealed_container_ids()[0];
        let all: std::collections::HashSet<Fingerprint> =
            chunks.iter().map(|(fp, _)| *fp).collect();
        assert!(store.compact_container(&cid, &all, &[]).unwrap().is_none());
        let none = std::collections::HashSet::new();
        assert!(store.compact_container(&cid, &none, &[]).unwrap().is_none());
        assert!(store
            .compact_container(&ContainerId::new(7), &all, &[])
            .unwrap()
            .is_none());
        assert_eq!(
            store.physical_bytes(),
            200,
            "declined compactions change nothing"
        );
    }

    #[test]
    fn drop_sealed_gc_journals_before_dropping() {
        let journal = Arc::new(crate::Journal::new());
        let store = ContainerStore::new(4096).with_journal(journal.clone());
        let (fp, data) = payload(1, 100);
        store.store_chunk(0, fp, &data).unwrap();
        store.flush().unwrap();
        let cid = store.sealed_container_ids()[0];
        let frames_before = journal.frame_count();
        let dropped = store.drop_sealed_gc(&cid).unwrap().expect("present");
        assert_eq!(dropped.id(), cid);
        assert_eq!(journal.frame_count(), frames_before + 1);
        assert_eq!(store.physical_bytes(), 0);
        assert_eq!(store.stats().gc_dropped_containers, 1);
        assert_eq!(store.stats().gc_reclaimed_bytes, 100);
        // Absent containers journal nothing.
        assert!(store.drop_sealed_gc(&cid).unwrap().is_none());
        assert_eq!(journal.frame_count(), frames_before + 1);
    }

    #[test]
    fn flush_coalesces_seals_into_one_group_write() {
        let disk = Arc::new(DiskModel::new(DiskParams::default()));
        let journal = Arc::new(crate::Journal::with_disk(disk.clone()));
        let store = ContainerStore::new(4096)
            .with_disk(disk.clone())
            .with_journal(journal.clone());
        for stream in 0..6u64 {
            let (fp, data) = payload(stream, 100);
            store.store_chunk(stream, fp, &data).unwrap();
        }
        let ops_before = disk.stats().sequential_ops;
        store.flush().unwrap();
        // Six open containers seal as ONE coalesced container write plus ONE
        // journal group commit — not twelve appends and six transfers.
        assert_eq!(disk.stats().sequential_ops, ops_before + 2);
        assert_eq!(store.stats().sealed_containers, 6);
        // Every seal and finalize still reached the journal individually.
        let (records, _) = crate::Journal::replay(&journal.bytes());
        assert_eq!(records.len(), 12);
        assert_eq!(
            records
                .iter()
                .filter(|r| matches!(r, JournalRecord::ContainerSeal { .. }))
                .count(),
            6
        );
    }

    /// Runs `read_chunks_batched` for `chunks` against `store`, asserting every
    /// payload matches, and returns the stats.
    fn batched_roundtrip(
        store: &ContainerStore,
        container: &ContainerId,
        chunks: &[(Fingerprint, Vec<u8>, u32)],
    ) -> BatchedReadStats {
        let total: usize = chunks.iter().map(|(_, d, _)| d.len()).sum();
        let mut out = vec![0u8; total];
        let mut fetches = Vec::new();
        let mut rest = out.as_mut_slice();
        for (fp, data, offset) in chunks {
            let (head, tail) = rest.split_at_mut(data.len());
            fetches.push(ChunkFetch {
                fingerprint: *fp,
                offset: *offset,
                out: head,
            });
            rest = tail;
        }
        let stats = store.read_chunks_batched(container, &mut fetches).unwrap();
        drop(fetches);
        let expect: Vec<u8> = chunks.iter().flat_map(|(_, d, _)| d.clone()).collect();
        assert_eq!(out, expect, "batched payloads must match what was stored");
        stats
    }

    #[test]
    fn batched_read_matches_serial_on_volatile_store() {
        let store = ContainerStore::new(4096);
        let mut chunks = Vec::new();
        for i in 0..5u64 {
            let (fp, data) = payload(i, 100);
            let loc = store.store_chunk(0, fp, &data).unwrap();
            chunks.push((fp, data, loc.offset));
        }
        store.flush().unwrap();
        let cid = store.sealed_container_ids()[0];
        // Out-of-order and repeated extents must both decode correctly.
        chunks.swap(0, 3);
        let repeat = chunks[1].clone();
        chunks.push(repeat);
        let stats = batched_roundtrip(&store, &cid, &chunks);
        assert_eq!(stats.chunks, 6);
        assert_eq!(stats.coalesced_runs, 0, "volatile serve issues no reads");
        assert_eq!(
            stats.cache_hits + stats.cache_misses,
            0,
            "no cache attached"
        );
    }

    #[test]
    fn batched_read_coalesces_file_backend_extents() {
        let root = std::env::temp_dir().join(format!(
            "sigma-batched-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let backend = Arc::new(crate::FileBackend::open(&root).unwrap());
        let store = ContainerStore::new(4096).with_backend(backend);
        let mut chunks = Vec::new();
        for i in 0..6u64 {
            let (fp, data) = payload(i, 100);
            let loc = store.store_chunk(0, fp, &data).unwrap();
            chunks.push((fp, data, loc.offset));
        }
        store.flush().unwrap();
        let cid = store.sealed_container_ids()[0];
        let stats = batched_roundtrip(&store, &cid, &chunks);
        assert_eq!(stats.chunks, 6);
        assert_eq!(
            stats.coalesced_runs, 1,
            "six adjacent extents coalesce into one backend read"
        );
        assert_eq!(stats.backend_bytes_read, 600);
        // A sparse subset (gaps of 100 bytes) still coalesces: the gap is far
        // below COALESCE_GAP.
        let sparse: Vec<_> = chunks.iter().step_by(2).cloned().collect();
        let stats = batched_roundtrip(&store, &cid, &sparse);
        assert_eq!(stats.coalesced_runs, 1);
        assert_eq!(stats.backend_bytes_read, 500, "reads through the gaps");
        // A lone extent reads exactly its own bytes.
        let one = vec![chunks[2].clone()];
        let stats = batched_roundtrip(&store, &cid, &one);
        assert_eq!((stats.coalesced_runs, stats.backend_bytes_read), (1, 100));
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn batched_read_serves_repeats_from_the_cache_until_invalidated() {
        let root = std::env::temp_dir().join(format!(
            "sigma-cached-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let backend = Arc::new(crate::FileBackend::open(&root).unwrap());
        let store = ContainerStore::new(4096)
            .with_backend(backend)
            .with_read_cache_bytes(1 << 20);
        let mut chunks = Vec::new();
        for i in 0..4u64 {
            let (fp, data) = payload(i, 100);
            let loc = store.store_chunk(0, fp, &data).unwrap();
            chunks.push((fp, data, loc.offset));
        }
        store.flush().unwrap();
        let cid = store.sealed_container_ids()[0];
        let first = batched_roundtrip(&store, &cid, &chunks);
        assert_eq!((first.cache_hits, first.cache_misses), (0, 1));
        assert_eq!(
            first.backend_bytes_read, 400,
            "miss reads the whole data section once"
        );
        let second = batched_roundtrip(&store, &cid, &chunks);
        assert_eq!((second.cache_hits, second.cache_misses), (1, 0));
        assert_eq!(second.backend_bytes_read, 0, "repeat visit never hits disk");
        let cache = store.read_cache_stats().expect("cache attached");
        assert_eq!(cache.resident_containers, 1);
        assert_eq!(cache.resident_bytes, 400);
        // GC-compacting the container must invalidate its cached section.
        let live: std::collections::HashSet<Fingerprint> =
            [chunks[0].0, chunks[1].0].into_iter().collect();
        let outcome = store
            .compact_container(&cid, &live, &[])
            .unwrap()
            .expect("half-dead container compacts");
        assert_eq!(
            store.read_cache_stats().unwrap().resident_containers,
            0,
            "victim's section dropped"
        );
        // Live chunks re-read correctly from the replacement at new offsets.
        let relocated: Vec<_> = outcome
            .live_records
            .iter()
            .map(|r| {
                let data = chunks
                    .iter()
                    .find(|(fp, _, _)| *fp == r.fingerprint)
                    .unwrap()
                    .1
                    .clone();
                (r.fingerprint, data, r.offset)
            })
            .collect();
        batched_roundtrip(&store, &outcome.replacement, &relocated);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn batched_read_rejects_synthetic_chunks_and_unknown_containers() {
        let store = ContainerStore::new(4096);
        let (fp, _) = payload(1, 1);
        let loc = store.store_chunk_synthetic(0, fp, 64).unwrap();
        store.flush().unwrap();
        let mut out = vec![0u8; 64];
        let mut fetches = [ChunkFetch {
            fingerprint: fp,
            offset: loc.offset,
            out: &mut out,
        }];
        assert!(matches!(
            store.read_chunks_batched(&loc.container, &mut fetches),
            Err(StorageError::ChunkNotInContainer { .. })
        ));
        let mut fetches = [ChunkFetch {
            fingerprint: fp,
            offset: 0,
            out: &mut out,
        }];
        assert!(matches!(
            store.read_chunks_batched(&ContainerId::new(999), &mut fetches),
            Err(StorageError::ContainerNotFound(_))
        ));
    }

    #[test]
    fn batched_read_of_a_still_open_container_serves_from_memory() {
        let store = ContainerStore::new(1_000_000);
        let (fp, data) = payload(1, 128);
        let loc = store.store_chunk(0, fp, &data).unwrap();
        // Not flushed: the container is still open.
        let chunks = vec![(fp, data, loc.offset)];
        let stats = batched_roundtrip(&store, &loc.container, &chunks);
        assert_eq!(stats.chunks, 1);
        assert_eq!(stats.backend_bytes_read, 0);
    }

    #[test]
    fn store_racing_with_flush_loses_no_chunks() {
        let store = Arc::new(ContainerStore::new(4096));
        let writer = {
            let store = store.clone();
            std::thread::spawn(move || {
                for i in 0..512u64 {
                    let (fp, data) = payload(i, 64);
                    store.store_chunk(i % 4, fp, &data).unwrap();
                }
            })
        };
        for _ in 0..32 {
            store.flush().unwrap();
            std::thread::yield_now();
        }
        writer.join().unwrap();
        store.flush().unwrap();
        assert_eq!(store.stats().stored_chunks, 512);
        assert_eq!(store.physical_bytes(), 512 * 64);
    }
}
