//! The deduplication server cluster.
//!
//! [`DedupCluster`] wires together N [`DedupNode`]s, a [`DataRouter`] and a
//! [`Director`], and accounts for the fingerprint-lookup messages the routing and
//! deduplication process generates — the overhead metric of Figure 7.

use crate::{
    DataRouter, DedupNode, Director, FileId, Handprint, NodeStats, Result, RoutingContext,
    SigmaConfig, SigmaError, SimilarityRouter, SuperChunk, SuperChunkReceipt,
};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fingerprint-lookup message counters (the paper's system-overhead metric).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageStats {
    /// Lookups sent to candidate nodes before routing (representative fingerprints).
    pub prerouting_lookups: u64,
    /// Lookups sent to the target node after routing (one per chunk fingerprint in
    /// the batched duplicate-or-unique query).
    pub postrouting_lookups: u64,
    /// Remote nodes contacted by pre-routing queries.
    pub nodes_contacted: u64,
    /// Super-chunks routed.
    pub super_chunks_routed: u64,
}

impl MessageStats {
    /// Total fingerprint-lookup messages.
    pub fn total_lookups(&self) -> u64 {
        self.prerouting_lookups + self.postrouting_lookups
    }
}

/// Cluster-wide statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ClusterStats {
    /// Name of the routing scheme in use.
    pub router: String,
    /// Number of deduplication nodes.
    pub node_count: usize,
    /// Logical bytes backed up across the cluster.
    pub logical_bytes: u64,
    /// Physical bytes stored across the cluster.
    pub physical_bytes: u64,
    /// Cluster-wide deduplication ratio (logical / physical).
    pub dedup_ratio: f64,
    /// Physical storage usage per node.
    pub node_usage: Vec<u64>,
    /// Standard deviation of per-node storage usage divided by its mean
    /// (the load-imbalance term of the paper's "effective deduplication ratio").
    pub usage_skew: f64,
    /// Message counters.
    pub messages: MessageStats,
    /// Per-node statistics.
    pub nodes: Vec<NodeStats>,
}

impl ClusterStats {
    /// The paper's *effective deduplication ratio*: the cluster deduplication ratio
    /// divided by `1 + skew`.  Normalising it by a single-node exact-deduplication
    /// ratio yields the EDR curves of Figure 8.
    pub fn effective_dedup_ratio(&self) -> f64 {
        self.dedup_ratio / (1.0 + self.usage_skew)
    }
}

/// Receipts for one stream's batch: one `(receipt, target node)` pair per
/// super-chunk, in stream order.
pub type BatchReceipts = Vec<(SuperChunkReceipt, usize)>;

/// One backup stream's ordered batch of super-chunks, the unit of
/// [`DedupCluster::backup_batches_concurrent`].
#[derive(Debug, Clone)]
pub struct StreamBatch {
    /// The data-stream identifier (chooses the per-stream open container).
    pub stream: u64,
    /// File-boundary hint for routers that need one.
    pub file_id: Option<u64>,
    /// The stream's super-chunks, in stream order.
    pub super_chunks: Vec<SuperChunk>,
}

/// A cluster of deduplication nodes behind a data-routing scheme.
///
/// # Example
///
/// ```
/// use sigma_core::{DedupCluster, SigmaConfig, SuperChunk};
/// use sigma_hashkit::FingerprintAlgorithm;
///
/// let cluster = DedupCluster::with_similarity_router(4, SigmaConfig::default());
/// let chunks: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i; 4096]).collect();
/// let sc = SuperChunk::from_payloads(FingerprintAlgorithm::Sha1, 0, chunks);
/// let receipt = cluster.backup_super_chunk(0, &sc, None).unwrap();
/// assert_eq!(receipt.unique_chunks, 16);
/// let stats = cluster.stats();
/// assert_eq!(stats.logical_bytes, 16 * 4096);
/// ```
pub struct DedupCluster {
    config: SigmaConfig,
    nodes: Vec<Arc<DedupNode>>,
    router: Box<dyn DataRouter>,
    director: Director,
    prerouting_lookups: AtomicU64,
    postrouting_lookups: AtomicU64,
    nodes_contacted: AtomicU64,
    super_chunks_routed: AtomicU64,
}

impl std::fmt::Debug for DedupCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DedupCluster")
            .field("nodes", &self.nodes.len())
            .field("router", &self.router.name())
            .finish()
    }
}

impl DedupCluster {
    /// Creates a cluster of `node_count` nodes using the given routing scheme.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero.
    pub fn new(node_count: usize, config: SigmaConfig, router: Box<dyn DataRouter>) -> Self {
        assert!(node_count > 0, "cluster must have at least one node");
        let nodes = (0..node_count)
            .map(|i| Arc::new(DedupNode::new(i, &config)))
            .collect();
        DedupCluster {
            config,
            nodes,
            router,
            director: Director::new(),
            prerouting_lookups: AtomicU64::new(0),
            postrouting_lookups: AtomicU64::new(0),
            nodes_contacted: AtomicU64::new(0),
            super_chunks_routed: AtomicU64::new(0),
        }
    }

    /// Creates a cluster using Σ-Dedupe's similarity-based stateful router.
    pub fn with_similarity_router(node_count: usize, config: SigmaConfig) -> Self {
        let balancing = config.capacity_balancing;
        DedupCluster::new(
            node_count,
            config,
            Box::new(SimilarityRouter::new(balancing)),
        )
    }

    /// The cluster configuration.
    pub fn config(&self) -> &SigmaConfig {
        &self.config
    }

    /// Number of deduplication nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The deduplication nodes.
    pub fn nodes(&self) -> &[Arc<DedupNode>] {
        &self.nodes
    }

    /// The routing scheme's name.
    pub fn router_name(&self) -> String {
        self.router.name()
    }

    /// The director (metadata service).
    pub fn director(&self) -> &Director {
        &self.director
    }

    /// Routes and deduplicates one super-chunk arriving from client stream `stream`.
    ///
    /// `file_id` carries file-boundary information when available; file-similarity
    /// routing schemes require it.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::FileBoundariesRequired`] if the router needs a file ID
    /// and none was given, or a storage error if a unique chunk cannot be stored.
    pub fn backup_super_chunk(
        &self,
        stream: u64,
        super_chunk: &SuperChunk,
        file_id: Option<u64>,
    ) -> Result<SuperChunkReceipt> {
        if super_chunk.is_empty() {
            return Ok(SuperChunkReceipt::default());
        }
        if self.router.requires_file_boundaries() && file_id.is_none() {
            return Err(SigmaError::FileBoundariesRequired {
                router: self.router.name(),
            });
        }
        let handprint = super_chunk.handprint(self.config.handprint_size);
        let decision = self.router.route(&RoutingContext {
            super_chunk,
            handprint: &handprint,
            file_id,
            nodes: &self.nodes,
        });

        self.prerouting_lookups
            .fetch_add(decision.prerouting_lookup_messages, Ordering::Relaxed);
        self.nodes_contacted
            .fetch_add(decision.nodes_contacted, Ordering::Relaxed);
        // The batched duplicate-or-unique query at the target costs one fingerprint
        // lookup per chunk (source deduplication, Section 3.1).
        self.postrouting_lookups
            .fetch_add(super_chunk.chunk_count() as u64, Ordering::Relaxed);
        self.super_chunks_routed.fetch_add(1, Ordering::Relaxed);

        self.nodes[decision.target].process_super_chunk(stream, super_chunk, &handprint)
    }

    /// Routes and deduplicates one super-chunk, also returning the target node.
    ///
    /// This is the variant backup clients use so they can record chunk→node mappings
    /// in file recipes.
    ///
    /// # Errors
    ///
    /// Same as [`backup_super_chunk`](DedupCluster::backup_super_chunk).
    pub fn backup_super_chunk_with_target(
        &self,
        stream: u64,
        super_chunk: &SuperChunk,
        file_id: Option<u64>,
    ) -> Result<(SuperChunkReceipt, usize)> {
        let receipt = self.backup_super_chunk(stream, super_chunk, file_id)?;
        Ok((receipt, receipt.node_id))
    }

    /// Routes and deduplicates a batch of super-chunks from one stream, in order.
    ///
    /// Per-stream ordering is what keeps file recipes — and therefore restores —
    /// identical to issuing the super-chunks one by one.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first routing/storage error.
    pub fn backup_super_chunk_batch(
        &self,
        stream: u64,
        super_chunks: &[SuperChunk],
        file_id: Option<u64>,
    ) -> Result<BatchReceipts> {
        super_chunks
            .iter()
            .map(|sc| self.backup_super_chunk_with_target(stream, sc, file_id))
            .collect()
    }

    /// Processes several streams' batches concurrently on real threads.
    ///
    /// Each batch keeps its internal order (one worker walks it front to back),
    /// while up to `parallelism` batches are in flight at once — the cluster-side
    /// half of the parallel ingest pipeline.  Results come back in input order.
    ///
    /// # Errors
    ///
    /// Returns the first error any stream hit; other streams still run to
    /// completion (their chunks are stored, only their receipts are discarded).
    ///
    /// # Example
    ///
    /// ```
    /// use sigma_core::{DedupCluster, SigmaConfig, StreamBatch, SuperChunk};
    /// use sigma_hashkit::FingerprintAlgorithm;
    ///
    /// let cluster = DedupCluster::with_similarity_router(2, SigmaConfig::default());
    /// let batches: Vec<StreamBatch> = (0..4u64)
    ///     .map(|stream| StreamBatch {
    ///         stream,
    ///         file_id: None,
    ///         super_chunks: vec![SuperChunk::from_payloads(
    ///             FingerprintAlgorithm::Sha1,
    ///             0,
    ///             vec![vec![stream as u8; 4096]],
    ///         )],
    ///     })
    ///     .collect();
    /// let receipts = cluster.backup_batches_concurrent(batches, 4).unwrap();
    /// assert_eq!(receipts.len(), 4);
    /// assert!(receipts.iter().all(|r| r[0].0.unique_chunks == 1));
    /// ```
    pub fn backup_batches_concurrent(
        &self,
        batches: Vec<StreamBatch>,
        parallelism: usize,
    ) -> Result<Vec<BatchReceipts>> {
        crate::pipeline::run_pool(parallelism, batches, |_, batch: StreamBatch| {
            self.backup_super_chunk_batch(batch.stream, &batch.super_chunks, batch.file_id)
        })
        .into_iter()
        .collect()
    }

    /// Reads one chunk back from the node that stores it.
    ///
    /// # Errors
    ///
    /// Propagates [`SigmaError::ChunkMissing`] / [`SigmaError::PayloadUnavailable`]
    /// from the node.
    pub fn read_chunk(
        &self,
        node: usize,
        fingerprint: &sigma_hashkit::Fingerprint,
    ) -> Result<Vec<u8>> {
        self.nodes
            .get(node)
            .ok_or(SigmaError::ChunkMissing {
                node,
                fingerprint: fingerprint.to_string(),
            })?
            .read_chunk(fingerprint)
    }

    /// Reconstructs a previously backed-up file from its recipe.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::FileNotFound`] for unknown file IDs and propagates chunk
    /// read errors.
    pub fn restore_file(&self, file_id: FileId) -> Result<Vec<u8>> {
        let recipe = self
            .director
            .recipe(file_id)
            .ok_or(SigmaError::FileNotFound(file_id))?;
        let mut out = Vec::with_capacity(recipe.size as usize);
        for entry in &recipe.chunks {
            let data = self.read_chunk(entry.node, &entry.fingerprint)?;
            out.extend_from_slice(&data);
        }
        Ok(out)
    }

    /// Seals all open containers on every node (end of a backup session).
    pub fn flush(&self) {
        for node in &self.nodes {
            node.flush();
        }
    }

    /// Resolves a handprint's resemblance on every node — exposed for experiments
    /// that need a global view (not used by the routing protocol itself).
    pub fn resemblance_by_node(&self, handprint: &Handprint) -> Vec<usize> {
        self.nodes
            .iter()
            .map(|n| n.resemblance_count(handprint))
            .collect()
    }

    /// Message counters so far.
    pub fn message_stats(&self) -> MessageStats {
        MessageStats {
            prerouting_lookups: self.prerouting_lookups.load(Ordering::Relaxed),
            postrouting_lookups: self.postrouting_lookups.load(Ordering::Relaxed),
            nodes_contacted: self.nodes_contacted.load(Ordering::Relaxed),
            super_chunks_routed: self.super_chunks_routed.load(Ordering::Relaxed),
        }
    }

    /// Cluster-wide statistics snapshot.
    pub fn stats(&self) -> ClusterStats {
        let nodes: Vec<NodeStats> = self.nodes.iter().map(|n| n.stats()).collect();
        let logical: u64 = nodes.iter().map(|n| n.logical_bytes).sum();
        let physical: u64 = nodes.iter().map(|n| n.physical_bytes).sum();
        let usage: Vec<u64> = nodes.iter().map(|n| n.physical_bytes).collect();
        let dedup_ratio = if physical == 0 {
            1.0
        } else {
            logical as f64 / physical as f64
        };
        ClusterStats {
            router: self.router.name(),
            node_count: self.nodes.len(),
            logical_bytes: logical,
            physical_bytes: physical,
            dedup_ratio,
            usage_skew: usage_skew(&usage),
            node_usage: usage,
            messages: self.message_stats(),
            nodes,
        }
    }
}

/// Standard deviation of per-node storage usage divided by the mean usage
/// (0 when the mean is zero).
pub(crate) fn usage_skew(usage: &[u64]) -> f64 {
    if usage.is_empty() {
        return 0.0;
    }
    let mean = usage.iter().map(|&u| u as f64).sum::<f64>() / usage.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let variance = usage
        .iter()
        .map(|&u| {
            let d = u as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / usage.len() as f64;
    variance.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChunkDescriptor;
    use sigma_hashkit::{Digest, FingerprintAlgorithm, Sha1};

    fn super_chunk(ids: std::ops::Range<u64>) -> SuperChunk {
        SuperChunk::from_descriptors(
            0,
            ids.map(|i| ChunkDescriptor::new(Sha1::fingerprint(&i.to_le_bytes()), 4096))
                .collect(),
        )
    }

    #[test]
    fn skew_is_zero_for_balanced_usage() {
        assert_eq!(usage_skew(&[]), 0.0);
        assert_eq!(usage_skew(&[0, 0, 0]), 0.0);
        assert!(usage_skew(&[100, 100, 100, 100]).abs() < 1e-12);
        assert!(usage_skew(&[100, 0, 100, 0]) > 0.9);
    }

    #[test]
    fn cluster_backup_accounts_messages() {
        let cluster = DedupCluster::with_similarity_router(8, SigmaConfig::default());
        let sc = super_chunk(0..256);
        cluster.backup_super_chunk(0, &sc, None).unwrap();
        let m = cluster.message_stats();
        assert_eq!(m.super_chunks_routed, 1);
        assert_eq!(m.postrouting_lookups, 256);
        // Pre-routing lookups = candidates * handprint size <= 8 * 8.
        assert!(m.prerouting_lookups > 0 && m.prerouting_lookups <= 64);
        assert!(m.total_lookups() >= 256);
    }

    #[test]
    fn duplicate_data_is_not_stored_twice_cluster_wide() {
        let cluster = DedupCluster::with_similarity_router(4, SigmaConfig::default());
        let sc = super_chunk(0..256);
        cluster.backup_super_chunk(0, &sc, None).unwrap();
        cluster.backup_super_chunk(0, &sc, None).unwrap();
        let stats = cluster.stats();
        assert_eq!(stats.logical_bytes, 2 * 256 * 4096);
        assert_eq!(stats.physical_bytes, 256 * 4096);
        assert!((stats.dedup_ratio - 2.0).abs() < 1e-9);
        assert!(stats.effective_dedup_ratio() <= stats.dedup_ratio);
    }

    #[test]
    fn empty_super_chunk_is_a_no_op() {
        let cluster = DedupCluster::with_similarity_router(2, SigmaConfig::default());
        let sc = SuperChunk::from_descriptors(0, Vec::new());
        let r = cluster.backup_super_chunk(0, &sc, None).unwrap();
        assert_eq!(r.total_chunks(), 0);
        assert_eq!(cluster.message_stats().super_chunks_routed, 0);
    }

    #[test]
    fn restore_of_unknown_file_fails() {
        let cluster = DedupCluster::with_similarity_router(2, SigmaConfig::default());
        assert!(matches!(
            cluster.restore_file(7),
            Err(SigmaError::FileNotFound(7))
        ));
    }

    #[test]
    fn payload_super_chunks_round_trip_through_read_chunk() {
        let cluster = DedupCluster::with_similarity_router(4, SigmaConfig::default());
        let chunks: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 2048]).collect();
        let sc = SuperChunk::from_payloads(FingerprintAlgorithm::Sha1, 0, chunks.clone());
        let (receipt, node) = cluster
            .backup_super_chunk_with_target(0, &sc, None)
            .unwrap();
        assert_eq!(receipt.unique_chunks, 8);
        cluster.flush();
        for (i, d) in sc.descriptors().iter().enumerate() {
            assert_eq!(cluster.read_chunk(node, &d.fingerprint).unwrap(), chunks[i]);
        }
    }

    #[test]
    fn resemblance_by_node_sees_routed_data() {
        let cluster = DedupCluster::with_similarity_router(4, SigmaConfig::default());
        let sc = super_chunk(0..256);
        let hp = sc.handprint(8);
        let before = cluster.resemblance_by_node(&hp);
        assert!(before.iter().all(|&r| r == 0));
        cluster.backup_super_chunk(0, &sc, None).unwrap();
        let after = cluster.resemblance_by_node(&hp);
        assert_eq!(after.iter().filter(|&&r| r > 0).count(), 1);
    }

    #[test]
    fn node_usage_reported_per_node() {
        let cluster = DedupCluster::with_similarity_router(4, SigmaConfig::default());
        for g in 0..8u64 {
            let sc = super_chunk(g * 1000..g * 1000 + 64);
            cluster.backup_super_chunk(0, &sc, None).unwrap();
        }
        let stats = cluster.stats();
        assert_eq!(stats.node_usage.len(), 4);
        assert_eq!(stats.node_usage.iter().sum::<u64>(), stats.physical_bytes);
        assert_eq!(stats.node_count, 4);
        assert_eq!(stats.router, "sigma");
    }
}
