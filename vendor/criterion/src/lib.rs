//! Offline shim for the parts of [`criterion`](https://docs.rs/criterion) this
//! workspace uses.
//!
//! The build environment has no network access to a crates registry, so the real
//! `criterion` cannot be fetched. This shim keeps the same API surface
//! (`Criterion`, `benchmark_group`, `Throughput`, `criterion_group!`,
//! `criterion_main!`, `Bencher::iter`) and performs real wall-clock measurement:
//! each benchmark is calibrated so a sample lasts long enough to be meaningful,
//! then timed over the configured number of samples, reporting min/median/max
//! per-iteration time and optional throughput. It does not produce HTML reports,
//! statistical regression analysis, or saved baselines. Swapping in the real
//! crate later is a one-line change in `[workspace.dependencies]` and requires
//! no source edits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target duration of one measured sample after calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);
/// Upper bound on the total measured time of one benchmark.
const MAX_BENCH_BUDGET: Duration = Duration::from_secs(5);

/// The benchmark manager: holds configuration and reports results.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            quick: false,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Configures this instance from the harness command line.
    ///
    /// `cargo bench` / `cargo test` pass flags such as `--bench` and `--test` to
    /// harness-less bench executables; `--test` switches to a single-iteration
    /// smoke run, everything else is ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.quick = std::env::args().any(|a| a == "--test");
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, None, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    fn run_one<F>(&mut self, id: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            quick: self.quick,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(id, &bencher.samples, throughput);
    }
}

/// A handle that runs the measured routine; passed to every benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    quick: bool,
    /// Measured time per iteration, one entry per sample.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`, timing batches of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.quick {
            let start = Instant::now();
            black_box(routine());
            self.samples = vec![start.elapsed()];
            return;
        }

        // Calibrate: grow the batch size until one batch reaches the target
        // sample duration, so Instant overhead is amortized away.
        let mut iters_per_sample = 1u64;
        let mut calibrated = loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters_per_sample >= 1 << 24 {
                break elapsed;
            }
            iters_per_sample *= 2;
        };

        let mut samples = Vec::with_capacity(self.sample_size);
        samples.push(calibrated / iters_per_sample as u32);
        let mut spent = calibrated;
        while samples.len() < self.sample_size && spent < MAX_BENCH_BUDGET {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            calibrated = start.elapsed();
            spent += calibrated;
            samples.push(calibrated / iters_per_sample as u32);
        }
        self.samples = samples;
    }

    /// Measures `routine` over inputs produced by `setup`, excluding the setup
    /// cost from the timed region.
    ///
    /// The shim ignores the `BatchSize` hint and always pairs one (untimed)
    /// setup call with one timed routine call — correct for destructive
    /// routines (`BatchSize::PerIteration` semantics) and a valid, if
    /// unbatched, measurement for the other variants. `Instant` overhead is
    /// not amortized, so this is meant for routines well above microsecond
    /// scale (the ones that need a fresh input each iteration usually are).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let samples = if self.quick { 1 } else { self.sample_size };
        let mut spent = Duration::ZERO;
        self.samples = Vec::with_capacity(samples);
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            spent += elapsed;
            self.samples.push(elapsed);
            if !self.quick && spent >= MAX_BENCH_BUDGET && !self.samples.is_empty() {
                break;
            }
        }
    }
}

/// How many setup outputs `iter_batched` materializes per timed batch.
///
/// The shim always runs setup once per iteration outside the timed region
/// (the real crate uses the hint to bound memory); the variants exist so call
/// sites compile unchanged against the real `criterion`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; the real crate batches many per allocation.
    SmallInput,
    /// Setup output is large; the real crate batches few per allocation.
    LargeInput,
    /// One setup call per iteration — for destructive routines that consume
    /// expensive state.
    PerIteration,
}

/// The units of work one benchmark iteration performs, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A set of related benchmarks sharing a name prefix and throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used when reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be at least 1");
        self.criterion.sample_size = n;
        self
    }

    /// Runs and reports one benchmark under this group's prefix.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn report(id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{id:<50} (no samples recorded)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let max = sorted[sorted.len() - 1];
    println!(
        "{id:<50} time:   [{} {} {}]",
        format_time(min),
        format_time(median),
        format_time(max)
    );
    if let Some(throughput) = throughput {
        let per_sec = |d: Duration, units: u64| units as f64 / d.as_secs_f64().max(1e-12);
        let (unit, rate) = match throughput {
            Throughput::Bytes(bytes) => ("B/s", per_sec(median, bytes)),
            Throughput::Elements(elements) => ("elem/s", per_sec(median, elements)),
        };
        println!("{:<50} thrpt:  [{}]", "", format_rate(rate, unit));
    }
}

fn format_time(d: Duration) -> String {
    let nanos = d.as_nanos() as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.3} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.3} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

fn format_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.3} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// Declares a group of benchmark functions, optionally with a shared
/// configuration (`name = ...; config = ...; targets = ...`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` function running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut criterion = Criterion::default().sample_size(5);
        let mut ran = 0u64;
        criterion.bench_function("shim/self_test", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_reports_throughput() {
        let mut criterion = Criterion::default().sample_size(3);
        let mut group = criterion.benchmark_group("shim");
        group.throughput(Throughput::Bytes(4096));
        group.bench_function("memcpy_4k", |b| {
            let src = vec![7u8; 4096];
            b.iter(|| src.to_vec())
        });
        group.finish();
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut criterion = Criterion::default().sample_size(4);
        let mut setups = 0u64;
        let mut runs = 0u64;
        criterion.bench_function("shim/iter_batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 64]
                },
                |input| {
                    runs += 1;
                    input.len()
                },
                BatchSize::PerIteration,
            )
        });
        assert_eq!(setups, runs);
        assert!(runs >= 1);
    }

    #[test]
    fn formatting_units() {
        assert!(format_time(Duration::from_nanos(12)).ends_with("ns"));
        assert!(format_time(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_time(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_time(Duration::from_secs(12)).ends_with(" s"));
        assert!(format_rate(2.5e9, "B/s").starts_with("2.500 G"));
        assert!(format_rate(12.0, "B/s").starts_with("12.0 "));
    }
}
