//! Table 2: workload characteristics of the evaluation datasets.

use criterion::{criterion_group, criterion_main, Criterion};
use sigma_simulation::experiments::table2;
use sigma_workloads::{presets, Scale};

fn report() {
    sigma_bench::banner(
        "Table 2",
        "workload characteristics of the four evaluation datasets",
    );
    let rows = table2::run(Scale::Small);
    sigma_bench::print_table(
        "synthetic stand-ins at the Small scale (sizes shrink, redundancy structure is preserved)",
        &table2::render(&rows),
    );
}

fn bench_workload_generation(c: &mut Criterion) {
    report();
    c.bench_function("table2/generate_linux_tiny_trace", |b| {
        b.iter(|| presets::linux_dataset(Scale::Tiny))
    });
    let dataset = presets::web_dataset(Scale::Tiny);
    c.bench_function("table2/exact_dedup_ratio_web_tiny", |b| {
        b.iter(|| dataset.exact_dedup_ratio())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_workload_generation
}
criterion_main!(benches);
