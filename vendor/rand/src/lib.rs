//! Offline shim for the parts of [`rand`](https://docs.rs/rand) this workspace uses.
//!
//! The build environment has no network access to a crates registry, so the real
//! `rand` cannot be fetched. This shim reproduces the `rand` 0.8 API shape the
//! workspace relies on — `rngs::StdRng`, [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`] — backed by a self-contained xoshiro256++
//! generator seeded through SplitMix64. The workspace only needs *deterministic,
//! well-distributed* randomness for synthetic workload generation, not
//! cryptographic strength, so a small strong statistical PRNG is the right
//! trade-off. Swapping in the real crate later is a one-line change in
//! `[workspace.dependencies]` and requires no source edits (the stream of values
//! will differ; nothing in the workspace depends on the exact stream of the real
//! crate's `StdRng`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: raw output blocks.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed, expanded with SplitMix64 so that
    /// close seeds still produce uncorrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution (uniform over
    /// all values for integers, uniform in `[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable from their "standard" distribution via [`Rng::gen`].
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl SampleStandard for $ty {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for u128 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1) on the dyadic grid.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform value in `[0, n)` by rejection of the modulo-biased zone.
fn uniform_u64_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n;
    loop {
        let v = rng.next_u64();
        if v >= threshold {
            return v % n;
        }
    }
}

macro_rules! impl_range_uint {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(rng, span) as $ty
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64_below(rng, span) as i64) as $ty
            }
        }
    )*};
}

impl_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end - self.start;
                // `start + span * f` with f < 1 can still round up to exactly
                // `end`; resample to keep the range half-open. The retry
                // probability is ~2^-53 per draw, so the fallback is
                // unreachable in practice but keeps the loop bounded.
                for _ in 0..64 {
                    let v = self.start + span * <$ty>::sample_standard(rng);
                    if v < self.end {
                        return v;
                    }
                }
                self.start
            }
        }
    )*};
}

impl_range_float!(f32, f64);

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the same algorithm (or stream) as the real `rand`'s ChaCha-based
    /// `StdRng`, but deterministic, fast and statistically strong, which is all
    /// the synthetic workload generators need.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9e3779b97f4a7c15,
                    0x6a09e667f3bcc909,
                    0xbb67ae8584caa73b,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_float_stays_below_end() {
        // A one-ULP-wide range: without the resample guard, about half of all
        // draws round up to exactly `end`, violating half-open semantics.
        let mut rng = StdRng::seed_from_u64(9);
        let start = 1.0f64;
        let end = 1.0 + f64::EPSILON;
        for _ in 0..1_000 {
            let v = rng.gen_range(start..end);
            assert!(
                v >= start && v < end,
                "v = {v:?} escaped [{start:?}, {end:?})"
            );
        }
    }

    #[test]
    fn gen_range_covers_all_residues() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
