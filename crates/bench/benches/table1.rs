//! Table 1: comparison of cluster deduplication schemes (measured grades).

use criterion::{criterion_group, criterion_main, Criterion};
use sigma_core::{
    DataRouter, DedupNode, RoutingContext, SigmaConfig, SimilarityRouter, SuperChunk,
};
use sigma_hashkit::{Digest, Sha1};
use sigma_simulation::experiments::table1;
use sigma_workloads::Scale;
use std::sync::Arc;

fn report() {
    sigma_bench::banner(
        "Table 1",
        "comparison of representative cluster deduplication schemes",
    );
    let rows = table1::run(table1::Table1Params {
        scale: Scale::Small,
        cluster_size: 32,
    });
    sigma_bench::print_table(
        "measured grades on the Linux-like workload, 32 nodes",
        &table1::render(&rows),
    );
}

fn bench_routing_decision(c: &mut Criterion) {
    report();
    let config = SigmaConfig::default();
    let nodes: Vec<Arc<DedupNode>> = (0..32)
        .map(|i| Arc::new(DedupNode::new(i, &config)))
        .collect();
    let sc = SuperChunk::from_descriptors(
        0,
        (0..256u64)
            .map(|i| sigma_core::ChunkDescriptor::new(Sha1::fingerprint(&i.to_le_bytes()), 4096))
            .collect(),
    );
    let handprint = sc.handprint(8);
    let router = SimilarityRouter::new(true);
    c.bench_function("table1/similarity_routing_decision_32_nodes", |b| {
        b.iter(|| {
            router.route(&RoutingContext {
                super_chunk: &sc,
                handprint: &handprint,
                file_id: None,
                nodes: &nodes,
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_routing_decision
}
criterion_main!(benches);
