//! Figure 1: handprint-based super-chunk resemblance detection.

use criterion::{criterion_group, criterion_main, Criterion};
use sigma_core::Handprint;
use sigma_hashkit::{Digest, Fingerprint, Sha1};
use sigma_simulation::experiments::fig1;

fn report() {
    sigma_bench::banner(
        "Figure 1",
        "estimated vs. real super-chunk resemblance as a function of handprint size",
    );
    let rows = fig1::run(fig1::Fig1Params::default());
    sigma_bench::print_table(
        "8 MB super-chunk pairs, TTTD 1K/2K/4K/32K chunking",
        &fig1::render(&rows),
    );
    println!(
        "estimates converge toward the real resemblance: {}",
        fig1::estimates_converge(&rows)
    );
}

fn bench_handprint(c: &mut Criterion) {
    report();
    let fingerprints: Vec<Fingerprint> = (0..2048u64)
        .map(|i| Sha1::fingerprint(&i.to_le_bytes()))
        .collect();
    c.bench_function("fig1/handprint_of_2048_fingerprints_k8", |b| {
        b.iter(|| Handprint::from_fingerprints(fingerprints.iter().copied(), 8))
    });
    let a = Handprint::from_fingerprints(fingerprints.iter().copied(), 64);
    let b_hp = Handprint::from_fingerprints(fingerprints.iter().skip(512).copied(), 64);
    c.bench_function("fig1/resemblance_estimate_k64", |b| {
        b.iter(|| a.estimate_resemblance(&b_hp))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_handprint
}
criterion_main!(benches);
