//! Chunk value types shared by the chunkers and the deduplication layers.

use serde::{Deserialize, Serialize};

/// The position of a chunk within its source stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChunkSpan {
    /// Byte offset of the chunk start within the stream.
    pub offset: u64,
    /// Chunk length in bytes.
    pub len: u32,
}

impl ChunkSpan {
    /// Creates a new span.
    pub fn new(offset: u64, len: u32) -> Self {
        ChunkSpan { offset, len }
    }

    /// Offset one past the last byte of the chunk.
    pub fn end(&self) -> u64 {
        self.offset + self.len as u64
    }
}

/// An owned data chunk produced by a [`Chunker`](crate::Chunker).
///
/// # Example
///
/// ```
/// use sigma_chunking::Chunk;
///
/// let c = Chunk::new(4096, vec![7u8; 128]);
/// assert_eq!(c.offset(), 4096);
/// assert_eq!(c.len(), 128);
/// assert!(!c.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chunk {
    span: ChunkSpan,
    data: Vec<u8>,
}

impl Chunk {
    /// Creates a chunk at stream offset `offset` holding `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is longer than `u32::MAX` bytes (chunks are small by
    /// construction; the largest chunk size used anywhere in the paper is 64 KB).
    pub fn new(offset: u64, data: Vec<u8>) -> Self {
        assert!(
            data.len() <= u32::MAX as usize,
            "chunk larger than u32::MAX bytes"
        );
        Chunk {
            span: ChunkSpan::new(offset, data.len() as u32),
            data,
        }
    }

    /// The chunk's position within its stream.
    pub fn span(&self) -> ChunkSpan {
        self.span
    }

    /// Byte offset of the chunk within its stream.
    pub fn offset(&self) -> u64 {
        self.span.offset
    }

    /// Chunk payload.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Chunk length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the chunk holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Consumes the chunk, returning its payload.
    pub fn into_data(self) -> Vec<u8> {
        self.data
    }
}

impl AsRef<[u8]> for Chunk {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_end() {
        let s = ChunkSpan::new(100, 28);
        assert_eq!(s.end(), 128);
    }

    #[test]
    fn chunk_accessors() {
        let c = Chunk::new(10, b"abcdef".to_vec());
        assert_eq!(c.offset(), 10);
        assert_eq!(c.len(), 6);
        assert_eq!(c.span().end(), 16);
        assert_eq!(c.data(), b"abcdef");
        assert_eq!(c.clone().into_data(), b"abcdef".to_vec());
    }

    #[test]
    fn empty_chunk() {
        let c = Chunk::new(0, Vec::new());
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }
}
