//! End-to-end integration tests spanning the client, cluster, nodes and director.

use sigma_dedupe::prelude::*;
use std::sync::Arc;

fn cluster(nodes: usize) -> Arc<DedupCluster> {
    Arc::new(DedupCluster::with_similarity_router(
        nodes,
        SigmaConfig::default(),
    ))
}

#[test]
fn incremental_generations_deduplicate_and_restore() {
    let cluster = cluster(4);
    let client = BackupClient::new(cluster.clone(), 0);
    let generations = versioned_payloads(VersionedPayloadParams {
        seed: 11,
        versions: 4,
        version_size: 8 << 20,
        mutation_rate: 0.04,
    });

    let mut reports = Vec::new();
    for (name, data) in &generations {
        reports.push((client.backup_bytes(name, data).unwrap(), data));
    }
    cluster.flush();

    // Generation 1 transfers everything; later generations transfer only the churn.
    assert_eq!(reports[0].0.transferred_bytes, (8 << 20) as u64);
    for (report, _) in &reports[1..] {
        assert!(
            report.transferred_bytes < (8 << 20) / 5,
            "incremental generation transferred {} bytes",
            report.transferred_bytes
        );
    }

    // Every generation restores bit-exactly.
    for (report, data) in &reports {
        assert_eq!(&cluster.restore_file(report.file_id).unwrap(), *data);
    }

    // Cluster-wide dedup ratio reflects the 4 nearly identical generations.
    let stats = cluster.stats();
    assert!(stats.dedup_ratio > 3.0, "dr = {}", stats.dedup_ratio);
}

#[test]
fn many_clients_share_duplicate_data_across_the_cluster() {
    let cluster = cluster(8);
    let shared = random_bytes(4 << 20, 77);
    let mut total_transferred = 0u64;
    for client_id in 0..6u64 {
        let client = BackupClient::new(cluster.clone(), client_id);
        let report = client
            .backup_bytes(&format!("shared-{}", client_id), &shared)
            .unwrap();
        total_transferred += report.transferred_bytes;
    }
    cluster.flush();
    // Only the first client pays for the data.
    assert_eq!(total_transferred, (4 << 20) as u64);
    let stats = cluster.stats();
    assert!(
        (stats.dedup_ratio - 6.0).abs() < 0.5,
        "dr = {}",
        stats.dedup_ratio
    );
    assert_eq!(cluster.director().session_count(), 6);
}

#[test]
fn unique_data_spreads_across_nodes() {
    let cluster = cluster(8);
    let client = BackupClient::new(cluster.clone(), 0);
    // 64 MB of unique data must not pile up on one node.
    for i in 0..8u64 {
        let data = random_bytes(8 << 20, 1000 + i);
        client
            .backup_bytes(&format!("unique-{}", i), &data)
            .unwrap();
    }
    cluster.flush();
    let stats = cluster.stats();
    let used_nodes = stats.node_usage.iter().filter(|&&u| u > 0).count();
    assert!(used_nodes >= 6, "only {} of 8 nodes used", used_nodes);
    assert!(stats.usage_skew < 1.0, "skew = {}", stats.usage_skew);
}

#[test]
fn restore_errors_are_reported() {
    let cluster = cluster(2);
    assert!(matches!(
        cluster.restore_file(123),
        Err(SigmaError::FileNotFound(123))
    ));
}

#[test]
fn mixed_file_sizes_round_trip() {
    let cluster = cluster(4);
    let client = BackupClient::new(cluster.clone(), 0);
    let files: Vec<(String, Vec<u8>)> = vec![
        ("empty".into(), Vec::new()),
        ("tiny".into(), b"x".to_vec()),
        ("one-chunk".into(), random_bytes(4096, 1)),
        ("odd-size".into(), random_bytes(123_457, 2)),
        ("big".into(), random_bytes(3 << 20, 3)),
    ];
    let mut ids = Vec::new();
    for (name, data) in &files {
        ids.push(client.backup_bytes(name, data).unwrap().file_id);
    }
    cluster.flush();
    for ((_, data), id) in files.iter().zip(ids) {
        assert_eq!(&cluster.restore_file(id).unwrap(), data);
    }
}
