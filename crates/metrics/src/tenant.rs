//! Per-tenant accounting counters and the fairness index.
//!
//! A multi-tenant deduplication service has a split personality: *logical*
//! bytes are strictly per-tenant (every tenant's backups sum to the cluster's
//! logical total), while *physical* chunks are shared — two tenants backing
//! up the same generational dataset store it once.  [`TenantCounters`] tracks
//! the per-tenant side with the same lock-free atomics as
//! [`OpCounters`](crate::OpCounters); [`TenantStatsReport`] is the snapshot
//! shape the service layer surfaces through its `Stats` operation; and
//! [`jain_fairness_index`] scores how evenly a scheduler divided service
//! among tenants.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free per-tenant counters, fed by the service layer.
///
/// `transferred_bytes` follows first-writer-pays accounting: a chunk another
/// tenant already stored costs this tenant nothing, so a tenant whose data
/// fully deduplicates against the cluster shows a high
/// [`dedup_ratio`](TenantStatsReport::dedup_ratio) even on its first backup.
#[derive(Debug, Default)]
pub struct TenantCounters {
    requests: AtomicU64,
    rejected: AtomicU64,
    logical_bytes: AtomicU64,
    transferred_bytes: AtomicU64,
    freed_bytes: AtomicU64,
    restored_bytes: AtomicU64,
}

impl TenantCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        TenantCounters::default()
    }

    /// Records one completed request; `rejected` covers every non-`Ok`
    /// outcome (auth, quota, rate-limit, shed, backend error).
    pub fn record_request(&self, rejected: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if rejected {
            self.rejected.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Accounts one successful backup: the bytes the tenant asked to protect
    /// and the unique bytes it actually had to ship.
    pub fn record_ingest(&self, logical_bytes: u64, transferred_bytes: u64) {
        self.logical_bytes
            .fetch_add(logical_bytes, Ordering::Relaxed);
        self.transferred_bytes
            .fetch_add(transferred_bytes, Ordering::Relaxed);
    }

    /// Accounts logical bytes freed by a delete (file, backup or generation).
    pub fn record_freed(&self, freed_bytes: u64) {
        self.freed_bytes.fetch_add(freed_bytes, Ordering::Relaxed);
    }

    /// Accounts bytes rebuilt by a successful restore.
    pub fn record_restored(&self, bytes: u64) {
        self.restored_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A point-in-time report for this tenant.  Like
    /// [`OpCounters::snapshot`](crate::OpCounters::snapshot), fields are read
    /// independently and may tear by one observation under concurrent
    /// recording — fine for monitoring.
    pub fn report(&self, tenant: &str) -> TenantStatsReport {
        TenantStatsReport {
            tenant: tenant.to_string(),
            requests: self.requests.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            logical_bytes: self.logical_bytes.load(Ordering::Relaxed),
            transferred_bytes: self.transferred_bytes.load(Ordering::Relaxed),
            freed_bytes: self.freed_bytes.load(Ordering::Relaxed),
            restored_bytes: self.restored_bytes.load(Ordering::Relaxed),
            live_logical_bytes: 0,
            files: 0,
        }
    }
}

/// One tenant's accounting snapshot, as surfaced by the service layer's
/// `Stats` operation.
///
/// `logical_bytes`/`transferred_bytes`/`freed_bytes` are *cumulative* ingest
/// history; `live_logical_bytes` and `files` are the current state of the
/// tenant's surviving recipes (filled in by the service from the cluster's
/// tenant-tagged director, zero when built from bare counters).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TenantStatsReport {
    /// The tenant this report describes.
    pub tenant: String,
    /// Requests observed for the tenant (all operations, all outcomes).
    pub requests: u64,
    /// Requests that ended non-`Ok` (rejections and errors).
    pub rejected: u64,
    /// Cumulative logical bytes the tenant ingested.
    pub logical_bytes: u64,
    /// Cumulative unique bytes the tenant shipped (first-writer-pays).
    pub transferred_bytes: u64,
    /// Cumulative logical bytes freed by the tenant's deletes.
    pub freed_bytes: u64,
    /// Cumulative bytes rebuilt by the tenant's restores.
    pub restored_bytes: u64,
    /// Logical bytes of the tenant's recipes still registered.
    pub live_logical_bytes: u64,
    /// Number of the tenant's files still registered.
    pub files: u64,
}

impl TenantStatsReport {
    /// The tenant's deduplication ratio: logical bytes ingested over bytes it
    /// had to ship.  1.0 when nothing was transferred (nothing ingested, or
    /// everything deduplicated against chunks someone already paid for —
    /// either way the tenant caused no inflation).
    pub fn dedup_ratio(&self) -> f64 {
        crate::dedup_ratio(self.logical_bytes, self.transferred_bytes)
    }
}

/// Jain's fairness index over per-tenant shares: `(Σxᵢ)² / (n · Σxᵢ²)`.
///
/// 1.0 means perfectly equal shares; `1/n` means one tenant got everything.
/// Empty input and all-zero shares score 1.0 (no service was divided, so none
/// was divided unfairly).  Negative shares are clamped to zero.
///
/// # Example
///
/// ```
/// use sigma_metrics::jain_fairness_index;
/// assert_eq!(jain_fairness_index(&[5.0, 5.0, 5.0, 5.0]), 1.0);
/// assert_eq!(jain_fairness_index(&[1.0, 0.0, 0.0, 0.0]), 0.25);
/// ```
pub fn jain_fairness_index(shares: &[f64]) -> f64 {
    if shares.is_empty() {
        return 1.0;
    }
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for &s in shares {
        let s = s.max(0.0);
        sum += s;
        sum_sq += s * s;
    }
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (shares.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_roll_up_into_a_report() {
        let c = TenantCounters::new();
        c.record_request(false);
        c.record_request(true);
        c.record_ingest(1000, 250);
        c.record_freed(300);
        c.record_restored(128);
        let r = c.report("acme");
        assert_eq!(r.tenant, "acme");
        assert_eq!(r.requests, 2);
        assert_eq!(r.rejected, 1);
        assert_eq!(r.logical_bytes, 1000);
        assert_eq!(r.transferred_bytes, 250);
        assert_eq!(r.freed_bytes, 300);
        assert_eq!(r.restored_bytes, 128);
        assert_eq!(r.dedup_ratio(), 4.0);
    }

    #[test]
    fn fully_deduplicated_tenant_has_ratio_one_not_zero() {
        let c = TenantCounters::new();
        c.record_ingest(4096, 0);
        assert_eq!(c.report("t").dedup_ratio(), 1.0);
    }

    #[test]
    fn concurrent_tenant_recording_loses_nothing() {
        let c = Arc::new(TenantCounters::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record_request(false);
                        c.record_ingest(10, 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let r = c.report("hot");
        assert_eq!(r.requests, 4000);
        assert_eq!(r.logical_bytes, 40_000);
        assert_eq!(r.transferred_bytes, 4000);
    }

    #[test]
    fn jain_index_bounds_and_extremes() {
        assert_eq!(jain_fairness_index(&[]), 1.0);
        assert_eq!(jain_fairness_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_fairness_index(&[7.0]), 1.0);
        let one_hog = jain_fairness_index(&[10.0, 0.0, 0.0, 0.0, 0.0]);
        assert!((one_hog - 0.2).abs() < 1e-12, "1/n for a single hog");
        // Mild imbalance stays high.
        let mild = jain_fairness_index(&[9.0, 10.0, 11.0, 10.0]);
        assert!(mild > 0.99);
        // Negative shares are clamped rather than inflating the index.
        let clamped = jain_fairness_index(&[-5.0, 10.0]);
        assert_eq!(clamped, 0.5);
    }

    #[test]
    fn jain_index_is_scale_invariant() {
        let a = jain_fairness_index(&[1.0, 2.0, 3.0]);
        let b = jain_fairness_index(&[100.0, 200.0, 300.0]);
        assert!((a - b).abs() < 1e-12);
    }
}
