//! The persisted performance trajectory: a schema-versioned JSON record of the
//! headline throughput numbers, plus the calibration-normalized comparison CI
//! uses to fail on regressions.
//!
//! The vendored serde shim is derive-only, so the report defines its own tiny
//! JSON writer and reader.  The format is stable within a schema version; the
//! reader rejects unknown versions loudly instead of mis-parsing them.
//!
//! # Byte bases
//!
//! A deduplication system has several honest-but-different MB/s figures, and
//! mixing them up flatters or slanders a change by integer factors.  Every
//! metric therefore carries an explicit [`ByteBasis`]:
//!
//! * [`LogicalPreDedup`](ByteBasis::LogicalPreDedup) — bytes the *client*
//!   offered, before deduplication.  The paper's ingest numbers (Figure 4) are
//!   on this basis: a 20× dedup ratio makes post-dedup "throughput" 20× larger
//!   and meaningless for sizing a backup window.
//! * [`JournalBytes`](ByteBasis::JournalBytes) — bytes of write-ahead log
//!   replayed by recovery; neither logical nor physical payload.
//! * [`PhysicalMoved`](ByteBasis::PhysicalMoved) — post-dedup container bytes
//!   a rebalance migrated.
//! * [`PhysicalReclaimed`](ByteBasis::PhysicalReclaimed) — post-dedup bytes a
//!   GC sweep returned to free space.
//! * [`LogicalRestored`](ByteBasis::LogicalRestored) — bytes handed back to the
//!   client by a restore.  Backend reads may exceed this (coalesced extents
//!   over-read) or undercut it (cache hits); the logical figure is the one a
//!   recovery-time objective is sized against.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version of the on-disk JSON schema; bump on any incompatible change.
pub const SCHEMA_VERSION: u64 = 1;

/// What the `bytes` of a metric's MB/s figure actually count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteBasis {
    /// Client-offered logical bytes, before deduplication.
    LogicalPreDedup,
    /// Write-ahead-journal bytes replayed by recovery.
    JournalBytes,
    /// Post-dedup container bytes migrated by a rebalance.
    PhysicalMoved,
    /// Post-dedup bytes reclaimed by a GC sweep.
    PhysicalReclaimed,
    /// Client-visible logical bytes handed back by a restore.
    LogicalRestored,
}

impl ByteBasis {
    /// Stable string form used in the JSON file.
    pub fn as_str(self) -> &'static str {
        match self {
            ByteBasis::LogicalPreDedup => "logical-pre-dedup",
            ByteBasis::JournalBytes => "journal-bytes",
            ByteBasis::PhysicalMoved => "physical-moved",
            ByteBasis::PhysicalReclaimed => "physical-reclaimed",
            ByteBasis::LogicalRestored => "logical-restored",
        }
    }

    /// Parses the stable string form.
    pub fn from_str_opt(s: &str) -> Option<ByteBasis> {
        Some(match s {
            "logical-pre-dedup" => ByteBasis::LogicalPreDedup,
            "journal-bytes" => ByteBasis::JournalBytes,
            "physical-moved" => ByteBasis::PhysicalMoved,
            "physical-reclaimed" => ByteBasis::PhysicalReclaimed,
            "logical-restored" => ByteBasis::LogicalRestored,
            _ => return None,
        })
    }
}

/// One measured throughput figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable metric name (`ingest_payload_t1`, `replay_raw`, ...).
    pub name: String,
    /// Measured throughput in MB/s (decimal megabytes, as everywhere else).
    pub mbps: f64,
    /// Bytes the measurement covered (on `byte_basis`).
    pub bytes: u64,
    /// What those bytes count — see the module docs.
    pub byte_basis: ByteBasis,
    /// Whether the CI trajectory gate fails on a regression of this metric.
    pub headline: bool,
}

/// A full benchmark run: calibration plus every measured metric.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Label identifying the run (e.g. `pr7`).
    pub label: String,
    /// `quick` (CI-sized) or `full`.
    pub mode: String,
    /// MB/s of the fixed CPU calibration workload on the measuring machine;
    /// comparisons divide by this so a slower CI runner is not a "regression".
    pub calibration_mbps: f64,
    /// Optimized-vs-reference single-thread ingest speedup measured in this
    /// same run (same process, same cluster configuration, chunker swapped).
    pub ingest_speedup_vs_reference: f64,
    /// Every measured metric, in run order.
    pub metrics: Vec<Metric>,
}

impl BenchReport {
    /// Looks a metric up by name.
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serializes the report to the schema-versioned JSON file format.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", SCHEMA_VERSION);
        let _ = writeln!(out, "  \"label\": {},", json_string(&self.label));
        let _ = writeln!(out, "  \"mode\": {},", json_string(&self.mode));
        let _ = writeln!(
            out,
            "  \"calibration_mbps\": {},",
            json_number(self.calibration_mbps)
        );
        let _ = writeln!(
            out,
            "  \"ingest_speedup_vs_reference\": {},",
            json_number(self.ingest_speedup_vs_reference)
        );
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": {},", json_string(&m.name));
            let _ = writeln!(out, "      \"mbps\": {},", json_number(m.mbps));
            let _ = writeln!(out, "      \"bytes\": {},", m.bytes);
            let _ = writeln!(
                out,
                "      \"byte_basis\": {},",
                json_string(m.byte_basis.as_str())
            );
            let _ = writeln!(out, "      \"headline\": {}", m.headline);
            out.push_str("    }");
            out.push_str(if i + 1 == self.metrics.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: malformed JSON,
    /// an unknown schema version, or a missing/mistyped field.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let value = parse_json(text)?;
        let obj = value.as_object().ok_or("top level must be an object")?;
        let version = obj
            .get("schema_version")
            .and_then(JsonValue::as_f64)
            .ok_or("missing schema_version")? as u64;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {} (this build reads {})",
                version, SCHEMA_VERSION
            ));
        }
        let str_field = |key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or(format!("missing string field {key:?}"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or(format!("missing numeric field {key:?}"))
        };
        let mut metrics = Vec::new();
        for (i, entry) in obj
            .get("metrics")
            .and_then(JsonValue::as_array)
            .ok_or("missing metrics array")?
            .iter()
            .enumerate()
        {
            let m = entry
                .as_object()
                .ok_or(format!("metrics[{i}] must be an object"))?;
            let get_str = |key: &str| -> Result<&str, String> {
                m.get(key)
                    .and_then(JsonValue::as_str)
                    .ok_or(format!("metrics[{i}] missing string {key:?}"))
            };
            let get_num = |key: &str| -> Result<f64, String> {
                m.get(key)
                    .and_then(JsonValue::as_f64)
                    .ok_or(format!("metrics[{i}] missing number {key:?}"))
            };
            let basis = get_str("byte_basis")?;
            metrics.push(Metric {
                name: get_str("name")?.to_string(),
                mbps: get_num("mbps")?,
                bytes: get_num("bytes")? as u64,
                byte_basis: ByteBasis::from_str_opt(basis)
                    .ok_or(format!("metrics[{i}] has unknown byte_basis {basis:?}"))?,
                headline: m
                    .get("headline")
                    .and_then(JsonValue::as_bool)
                    .ok_or(format!("metrics[{i}] missing bool \"headline\""))?,
            });
        }
        Ok(BenchReport {
            label: str_field("label")?,
            mode: str_field("mode")?,
            calibration_mbps: num_field("calibration_mbps")?,
            ingest_speedup_vs_reference: num_field("ingest_speedup_vs_reference")?,
            metrics,
        })
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    // Finite, shortest-round-trip form; the file never needs NaN/inf.
    if v.is_finite() {
        format!("{}", v)
    } else {
        "0".to_string()
    }
}

// ---- minimal JSON reader ----
//
// Handles exactly the subset the writer above emits (objects, arrays, strings
// with basic escapes, numbers, booleans, null) — enough to read trajectory
// files back without a serde_json dependency.

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }
    fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
    fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }
    fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    JsonValue::String(s) => s,
                    _ => return Err(format!("object key at byte {pos} must be a string")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                map.insert(key, parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(JsonValue::String(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                                *pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {pos}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 character (bytes are valid UTF-8:
                        // the input is a &str).
                        let rest =
                            std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                        let c = rest.chars().next().expect("non-empty");
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(JsonValue::Number)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

// ---- calibration-normalized comparison ----

/// One metric's baseline-vs-current comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Metric name.
    pub name: String,
    /// Baseline MB/s (raw, as recorded).
    pub baseline_mbps: f64,
    /// Current MB/s (raw, as measured).
    pub current_mbps: f64,
    /// Calibration-normalized current/baseline ratio: 1.0 = unchanged, 0.8 =
    /// 20% slower *after* accounting for machine speed.
    pub ratio: f64,
    /// Whether this metric is regression-gated.
    pub headline: bool,
    /// True when the gate fires for this row.
    pub regressed: bool,
}

/// Outcome of comparing a current run against a committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareOutcome {
    /// Every metric present in both reports, in baseline order.
    pub rows: Vec<CompareRow>,
    /// Names of headline metrics whose normalized ratio fell below
    /// `1 - tolerance`.
    pub regressions: Vec<String>,
}

impl CompareOutcome {
    /// True when no headline metric regressed beyond tolerance.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares `current` against `baseline`, normalizing each side by its own
/// calibration number so that a uniformly slower machine does not read as a
/// regression.  A headline metric regresses when its normalized ratio drops
/// below `1 - tolerance` (e.g. `tolerance = 0.15` fails on >15% slowdowns).
///
/// Metrics appearing in only one report are skipped: the trajectory gate
/// compares the common subset, so adding a new metric never breaks CI runs
/// against an older baseline.
pub fn compare(baseline: &BenchReport, current: &BenchReport, tolerance: f64) -> CompareOutcome {
    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    for base in &baseline.metrics {
        let Some(cur) = current.metric(&base.name) else {
            continue;
        };
        let base_norm = safe_div(base.mbps, baseline.calibration_mbps);
        let cur_norm = safe_div(cur.mbps, current.calibration_mbps);
        let ratio = safe_div(cur_norm, base_norm);
        let gated = base.headline && cur.headline;
        let regressed = gated && ratio < 1.0 - tolerance;
        if regressed {
            regressions.push(base.name.clone());
        }
        rows.push(CompareRow {
            name: base.name.clone(),
            baseline_mbps: base.mbps,
            current_mbps: cur.mbps,
            ratio,
            headline: gated,
            regressed,
        });
    }
    CompareOutcome { rows, regressions }
}

fn safe_div(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(calibration: f64, ingest: f64) -> BenchReport {
        BenchReport {
            label: "pr7".to_string(),
            mode: "quick".to_string(),
            calibration_mbps: calibration,
            ingest_speedup_vs_reference: 2.0,
            metrics: vec![
                Metric {
                    name: "ingest_payload_t1".to_string(),
                    mbps: ingest,
                    bytes: 1 << 20,
                    byte_basis: ByteBasis::LogicalPreDedup,
                    headline: true,
                },
                Metric {
                    name: "replay_raw".to_string(),
                    mbps: 80.0,
                    bytes: 123_456,
                    byte_basis: ByteBasis::JournalBytes,
                    headline: true,
                },
                Metric {
                    name: "ingest_payload_reference_t1".to_string(),
                    mbps: ingest / 2.0,
                    bytes: 1 << 20,
                    byte_basis: ByteBasis::LogicalPreDedup,
                    headline: false,
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report(512.25, 100.125);
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let text = sample_report(500.0, 100.0)
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 999");
        let err = BenchReport::from_json(&text).unwrap_err();
        assert!(err.contains("schema_version"), "got: {err}");
    }

    #[test]
    fn malformed_json_reports_an_error() {
        assert!(BenchReport::from_json("{").is_err());
        assert!(BenchReport::from_json("[]").is_err());
        assert!(BenchReport::from_json("{\"schema_version\": 1}").is_err());
    }

    #[test]
    fn byte_basis_round_trips() {
        for basis in [
            ByteBasis::LogicalPreDedup,
            ByteBasis::JournalBytes,
            ByteBasis::PhysicalMoved,
            ByteBasis::PhysicalReclaimed,
            ByteBasis::LogicalRestored,
        ] {
            assert_eq!(ByteBasis::from_str_opt(basis.as_str()), Some(basis));
        }
        assert_eq!(ByteBasis::from_str_opt("post-dedup"), None);
    }

    #[test]
    fn identical_reports_pass_comparison() {
        let report = sample_report(500.0, 100.0);
        let outcome = compare(&report, &report, 0.15);
        assert!(outcome.passed());
        assert_eq!(outcome.rows.len(), 3);
        assert!(outcome.rows.iter().all(|r| (r.ratio - 1.0).abs() < 1e-12));
    }

    #[test]
    fn calibration_normalization_forgives_a_uniformly_slower_machine() {
        let baseline = sample_report(500.0, 100.0);
        // Same code on a machine half as fast: calibration and metric both
        // halve, normalized ratio stays 1.0.
        let slower = sample_report(250.0, 50.0);
        let outcome = compare(&baseline, &slower, 0.15);
        assert!(outcome.passed(), "regressions: {:?}", outcome.regressions);
    }

    #[test]
    fn genuine_headline_regression_fails_the_gate() {
        let baseline = sample_report(500.0, 100.0);
        // Calibration unchanged, ingest 30% slower: a real regression.
        let slower = sample_report(500.0, 70.0);
        let outcome = compare(&baseline, &slower, 0.15);
        assert!(!outcome.passed());
        assert_eq!(outcome.regressions, vec!["ingest_payload_t1".to_string()]);
    }

    #[test]
    fn non_headline_metrics_never_gate() {
        let baseline = sample_report(500.0, 100.0);
        let mut current = sample_report(500.0, 100.0);
        // Tank the non-headline reference number only.
        current.metrics[2].mbps = 1.0;
        assert!(compare(&baseline, &current, 0.15).passed());
    }

    #[test]
    fn metrics_missing_from_either_side_are_skipped() {
        let baseline = sample_report(500.0, 100.0);
        let mut current = sample_report(500.0, 100.0);
        current.metrics.remove(1);
        current.metrics.push(Metric {
            name: "brand_new".to_string(),
            mbps: 1.0,
            bytes: 1,
            byte_basis: ByteBasis::PhysicalMoved,
            headline: true,
        });
        let outcome = compare(&baseline, &current, 0.15);
        assert!(outcome.passed());
        assert_eq!(outcome.rows.len(), 2, "only the common subset compares");
    }
}
