//! Figure 5(b): deduplication ratio vs. handprint sampling rate and super-chunk size.
//!
//! With the traditional chunk-index fallback turned off, a node deduplicates purely
//! through the similarity index + container-prefetch path, so its effectiveness
//! depends on how well handprints of the configured size detect previously stored
//! super-chunks.  The paper sweeps the handprint *sampling rate* (handprint size ÷
//! chunks per super-chunk) and the super-chunk size and normalises the resulting
//! deduplication ratio to that of exact deduplication; the "knee" is at a sampling
//! rate of 1/512 for 16 MB super-chunks, i.e. ~8 representative fingerprints, and a
//! 1 MB / 8-fingerprint configuration retains ≈ 90 % of the exact ratio.

use crate::runner::{run_cluster, SimulationConfig};
use serde::{Deserialize, Serialize};
use sigma_core::{SigmaConfig, SimilarityRouter};
use sigma_metrics::report::TextTable;
use sigma_workloads::{presets, DatasetTrace, Scale};

/// One measured point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5bRow {
    /// Super-chunk size in bytes.
    pub super_chunk_size: usize,
    /// Sampling-rate denominator (one representative fingerprint per this many
    /// chunks).
    pub sampling_denominator: usize,
    /// Handprint size that the sampling rate translates to.
    pub handprint_size: usize,
    /// Deduplication ratio normalised to exact deduplication.
    pub normalized_dedup_ratio: f64,
}

/// Parameters of the experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5bParams {
    /// Workload scale.
    pub scale: Scale,
    /// Super-chunk sizes to sweep.
    pub super_chunk_sizes: Vec<usize>,
    /// Sampling-rate denominators to sweep.
    pub sampling_denominators: Vec<usize>,
}

impl Default for Fig5bParams {
    fn default() -> Self {
        Fig5bParams {
            scale: Scale::Small,
            super_chunk_sizes: vec![512 << 10, 1 << 20, 2 << 20, 4 << 20],
            sampling_denominators: vec![8, 16, 32, 64, 128, 256, 512],
        }
    }
}

/// Runs the experiment on the Linux-like workload.
pub fn run(params: &Fig5bParams) -> Vec<Fig5bRow> {
    let dataset = presets::linux_dataset(params.scale);
    run_on(&dataset, params)
}

/// Runs the experiment on a caller-provided workload.
pub fn run_on(dataset: &DatasetTrace, params: &Fig5bParams) -> Vec<Fig5bRow> {
    let exact = dataset.exact_dedup_ratio();
    let mut rows = Vec::new();
    for &super_chunk_size in &params.super_chunk_sizes {
        for &denominator in &params.sampling_denominators {
            let chunks_per_super_chunk = (super_chunk_size / 4096).max(1);
            let handprint_size = (chunks_per_super_chunk / denominator).max(1);
            let sigma = SigmaConfig::builder()
                .super_chunk_size(super_chunk_size)
                .handprint_size(handprint_size)
                .chunk_index_fallback(false)
                .build()
                .expect("valid configuration");
            let summary = run_cluster(
                dataset,
                Box::new(SimilarityRouter::new(true)),
                &SimulationConfig {
                    node_count: 1,
                    sigma,
                    client_streams: 1,
                },
            );
            rows.push(Fig5bRow {
                super_chunk_size,
                sampling_denominator: denominator,
                handprint_size,
                normalized_dedup_ratio: summary.dedup_ratio / exact,
            });
        }
    }
    rows
}

/// Renders the figure (sampling rates as rows, super-chunk sizes as columns).
pub fn render(rows: &[Fig5bRow]) -> String {
    let mut denominators: Vec<usize> = rows.iter().map(|r| r.sampling_denominator).collect();
    denominators.sort_unstable();
    denominators.dedup();
    let mut sizes: Vec<usize> = rows.iter().map(|r| r.super_chunk_size).collect();
    sizes.sort_unstable();
    sizes.dedup();

    let mut headers = vec!["sampling rate".to_string()];
    headers.extend(sizes.iter().map(|s| format!("{} KiB SC", s / 1024)));
    let mut table = TextTable::new(headers.iter().map(|s| s.as_str()).collect());
    for d in denominators {
        let mut cells = vec![format!("1/{}", d)];
        for &s in &sizes {
            let cell = rows
                .iter()
                .find(|r| r.sampling_denominator == d && r.super_chunk_size == s)
                .map(|r| format!("{:.3}", r.normalized_dedup_ratio))
                .unwrap_or_default();
            cells.push(cell);
        }
        table.add_row(cells);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Fig5bParams {
        Fig5bParams {
            scale: Scale::Tiny,
            super_chunk_sizes: vec![512 << 10, 1 << 20],
            sampling_denominators: vec![16, 64, 256],
        }
    }

    #[test]
    fn ratios_are_normalised_and_bounded() {
        let rows = run(&tiny_params());
        assert_eq!(rows.len(), 6);
        assert!(rows
            .iter()
            .all(|r| r.normalized_dedup_ratio > 0.1 && r.normalized_dedup_ratio <= 1.01));
    }

    #[test]
    fn coarser_sampling_does_not_improve_dedup() {
        // For a fixed super-chunk size, halving the sampling rate (bigger
        // denominator) can only reduce (or keep) the deduplication ratio.
        let rows = run(&tiny_params());
        for &size in &[512usize << 10, 1 << 20] {
            let series: Vec<f64> = [16usize, 64, 256]
                .iter()
                .map(|d| {
                    rows.iter()
                        .find(|r| r.super_chunk_size == size && r.sampling_denominator == *d)
                        .unwrap()
                        .normalized_dedup_ratio
                })
                .collect();
            assert!(
                series[0] >= series[2] - 0.05,
                "sampling sweep not monotone-ish: {:?}",
                series
            );
        }
    }

    #[test]
    fn paper_default_retains_most_of_exact_dedup() {
        // 1 MB super-chunks with handprint 8 (1/32 sampling) keep ~90% of exact DR.
        let rows = run(&Fig5bParams {
            scale: Scale::Tiny,
            super_chunk_sizes: vec![1 << 20],
            sampling_denominators: vec![32],
        });
        assert_eq!(rows[0].handprint_size, 8);
        assert!(
            rows[0].normalized_dedup_ratio > 0.75,
            "normalized DR = {}",
            rows[0].normalized_dedup_ratio
        );
    }

    #[test]
    fn render_lists_sampling_rates() {
        let text = render(&run(&tiny_params()));
        assert!(text.contains("1/16"));
        assert!(text.contains("KiB SC"));
    }
}
