//! Per-tenant logical-bytes quota, wired to the backup lifecycle's delete
//! accounting.

use crate::middleware::{Middleware, Next, ServiceResult};
use crate::{backend::FREED_BYTES_KEY, RequestEnvelope};
use parking_lot::Mutex;
use sigma_core::SigmaError;
use std::collections::{HashMap, HashSet, VecDeque};

/// How many `(tenant, request_id)` delete-credit entries the idempotency
/// ledger remembers before evicting the oldest.  A replay arriving after the
/// window has rolled over is credited again — acceptable, because transports
/// retry within a handful of in-flight requests, not thousands of requests
/// later.
const CREDIT_LEDGER_CAPACITY: usize = 4096;

/// Remembers which `(tenant, request_id)` pairs have already had their
/// `freed_bytes` credited, so a replayed delete response cannot double-credit
/// the budget.  Bounded FIFO: oldest entries are forgotten first.
#[derive(Debug, Default)]
struct CreditLedger {
    seen: HashSet<(String, u64)>,
    order: VecDeque<(String, u64)>,
}

impl CreditLedger {
    /// Records the pair; returns `false` when it was already present (a
    /// replay that must not be credited again).
    fn record(&mut self, tenant: &str, request_id: u64) -> bool {
        let key = (tenant.to_string(), request_id);
        if !self.seen.insert(key.clone()) {
            return false;
        }
        self.order.push_back(key);
        if self.order.len() > CREDIT_LEDGER_CAPACITY {
            if let Some(oldest) = self.order.pop_front() {
                self.seen.remove(&oldest);
            }
        }
        true
    }
}

/// Enforces a logical-bytes budget per tenant.
///
/// Admission is a *reservation*: an ingesting request debits its payload size
/// before it runs (so two concurrent requests cannot both squeeze through the
/// last free bytes) and is refunded if any lower layer rejects it.  Deletes
/// credit the budget with the `freed_bytes` figure the
/// [`BackupService`](crate::BackupService) reports — the same accounting the
/// backup lifecycle's delete/GC machinery returns — so expiring old backups
/// makes room for new ones.
///
/// Tenants with no registered budget are unlimited; their usage is still
/// tracked for observability.
///
/// An over-quota request is rejected with [`SigmaError::QuotaExceeded`]
/// (code [`ResourceExhausted`](sigma_core::ServiceCode::ResourceExhausted))
/// before it reaches any lower layer, so cluster accounting is untouched.
#[derive(Debug, Default)]
pub struct TenantQuota {
    budgets: HashMap<String, u64>,
    used: Mutex<HashMap<String, u64>>,
    credited: Mutex<CreditLedger>,
}

impl TenantQuota {
    /// Creates a quota layer with no budgets (everything unlimited).
    pub fn new() -> Self {
        TenantQuota::default()
    }

    /// Registers (or replaces) a tenant's logical-bytes budget.
    pub fn budget(mut self, tenant: impl Into<String>, logical_bytes: u64) -> Self {
        self.budgets.insert(tenant.into(), logical_bytes);
        self
    }

    /// The tenant's configured budget, if any.
    pub fn budget_of(&self, tenant: &str) -> Option<u64> {
        self.budgets.get(tenant).copied()
    }

    /// Logical bytes currently accounted to the tenant.
    pub fn usage(&self, tenant: &str) -> u64 {
        self.used.lock().get(tenant).copied().unwrap_or(0)
    }

    /// Reserves `requested` bytes for the tenant.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::QuotaExceeded`] without reserving anything when
    /// the tenant's remaining budget cannot cover the request.
    fn reserve(&self, tenant: &str, requested: u64) -> Result<(), SigmaError> {
        let mut used = self.used.lock();
        let current = used.get(tenant).copied().unwrap_or(0);
        if let Some(&budget) = self.budgets.get(tenant) {
            let remaining = budget.saturating_sub(current);
            if requested > remaining {
                return Err(SigmaError::QuotaExceeded {
                    tenant: tenant.to_string(),
                    requested_bytes: requested,
                    remaining_bytes: remaining,
                });
            }
        }
        *used.entry(tenant.to_string()).or_insert(0) = current + requested;
        Ok(())
    }

    /// Returns `bytes` to the tenant's budget (refund or delete credit).
    fn credit(&self, tenant: &str, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let mut used = self.used.lock();
        if let Some(u) = used.get_mut(tenant) {
            *u = u.saturating_sub(bytes);
        }
    }

    /// Credits `freed_bytes` from a delete response at most once per
    /// `(tenant, request_id)`.
    ///
    /// Transports retry: a delete whose response was lost in flight is
    /// re-sent with the *same* request id and the backend replays the same
    /// `freed_bytes` figure.  Crediting it on every pass would hand the
    /// tenant phantom budget, so the credit is keyed on the request id and
    /// applied exactly once.
    fn credit_freed_once(&self, tenant: &str, request_id: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        if self.credited.lock().record(tenant, request_id) {
            self.credit(tenant, bytes);
        }
    }
}

impl Middleware for TenantQuota {
    fn name(&self) -> &'static str {
        "quota"
    }

    fn handle(&self, req: RequestEnvelope, next: &dyn Next) -> ServiceResult {
        let tenant = req.tenant.clone();
        let request_id = req.request_id;
        let reserved = if req.operation.ingests() {
            let requested = req.payload.len() as u64;
            self.reserve(&tenant, requested)?;
            requested
        } else {
            0
        };
        match next.run(req) {
            Ok(resp) => {
                if !resp.is_ok() {
                    // A lower layer rejected via envelope rather than error:
                    // the reservation must not leak.
                    self.credit(&tenant, reserved);
                } else if let Some(freed) = resp.metadata_u64(FREED_BYTES_KEY) {
                    self.credit_freed_once(&tenant, request_id, freed);
                }
                Ok(resp)
            }
            Err(err) => {
                self.credit(&tenant, reserved);
                Err(err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Operation, PipelineExecutor, ResponseEnvelope};
    use sigma_core::ServiceCode;
    use std::sync::Arc;

    fn backup(id: u64, bytes: usize) -> RequestEnvelope {
        RequestEnvelope::new(
            id,
            "acme",
            Operation::Backup {
                file_name: format!("f{}", id),
                generation: 0,
            },
        )
        .with_payload(vec![0u8; bytes])
    }

    #[test]
    fn reservation_rejects_over_budget_and_admits_within() {
        let quota = Arc::new(TenantQuota::new().budget("acme", 1000));
        let p = PipelineExecutor::new(
            vec![quota.clone()],
            Arc::new(|r: RequestEnvelope| Ok(ResponseEnvelope::ok(r.request_id))),
        );
        assert!(p.execute(backup(1, 600)).is_ok());
        assert_eq!(quota.usage("acme"), 600);
        let over = p.execute(backup(2, 600));
        assert_eq!(over.code, ServiceCode::ResourceExhausted);
        assert!(over.message.contains("400"), "names the remaining bytes");
        assert_eq!(quota.usage("acme"), 600, "failed request reserved nothing");
        assert!(p.execute(backup(3, 400)).is_ok());
        assert_eq!(quota.usage("acme"), 1000);
    }

    #[test]
    fn backend_failure_refunds_the_reservation() {
        let quota = Arc::new(TenantQuota::new().budget("acme", 1000));
        let p = PipelineExecutor::new(
            vec![quota.clone()],
            Arc::new(|_r: RequestEnvelope| -> ServiceResult { Err(SigmaError::FileNotFound(1)) }),
        );
        let resp = p.execute(backup(1, 800));
        assert_eq!(resp.code, ServiceCode::NotFound);
        assert_eq!(quota.usage("acme"), 0, "reservation refunded on error");
    }

    #[test]
    fn delete_credits_freed_bytes() {
        let quota = Arc::new(TenantQuota::new().budget("acme", 1000));
        let p = PipelineExecutor::new(
            vec![quota.clone()],
            Arc::new(|r: RequestEnvelope| {
                let resp = match r.operation {
                    Operation::DeleteFile { .. } => {
                        ResponseEnvelope::ok(r.request_id).with_metadata(FREED_BYTES_KEY, "700")
                    }
                    _ => ResponseEnvelope::ok(r.request_id),
                };
                Ok(resp)
            }),
        );
        assert!(p.execute(backup(1, 900)).is_ok());
        assert_eq!(quota.usage("acme"), 900);
        let del = p.execute(RequestEnvelope::new(
            2,
            "acme",
            Operation::DeleteFile { file_id: 1 },
        ));
        assert!(del.is_ok());
        assert_eq!(quota.usage("acme"), 200, "freed bytes returned to budget");
        assert!(p.execute(backup(3, 700)).is_ok(), "room again after delete");
    }

    #[test]
    fn replayed_delete_response_is_credited_exactly_once() {
        // Regression: a retried envelope replays the same request id and the
        // backend reports the same freed_bytes; the budget used to be
        // credited on every pass, double-counting the freed space.
        let quota = Arc::new(TenantQuota::new().budget("acme", 1000));
        let p = PipelineExecutor::new(
            vec![quota.clone()],
            Arc::new(|r: RequestEnvelope| {
                let resp = match r.operation {
                    Operation::DeleteFile { .. } => {
                        ResponseEnvelope::ok(r.request_id).with_metadata(FREED_BYTES_KEY, "700")
                    }
                    _ => ResponseEnvelope::ok(r.request_id),
                };
                Ok(resp)
            }),
        );
        assert!(p.execute(backup(1, 900)).is_ok());
        assert_eq!(quota.usage("acme"), 900);
        let delete = RequestEnvelope::new(2, "acme", Operation::DeleteFile { file_id: 1 });
        assert!(p.execute(delete.clone()).is_ok());
        assert_eq!(quota.usage("acme"), 200, "first delete credits 700");
        // The transport timed out and replays the very same envelope.
        assert!(p.execute(delete).is_ok());
        assert_eq!(
            quota.usage("acme"),
            200,
            "replaying the delete response must not credit freed_bytes again"
        );
        // A *different* delete request id still credits normally.
        let other = RequestEnvelope::new(3, "acme", Operation::DeleteFile { file_id: 9 });
        assert!(p.execute(other).is_ok());
        assert_eq!(quota.usage("acme"), 0, "fresh request id credits again");
    }

    #[test]
    fn credit_ledger_is_bounded_and_forgets_oldest_first() {
        let mut ledger = CreditLedger::default();
        for id in 0..(CREDIT_LEDGER_CAPACITY as u64 + 1) {
            assert!(ledger.record("t", id), "fresh ids always record");
        }
        assert_eq!(ledger.order.len(), CREDIT_LEDGER_CAPACITY);
        assert!(
            ledger.record("t", 0),
            "entry 0 was evicted by the rollover, so it records as fresh"
        );
        assert!(!ledger.record("t", 1000), "recent ids are still remembered");
    }

    #[test]
    fn unbudgeted_tenants_are_unlimited_but_tracked() {
        let quota = Arc::new(TenantQuota::new());
        let p = PipelineExecutor::new(
            vec![quota.clone()],
            Arc::new(|r: RequestEnvelope| Ok(ResponseEnvelope::ok(r.request_id))),
        );
        assert!(p.execute(backup(1, 10_000_000)).is_ok());
        assert_eq!(quota.usage("acme"), 10_000_000);
        assert_eq!(quota.budget_of("acme"), None);
    }

    #[test]
    fn non_ingesting_ops_reserve_nothing() {
        let quota = Arc::new(TenantQuota::new().budget("acme", 10));
        let p = PipelineExecutor::new(
            vec![quota.clone()],
            Arc::new(|r: RequestEnvelope| Ok(ResponseEnvelope::ok(r.request_id))),
        );
        // A huge restore payload-to-be doesn't touch the budget.
        let resp = p.execute(RequestEnvelope::new(
            1,
            "acme",
            Operation::Restore { file_id: 7 },
        ));
        assert!(resp.is_ok());
        assert_eq!(quota.usage("acme"), 0);
    }
}
