//! Figure 4(a): chunking and fingerprinting throughput at the backup client.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sigma_chunking::{CdcChunker, Chunker};
use sigma_hashkit::{Digest, Md5, Sha1};
use sigma_simulation::experiments::fig4a;
use sigma_workloads::payload::random_bytes;

fn report() {
    sigma_bench::banner(
        "Figure 4(a)",
        "parallel chunking and fingerprinting throughput vs. number of data streams",
    );
    let rows = fig4a::run(&fig4a::Fig4aParams {
        bytes_per_stream: 8 << 20,
        stream_counts: vec![1, 2, 4, 8, 16],
    });
    sigma_bench::print_table("aggregate MB/s per operation", &fig4a::render(&rows));
}

fn bench_client_ops(c: &mut Criterion) {
    report();
    let buffer = random_bytes(1 << 20, 0x4a);
    let mut group = c.benchmark_group("fig4a");
    group.throughput(Throughput::Bytes(buffer.len() as u64));
    group.bench_function("sha1_fingerprint_1MiB_in_4K_chunks", |b| {
        b.iter(|| {
            for chunk in buffer.chunks(4096) {
                std::hint::black_box(Sha1::fingerprint(chunk));
            }
        })
    });
    group.bench_function("md5_fingerprint_1MiB_in_4K_chunks", |b| {
        b.iter(|| {
            for chunk in buffer.chunks(4096) {
                std::hint::black_box(Md5::fingerprint(chunk));
            }
        })
    });
    let chunker = CdcChunker::with_average_4k();
    group.bench_function("cdc_chunking_1MiB", |b| {
        b.iter(|| std::hint::black_box(chunker.chunk_boundaries(&buffer)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_client_ops
}
criterion_main!(benches);
