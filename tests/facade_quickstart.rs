//! Workspace smoke test: the façade's quick-start path must keep working
//! exactly as documented in `src/lib.rs` — back up through a multi-node
//! cluster, flush open containers, and restore bit-exactly.

use sigma_dedupe::prelude::*;
use std::sync::Arc;

#[test]
fn quickstart_backup_flush_restore_round_trip() {
    let cluster = Arc::new(DedupCluster::with_similarity_router(
        4,
        SigmaConfig::default(),
    ));
    let client = BackupClient::new(cluster.clone(), 0);

    // Two generations of mostly identical data, as in the crate-level example.
    let generation_1 = vec![42u8; 4 << 20];
    let generation_2 = generation_1.clone();
    let report_1 = client
        .backup_bytes("vm-image, monday", &generation_1)
        .unwrap();
    let report_2 = client
        .backup_bytes("vm-image, tuesday", &generation_2)
        .unwrap();
    assert_eq!(report_1.logical_bytes, generation_1.len() as u64);
    assert!(
        report_2.transferred_bytes < report_1.transferred_bytes / 10,
        "second generation should deduplicate almost entirely: {} vs {}",
        report_2.transferred_bytes,
        report_1.transferred_bytes
    );

    // Flush open containers, then both generations restore bit-exactly.
    cluster.flush();
    assert_eq!(
        cluster.restore_file(report_1.file_id).unwrap(),
        generation_1
    );
    assert_eq!(
        cluster.restore_file(report_2.file_id).unwrap(),
        generation_2
    );

    // The cluster accounted both backups logically but stored the data once.
    let stats = cluster.stats();
    assert_eq!(stats.logical_bytes, 2 * generation_1.len() as u64);
    assert!(stats.physical_bytes <= generation_1.len() as u64);
}
