//! Figure 4(a): chunking and fingerprinting throughput at the backup client.
//!
//! The paper measures the throughput of Rabin-based CDC chunking, SHA-1
//! fingerprinting and MD5 fingerprinting as a function of the number of concurrent
//! data streams on a 4-core/8-thread client.  Throughput scales with the stream
//! count up to the hardware parallelism, and MD5 is roughly twice as fast as SHA-1
//! (which is why the paper picks SHA-1 only for its collision resistance, not for
//! speed).

use serde::{Deserialize, Serialize};
use sigma_chunking::{CdcChunker, Chunker};
use sigma_hashkit::{Digest, Md5, Sha1};
use sigma_metrics::report::TextTable;
use sigma_metrics::Stopwatch;
use sigma_workloads::payload::random_bytes;

/// The client-side operations measured by Figure 4(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClientOp {
    /// Rabin-based content-defined chunking (4 KB average).
    CdcChunking,
    /// SHA-1 chunk fingerprinting.
    Sha1Fingerprinting,
    /// MD5 chunk fingerprinting.
    Md5Fingerprinting,
}

impl std::fmt::Display for ClientOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ClientOp::CdcChunking => "CDC chunking",
            ClientOp::Sha1Fingerprinting => "SHA-1 fingerprinting",
            ClientOp::Md5Fingerprinting => "MD5 fingerprinting",
        };
        f.write_str(s)
    }
}

/// One measured point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4aRow {
    /// The operation measured.
    pub op: String,
    /// Number of concurrent data streams (threads).
    pub streams: usize,
    /// Aggregate throughput in MB/s.
    pub mb_per_sec: f64,
}

/// Parameters of the experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4aParams {
    /// Bytes processed per stream.
    pub bytes_per_stream: usize,
    /// Stream counts to evaluate.
    pub stream_counts: Vec<usize>,
}

impl Default for Fig4aParams {
    fn default() -> Self {
        Fig4aParams {
            bytes_per_stream: 16 << 20,
            stream_counts: vec![1, 2, 4, 8, 16],
        }
    }
}

/// Runs the experiment, measuring aggregate MB/s for each operation × stream count.
pub fn run(params: &Fig4aParams) -> Vec<Fig4aRow> {
    let mut rows = Vec::new();
    for &op in &[
        ClientOp::CdcChunking,
        ClientOp::Sha1Fingerprinting,
        ClientOp::Md5Fingerprinting,
    ] {
        for &streams in &params.stream_counts {
            let mb = measure(op, streams, params.bytes_per_stream);
            rows.push(Fig4aRow {
                op: op.to_string(),
                streams,
                mb_per_sec: mb,
            });
        }
    }
    rows
}

/// Measures one operation with `streams` threads, each over its own buffer.
pub fn measure(op: ClientOp, streams: usize, bytes_per_stream: usize) -> f64 {
    let buffers: Vec<Vec<u8>> = (0..streams)
        .map(|s| random_bytes(bytes_per_stream, 0x4a + s as u64))
        .collect();
    let total_bytes = (streams * bytes_per_stream) as u64;
    let stopwatch = Stopwatch::start();
    std::thread::scope(|scope| {
        for buffer in &buffers {
            scope.spawn(move || match op {
                ClientOp::CdcChunking => {
                    let chunker = CdcChunker::with_average_4k();
                    std::hint::black_box(chunker.chunk_boundaries(buffer).len());
                }
                ClientOp::Sha1Fingerprinting => {
                    for chunk in buffer.chunks(4096) {
                        std::hint::black_box(Sha1::fingerprint(chunk));
                    }
                }
                ClientOp::Md5Fingerprinting => {
                    for chunk in buffer.chunks(4096) {
                        std::hint::black_box(Md5::fingerprint(chunk));
                    }
                }
            });
        }
    });
    stopwatch.stop(total_bytes).mb_per_sec()
}

/// Renders the figure as a text table (streams as rows, operations as columns).
pub fn render(rows: &[Fig4aRow]) -> String {
    let mut streams: Vec<usize> = rows.iter().map(|r| r.streams).collect();
    streams.sort_unstable();
    streams.dedup();
    let mut ops: Vec<String> = rows.iter().map(|r| r.op.clone()).collect();
    ops.dedup();

    let mut headers = vec!["streams".to_string()];
    headers.extend(ops.iter().cloned());
    let mut table = TextTable::new(headers.iter().map(|s| s.as_str()).collect());
    for s in streams {
        let mut cells = vec![s.to_string()];
        for op in &ops {
            let value = rows
                .iter()
                .find(|r| r.streams == s && &r.op == op)
                .map(|r| format!("{:.0} MB/s", r.mb_per_sec))
                .unwrap_or_default();
            cells.push(value);
        }
        table.add_row(cells);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Fig4aParams {
        Fig4aParams {
            bytes_per_stream: 1 << 20,
            stream_counts: vec![1, 2],
        }
    }

    #[test]
    fn produces_all_combinations() {
        let rows = run(&tiny_params());
        assert_eq!(rows.len(), 3 * 2);
        assert!(rows.iter().all(|r| r.mb_per_sec > 0.0));
    }

    #[test]
    fn single_stream_measurements_are_positive_for_every_operation() {
        // The paper's throughput ordering (MD5 > SHA-1 ≫ CDC on its OpenSSL-backed
        // prototype) is reported by the optimized `fig4a_client_throughput` bench and
        // discussed in EXPERIMENTS.md; with our self-contained implementations the
        // ordering depends on the optimization level and ISA, so the unit test only
        // checks that every operation produces a sound measurement.
        let bytes = 2 << 20;
        for op in [
            ClientOp::Sha1Fingerprinting,
            ClientOp::Md5Fingerprinting,
            ClientOp::CdcChunking,
        ] {
            let mb = measure(op, 1, bytes);
            assert!(mb > 0.0, "{} produced non-positive throughput", op);
        }
    }

    #[test]
    fn render_lists_stream_counts() {
        let rows = run(&tiny_params());
        let text = render(&rows);
        assert!(text.contains("streams"));
        assert!(text.contains("SHA-1"));
    }
}
