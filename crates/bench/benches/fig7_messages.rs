//! Figure 7: fingerprint-lookup message overhead vs. cluster size.

use criterion::{criterion_group, criterion_main, Criterion};
use sigma_baselines::StatefulRouter;
use sigma_core::{DataRouter, DedupNode, RoutingContext, SigmaConfig, SuperChunk};
use sigma_hashkit::{Digest, Sha1};
use sigma_simulation::experiments::fig7;
use sigma_workloads::Scale;
use std::sync::Arc;

fn report() {
    sigma_bench::banner(
        "Figure 7",
        "fingerprint-lookup messages vs. cluster size (system overhead)",
    );
    let rows = fig7::run(&fig7::Fig7Params {
        scale: Scale::Small,
        cluster_sizes: vec![1, 2, 4, 8, 16, 32, 64, 128],
        super_chunk_size: 1 << 20,
    });
    for dataset in ["Linux", "VM"] {
        sigma_bench::print_table(
            &format!("total fingerprint-lookup messages, {} workload", dataset),
            &fig7::render(dataset, &rows),
        );
    }
    println!(
        "overhead shape (sigma flat and within 1.3x of stateless, stateful grows linearly): {}",
        fig7::overhead_shape_holds(&rows, 1.3)
    );
}

fn bench_stateful_broadcast(c: &mut Criterion) {
    report();
    let config = SigmaConfig::default();
    let nodes: Vec<Arc<DedupNode>> = (0..128)
        .map(|i| Arc::new(DedupNode::new(i, &config)))
        .collect();
    let sc = SuperChunk::from_descriptors(
        0,
        (0..256u64)
            .map(|i| sigma_core::ChunkDescriptor::new(Sha1::fingerprint(&i.to_le_bytes()), 4096))
            .collect(),
    );
    let handprint = sc.handprint(8);
    let router = StatefulRouter::new();
    c.bench_function("fig7/stateful_broadcast_decision_128_nodes", |b| {
        b.iter(|| {
            router.route(&RoutingContext {
                super_chunk: &sc,
                handprint: &handprint,
                file_id: None,
                nodes: &nodes,
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stateful_broadcast
}
criterion_main!(benches);
