//! Configuration of the Σ-Dedupe framework.

use crate::SigmaError;
use serde::{Deserialize, Serialize};
use sigma_chunking::ChunkerParams;
use sigma_hashkit::FingerprintAlgorithm;
use sigma_storage::{BackendKind, DiskParams};
use std::path::PathBuf;

/// Tunable parameters of backup clients, deduplication nodes and the cluster.
///
/// The defaults reproduce the configuration the paper converges on in Section 4:
/// 4 KB static chunking, SHA-1 fingerprints, 1 MB super-chunks, handprints of 8
/// representative fingerprints (a 1/32 sampling rate), 4 MB containers and a
/// 1024-way striped similarity index.
///
/// # Example
///
/// ```
/// use sigma_core::SigmaConfig;
///
/// let config = SigmaConfig::builder()
///     .super_chunk_size(2 << 20)
///     .handprint_size(16)
///     .build()
///     .unwrap();
/// assert_eq!(config.handprint_size, 16);
/// assert_eq!(config.sampling_rate_denominator(), (2 << 20) / 4096 / 16);
/// ```
///
/// # Construction
///
/// Prefer [`SigmaConfig::builder`]: its [`build`](SigmaConfigBuilder::build)
/// runs [`validate`](Self::validate), so an inconsistent combination is
/// rejected at construction time instead of surfacing as a confusing failure
/// deep inside ingest.  Mutating the public fields of a bare struct literal
/// (`SigmaConfig { super_chunk_size: 0, ..Default::default() }`) is
/// considered deprecated style: it compiles, but nothing validates the result
/// until a component happens to call `validate` itself.  The fields stay
/// `pub` for read access and for spread-syntax updates in tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SigmaConfig {
    /// Target super-chunk size in bytes (the routing granularity). Default: 1 MB.
    pub super_chunk_size: usize,
    /// Handprint size k: number of representative fingerprints per super-chunk.
    /// Default: 8.
    pub handprint_size: usize,
    /// Chunking algorithm and chunk-size parameters. Default: static 4 KB.
    pub chunker: ChunkerParams,
    /// Chunk fingerprinting hash. Default: SHA-1.
    pub fingerprint_algorithm: FingerprintAlgorithm,
    /// Container data-section capacity in bytes. Default: 4 MB.
    pub container_capacity: usize,
    /// Chunk-fingerprint cache capacity, in containers. Default: 512.
    pub cache_containers: usize,
    /// Number of lock stripes protecting the similarity index. Default: 1024.
    pub similarity_index_locks: usize,
    /// Whether a node may fall back to the traditional on-disk chunk index when a
    /// fingerprint misses in the cache (near-exact intra-node deduplication).
    /// Disabling it yields the similarity-index-only approximate mode of Fig. 5(b).
    /// Default: `true`.
    pub chunk_index_fallback: bool,
    /// Whether the similarity router discounts resemblance by relative storage usage
    /// (step 3 of Algorithm 1). Default: `true`.
    pub capacity_balancing: bool,
    /// Worker threads used by the parallel ingest pipeline and the threaded
    /// simulation runner.
    ///
    /// * `1` (the default) keeps every path serial and deterministic;
    /// * `0` means "one worker per available CPU core";
    /// * any other value requests that many workers, clamped to
    ///   [`MAX_PARALLELISM`] so a nonsensical value (such as `usize::MAX`, the
    ///   classic "negative count cast to unsigned" mistake) cannot ask the OS
    ///   for billions of threads.
    ///
    /// Always read the knob through [`SigmaConfig::effective_parallelism`], which
    /// performs both the `0` resolution and the clamp.
    pub parallelism: usize,
    /// Worker threads used by the restore pipeline's per-container fan-out,
    /// mirroring [`parallelism`](Self::parallelism) on the read side:
    ///
    /// * `1` (the default) runs the planned restore on the caller's thread —
    ///   still batched, cached and copy-eliminated, just not fanned out;
    /// * `0` means "one worker per available CPU core";
    /// * other values are clamped to [`MAX_PARALLELISM`].
    ///
    /// Read it through [`SigmaConfig::effective_restore_parallelism`].
    pub restore_parallelism: usize,
    /// Per-node byte budget for the container read cache serving restores on
    /// persistent backends ([`BackendKind::File`]): recently-read container
    /// data sections stay resident so repeat visits skip the medium entirely.
    /// `0` disables the cache.  Volatile backends never populate it (their data
    /// sections already live in RAM).  Default: 64 MB (sixteen default-sized
    /// containers).
    pub restore_cache_bytes: u64,
    /// Whether nodes keep a write-ahead journal so they can be crash-recovered
    /// (see [`DedupNode::recover`](crate::DedupNode::recover) and
    /// [`DedupCluster::restart_node`](crate::DedupCluster::restart_node)).
    /// Journaling keeps a durable copy of every sealed container, so it roughly
    /// doubles the memory footprint of a simulated node; experiments that never
    /// crash nodes leave it off.  Default: `false`.
    pub durability: bool,
    /// Parameters of each node's simulated disk.  Validated at build time so a
    /// zero/negative/non-finite value cannot poison simulated latencies with
    /// inf/NaN.  Default: [`DiskParams::default`] (the paper's testbed HDD).
    pub disk_params: DiskParams,
    /// Which storage backend each node's journal and container store live on.
    ///
    /// * [`BackendKind::SimDisk`] (the default): volatile buffers charged to the
    ///   node's simulated [`DiskModel`](sigma_storage::DiskModel) — exactly the
    ///   behaviour every figure reproduction and fault-injection test runs
    ///   against;
    /// * [`BackendKind::Memory`]: volatile buffers with no disk accounting;
    /// * [`BackendKind::File`]: one real directory per node under
    ///   [`storage_root`](Self::storage_root) (`node-<id>/` holding
    ///   `journal.wal` and `container-*.sc`), fsynced at the acknowledgement
    ///   points, surviving an actual process restart.  Requires `storage_root`
    ///   and [`durability`](Self::durability) — file persistence without a
    ///   write-ahead journal could not be recovered.
    pub storage_backend: BackendKind,
    /// Directory the file backend keeps per-node subdirectories under.
    /// Required (and only meaningful) when `storage_backend` is
    /// [`BackendKind::File`].  Default: `None`.
    pub storage_root: Option<PathBuf>,
    /// Garbage-collection liveness threshold in `[0, 1]`: during a sweep, a
    /// sealed container whose live fraction (bytes referenced by surviving
    /// recipes / total bytes) falls *below* this value is compacted — its live
    /// chunks rewritten into a fresh container before the old one drops.
    /// Containers with no live chunks are always dropped outright; `0.0`
    /// disables compaction (drop-only GC), `1.0` compacts any container with a
    /// single dead byte.  Default: `0.5`.
    pub gc_liveness_threshold: f64,
}

impl Default for SigmaConfig {
    fn default() -> Self {
        SigmaConfig {
            super_chunk_size: 1 << 20,
            handprint_size: 8,
            chunker: ChunkerParams::paper_default(),
            fingerprint_algorithm: FingerprintAlgorithm::Sha1,
            container_capacity: 4 << 20,
            cache_containers: 512,
            similarity_index_locks: 1024,
            chunk_index_fallback: true,
            capacity_balancing: true,
            parallelism: 1,
            restore_parallelism: 1,
            restore_cache_bytes: 64 << 20,
            durability: false,
            disk_params: DiskParams::default(),
            storage_backend: BackendKind::SimDisk,
            storage_root: None,
            gc_liveness_threshold: 0.5,
        }
    }
}

impl SigmaConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> SigmaConfigBuilder {
        SigmaConfigBuilder::default()
    }

    /// The handprint sampling-rate denominator: a handprint of k fingerprints over a
    /// super-chunk of `super_chunk_size / avg_chunk_size` chunks samples 1 out of
    /// this many chunk fingerprints (32 with the paper's defaults).
    pub fn sampling_rate_denominator(&self) -> usize {
        let chunks_per_super_chunk =
            (self.super_chunk_size / self.chunker.average_chunk_size()).max(1);
        (chunks_per_super_chunk / self.handprint_size.max(1)).max(1)
    }

    /// The resolved worker-thread count: `parallelism`, except that `0` resolves
    /// to the number of available CPU cores (at least 1) and explicit requests
    /// are clamped to [`MAX_PARALLELISM`] (guarding against values like
    /// `usize::MAX` that would otherwise try to spawn one thread per address).
    pub fn effective_parallelism(&self) -> usize {
        match self.parallelism {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n.min(MAX_PARALLELISM),
        }
    }

    /// The resolved restore worker count, with the same `0` resolution and
    /// [`MAX_PARALLELISM`] clamp as [`effective_parallelism`](Self::effective_parallelism).
    pub fn effective_restore_parallelism(&self) -> usize {
        match self.restore_parallelism {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n.min(MAX_PARALLELISM),
        }
    }

    /// Expected number of chunks per super-chunk.
    pub fn chunks_per_super_chunk(&self) -> usize {
        (self.super_chunk_size / self.chunker.average_chunk_size()).max(1)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), SigmaError> {
        if self.super_chunk_size == 0 {
            return Err(SigmaError::InvalidConfig(
                "super-chunk size must be non-zero".to_string(),
            ));
        }
        if self.handprint_size == 0 {
            return Err(SigmaError::InvalidConfig(
                "handprint size must be non-zero".to_string(),
            ));
        }
        if self.container_capacity == 0 {
            return Err(SigmaError::InvalidConfig(
                "container capacity must be non-zero".to_string(),
            ));
        }
        if self.cache_containers == 0 {
            return Err(SigmaError::InvalidConfig(
                "cache capacity must be non-zero".to_string(),
            ));
        }
        if self.similarity_index_locks == 0 {
            return Err(SigmaError::InvalidConfig(
                "similarity index lock count must be non-zero".to_string(),
            ));
        }
        if self.chunker.average_chunk_size() > self.super_chunk_size {
            return Err(SigmaError::InvalidConfig(format!(
                "average chunk size {} exceeds super-chunk size {}",
                self.chunker.average_chunk_size(),
                self.super_chunk_size
            )));
        }
        if self.chunker.average_chunk_size() > self.container_capacity {
            return Err(SigmaError::InvalidConfig(format!(
                "average chunk size {} exceeds container capacity {}",
                self.chunker.average_chunk_size(),
                self.container_capacity
            )));
        }
        if !self.gc_liveness_threshold.is_finite()
            || !(0.0..=1.0).contains(&self.gc_liveness_threshold)
        {
            return Err(SigmaError::InvalidConfig(format!(
                "gc_liveness_threshold = {} must be a finite fraction in [0, 1]",
                self.gc_liveness_threshold
            )));
        }
        if self.storage_backend == BackendKind::File {
            if self.storage_root.is_none() {
                return Err(SigmaError::InvalidConfig(
                    "storage_backend = file requires storage_root".to_string(),
                ));
            }
            if !self.durability {
                return Err(SigmaError::InvalidConfig(
                    "storage_backend = file requires durability: without a write-ahead \
                     journal the on-disk state could never be recovered"
                        .to_string(),
                ));
            }
        }
        self.chunker.validate().map_err(SigmaError::InvalidConfig)?;
        self.disk_params
            .validate()
            .map_err(|e| SigmaError::InvalidConfig(e.to_string()))?;
        Ok(())
    }

    /// The directory a node's file backend lives in: `storage_root/node-<id>`.
    ///
    /// `None` when the configured backend is not [`BackendKind::File`].
    pub fn node_storage_dir(&self, node_id: usize) -> Option<PathBuf> {
        if self.storage_backend != BackendKind::File {
            return None;
        }
        self.storage_root
            .as_ref()
            .map(|root| root.join(format!("node-{}", node_id)))
    }
}

/// Upper bound on the resolved worker-thread count.
///
/// Generous enough for any real machine this simulation targets, small enough
/// that an accidental `usize::MAX` (or any other negative-equivalent value) in
/// [`SigmaConfig::parallelism`] degrades to a large-but-sane pool instead of an
/// attempt to spawn billions of threads.
pub const MAX_PARALLELISM: usize = 256;

/// Builder for [`SigmaConfig`].
#[derive(Debug, Clone, Default)]
pub struct SigmaConfigBuilder {
    config: SigmaConfig,
}

impl SigmaConfigBuilder {
    /// Sets the super-chunk size in bytes.
    pub fn super_chunk_size(mut self, bytes: usize) -> Self {
        self.config.super_chunk_size = bytes;
        self
    }

    /// Sets the handprint size (number of representative fingerprints).
    pub fn handprint_size(mut self, k: usize) -> Self {
        self.config.handprint_size = k;
        self
    }

    /// Sets the chunking parameters.
    pub fn chunker(mut self, chunker: ChunkerParams) -> Self {
        self.config.chunker = chunker;
        self
    }

    /// Sets the fingerprinting hash algorithm.
    pub fn fingerprint_algorithm(mut self, algorithm: FingerprintAlgorithm) -> Self {
        self.config.fingerprint_algorithm = algorithm;
        self
    }

    /// Sets the container data-section capacity in bytes.
    pub fn container_capacity(mut self, bytes: usize) -> Self {
        self.config.container_capacity = bytes;
        self
    }

    /// Sets the chunk-fingerprint cache capacity in containers.
    pub fn cache_containers(mut self, containers: usize) -> Self {
        self.config.cache_containers = containers;
        self
    }

    /// Sets the number of lock stripes for the similarity index.
    pub fn similarity_index_locks(mut self, locks: usize) -> Self {
        self.config.similarity_index_locks = locks;
        self
    }

    /// Enables or disables the on-disk chunk-index fallback.
    pub fn chunk_index_fallback(mut self, enabled: bool) -> Self {
        self.config.chunk_index_fallback = enabled;
        self
    }

    /// Enables or disables capacity-aware load balancing in the similarity router.
    pub fn capacity_balancing(mut self, enabled: bool) -> Self {
        self.config.capacity_balancing = enabled;
        self
    }

    /// Sets the ingest worker-thread count (`0` = one per CPU core, `1` = serial;
    /// values above [`MAX_PARALLELISM`] are clamped at resolution time).
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.config.parallelism = threads;
        self
    }

    /// Sets the restore worker-thread count (`0` = one per CPU core, `1` =
    /// serial; values above [`MAX_PARALLELISM`] are clamped at resolution time).
    pub fn restore_parallelism(mut self, threads: usize) -> Self {
        self.config.restore_parallelism = threads;
        self
    }

    /// Sets the per-node container read-cache budget in bytes (`0` disables).
    pub fn restore_cache_bytes(mut self, bytes: u64) -> Self {
        self.config.restore_cache_bytes = bytes;
        self
    }

    /// Enables or disables the per-node write-ahead journal (crash recovery).
    pub fn durability(mut self, enabled: bool) -> Self {
        self.config.durability = enabled;
        self
    }

    /// Sets the simulated-disk parameters (validated by [`build`](Self::build)).
    pub fn disk_params(mut self, params: DiskParams) -> Self {
        self.config.disk_params = params;
        self
    }

    /// Sets the storage backend kind (validated by [`build`](Self::build):
    /// [`BackendKind::File`] requires a storage root and durability).
    pub fn storage_backend(mut self, kind: BackendKind) -> Self {
        self.config.storage_backend = kind;
        self
    }

    /// Sets the directory the file backend keeps per-node state under.
    pub fn storage_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.config.storage_root = Some(root.into());
        self
    }

    /// Convenience: selects the file backend rooted at `root`, enabling the
    /// durability (write-ahead journaling) it requires.
    pub fn file_storage(self, root: impl Into<PathBuf>) -> Self {
        self.storage_backend(BackendKind::File)
            .storage_root(root)
            .durability(true)
    }

    /// Sets the GC liveness threshold (fraction in `[0, 1]`; validated by
    /// [`build`](Self::build)).  Containers whose live fraction falls below it
    /// are compacted during a sweep.
    pub fn gc_liveness_threshold(mut self, threshold: f64) -> Self {
        self.config.gc_liveness_threshold = threshold;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::InvalidConfig`] if any parameter is inconsistent.
    pub fn build(self) -> Result<SigmaConfig, SigmaError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = SigmaConfig::default();
        assert_eq!(c.super_chunk_size, 1 << 20);
        assert_eq!(c.handprint_size, 8);
        assert_eq!(c.chunker.average_chunk_size(), 4096);
        assert_eq!(c.fingerprint_algorithm, FingerprintAlgorithm::Sha1);
        assert!(c.chunk_index_fallback);
        assert!(c.capacity_balancing);
        // 1 MB / 4 KB = 256 chunks; 256 / 8 = a 1-in-32 sampling rate.
        assert_eq!(c.chunks_per_super_chunk(), 256);
        assert_eq!(c.sampling_rate_denominator(), 32);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_sets_fields() {
        let c = SigmaConfig::builder()
            .super_chunk_size(512 * 1024)
            .handprint_size(4)
            .cache_containers(16)
            .similarity_index_locks(64)
            .chunk_index_fallback(false)
            .capacity_balancing(false)
            .build()
            .unwrap();
        assert_eq!(c.super_chunk_size, 512 * 1024);
        assert_eq!(c.handprint_size, 4);
        assert_eq!(c.cache_containers, 16);
        assert_eq!(c.similarity_index_locks, 64);
        assert!(!c.chunk_index_fallback);
        assert!(!c.capacity_balancing);
    }

    #[test]
    fn validation_rejects_inconsistent_configs() {
        assert!(SigmaConfig::builder().super_chunk_size(0).build().is_err());
        assert!(SigmaConfig::builder().handprint_size(0).build().is_err());
        assert!(SigmaConfig::builder()
            .container_capacity(0)
            .build()
            .is_err());
        assert!(SigmaConfig::builder().cache_containers(0).build().is_err());
        assert!(SigmaConfig::builder()
            .similarity_index_locks(0)
            .build()
            .is_err());
        // Chunk size larger than the super-chunk.
        assert!(SigmaConfig::builder()
            .super_chunk_size(1024)
            .chunker(sigma_chunking::ChunkerParams::fixed(4096))
            .build()
            .is_err());
    }

    #[test]
    fn parallelism_knob_resolves() {
        let c = SigmaConfig::default();
        assert_eq!(c.parallelism, 1, "serial by default");
        assert_eq!(c.effective_parallelism(), 1);
        let auto = SigmaConfig::builder().parallelism(0).build().unwrap();
        assert!(auto.effective_parallelism() >= 1, "0 resolves to CPU count");
        let eight = SigmaConfig::builder().parallelism(8).build().unwrap();
        assert_eq!(eight.effective_parallelism(), 8);
    }

    #[test]
    fn restore_knobs_resolve_and_default() {
        let c = SigmaConfig::default();
        assert_eq!(c.restore_parallelism, 1, "serial restore by default");
        assert_eq!(c.effective_restore_parallelism(), 1);
        assert_eq!(c.restore_cache_bytes, 64 << 20);
        let auto = SigmaConfig::builder()
            .restore_parallelism(0)
            .build()
            .unwrap();
        assert!(auto.effective_restore_parallelism() >= 1);
        let four = SigmaConfig::builder()
            .restore_parallelism(4)
            .restore_cache_bytes(1 << 20)
            .build()
            .unwrap();
        assert_eq!(four.effective_restore_parallelism(), 4);
        assert_eq!(four.restore_cache_bytes, 1 << 20);
        let absurd = SigmaConfig::builder()
            .restore_parallelism(usize::MAX)
            .build()
            .unwrap();
        assert_eq!(absurd.effective_restore_parallelism(), MAX_PARALLELISM);
        let uncached = SigmaConfig::builder().restore_cache_bytes(0).build();
        assert_eq!(uncached.unwrap().restore_cache_bytes, 0, "0 = disabled");
    }

    #[test]
    fn absurd_parallelism_is_clamped() {
        // usize::MAX is what a negative thread count becomes after an unsigned
        // cast; it must degrade to the cap, not to an OS-melting thread storm.
        let absurd = SigmaConfig::builder()
            .parallelism(usize::MAX)
            .build()
            .unwrap();
        assert_eq!(absurd.effective_parallelism(), MAX_PARALLELISM);
        let at_cap = SigmaConfig::builder()
            .parallelism(MAX_PARALLELISM)
            .build()
            .unwrap();
        assert_eq!(at_cap.effective_parallelism(), MAX_PARALLELISM);
    }

    #[test]
    fn disk_params_are_validated_at_build_time() {
        for bad in [0.0, -8000.0, f64::NAN, f64::INFINITY] {
            let err = SigmaConfig::builder()
                .disk_params(DiskParams {
                    random_io_us: bad,
                    ..DiskParams::default()
                })
                .build()
                .unwrap_err();
            assert!(
                matches!(&err, SigmaError::InvalidConfig(msg) if msg.contains("random_io_us")),
                "expected InvalidConfig naming the field, got {:?}",
                err
            );
            assert!(SigmaConfig::builder()
                .disk_params(DiskParams {
                    sequential_mb_per_s: bad,
                    ..DiskParams::default()
                })
                .build()
                .is_err());
        }
        // A custom-but-sane disk is accepted and carried through.
        let fast = SigmaConfig::builder()
            .disk_params(DiskParams {
                random_io_us: 100.0,
                sequential_mb_per_s: 500.0,
            })
            .build()
            .unwrap();
        assert_eq!(fast.disk_params.random_io_us, 100.0);
        assert!(!SigmaConfig::default().durability, "journaling is opt-in");
    }

    #[test]
    fn chunker_orderings_are_validated_at_build_time() {
        use sigma_chunking::ChunkerParams;
        // Zero sizes and broken min ≤ avg ≤ max orderings are rejected with an
        // InvalidConfig naming the offending field, mirroring DiskParams.
        for (bad, field) in [
            (ChunkerParams::fixed(0), "chunk_size"),
            (ChunkerParams::cdc(0, 4096, 16384), "min_size"),
            (ChunkerParams::cdc(1024, 0, 16384), "avg_size"),
            (ChunkerParams::cdc(1024, 4096, 0), "max_size"),
            (ChunkerParams::cdc(8192, 4096, 16384), "min_size"),
            (ChunkerParams::cdc(1024, 32768, 16384), "avg_size"),
        ] {
            let err = SigmaConfig::builder().chunker(bad).build().unwrap_err();
            assert!(
                matches!(&err, SigmaError::InvalidConfig(msg) if msg.contains(field)),
                "expected InvalidConfig naming {}, got {:?}",
                field,
                err
            );
        }
        // Boundary values are legal: min == avg == max.
        assert!(SigmaConfig::builder()
            .chunker(ChunkerParams::cdc(4096, 4096, 4096))
            .build()
            .is_ok());
    }

    #[test]
    fn gc_liveness_threshold_is_validated_at_build_time() {
        for bad in [-0.1, 1.1, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = SigmaConfig::builder()
                .gc_liveness_threshold(bad)
                .build()
                .unwrap_err();
            assert!(
                matches!(&err, SigmaError::InvalidConfig(msg) if msg.contains("gc_liveness_threshold")),
                "expected InvalidConfig naming the field, got {:?}",
                err
            );
        }
        // The boundary values themselves are legal.
        for ok in [0.0, 0.5, 1.0] {
            let c = SigmaConfig::builder()
                .gc_liveness_threshold(ok)
                .build()
                .unwrap();
            assert_eq!(c.gc_liveness_threshold, ok);
        }
        assert_eq!(SigmaConfig::default().gc_liveness_threshold, 0.5);
    }

    #[test]
    fn file_backend_requires_root_and_durability() {
        assert_eq!(
            SigmaConfig::default().storage_backend,
            BackendKind::SimDisk,
            "the simulated disk stays the default"
        );
        assert_eq!(SigmaConfig::default().storage_root, None);
        // File backend without a root is rejected.
        let err = SigmaConfig::builder()
            .storage_backend(BackendKind::File)
            .durability(true)
            .build()
            .unwrap_err();
        assert!(matches!(&err, SigmaError::InvalidConfig(msg) if msg.contains("storage_root")));
        // File backend without durability is rejected (nothing could recover it).
        let err = SigmaConfig::builder()
            .storage_backend(BackendKind::File)
            .storage_root("/tmp/sigma-test")
            .build()
            .unwrap_err();
        assert!(matches!(&err, SigmaError::InvalidConfig(msg) if msg.contains("durability")));
        // The convenience setter satisfies both constraints at once.
        let c = SigmaConfig::builder()
            .file_storage("/tmp/sigma-test")
            .build()
            .unwrap();
        assert_eq!(c.storage_backend, BackendKind::File);
        assert!(c.durability);
        assert_eq!(
            c.node_storage_dir(3),
            Some(PathBuf::from("/tmp/sigma-test/node-3"))
        );
        // Memory backend is accepted without either.
        let mem = SigmaConfig::builder()
            .storage_backend(BackendKind::Memory)
            .build()
            .unwrap();
        assert_eq!(mem.node_storage_dir(0), None);
    }

    #[test]
    fn sampling_rate_never_zero() {
        let c = SigmaConfig::builder()
            .super_chunk_size(4096)
            .handprint_size(64)
            .build()
            .unwrap();
        assert!(c.sampling_rate_denominator() >= 1);
    }
}
