//! Straightforward reference implementations of the optimized hot loops.
//!
//! [`ReferenceSha1`] is the textbook SHA-1 compression function: an expanded
//! 80-word message schedule and a single round loop that selects its boolean
//! function and constant by matching on the round index.  The optimized
//! [`Sha1`](crate::Sha1) must produce bit-identical digests; the equivalence
//! proptests in this module (and the FIPS vectors) pin that down.  Benchmarks
//! also use it as the measured-in-the-same-run "before" when reporting the
//! speedup of the unrolled implementation.

use crate::{Digest, Fingerprint};

const BLOCK_LEN: usize = 64;

/// Reference (un-optimized) streaming SHA-1 hasher.
///
/// # Example
///
/// ```
/// use sigma_hashkit::{reference::ReferenceSha1, Digest, Sha1};
/// assert_eq!(ReferenceSha1::digest(b"abc"), Sha1::digest(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct ReferenceSha1 {
    state: [u32; 5],
    buffer: [u8; BLOCK_LEN],
    buffer_len: usize,
    total_len: u64,
}

impl Default for ReferenceSha1 {
    fn default() -> Self {
        ReferenceSha1 {
            state: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            buffer: [0u8; BLOCK_LEN],
            buffer_len: 0,
            total_len: 0,
        }
    }
}

impl ReferenceSha1 {
    /// One-shot fingerprint helper mirroring
    /// [`FingerprintAlgorithm::fingerprint`](crate::FingerprintAlgorithm::fingerprint).
    pub fn fingerprint_bytes(data: &[u8]) -> Fingerprint {
        <Self as Digest>::fingerprint(data)
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 80];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;

        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Digest for ReferenceSha1 {
    const OUTPUT_LEN: usize = 20;
    const NAME: &'static str = "sha1-reference";

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);

        if self.buffer_len > 0 {
            let need = BLOCK_LEN - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }

        while data.len() >= BLOCK_LEN {
            let block: [u8; BLOCK_LEN] = data[..BLOCK_LEN].try_into().unwrap();
            self.compress(&block);
            data = &data[BLOCK_LEN..];
        }

        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);

        let mut padding = Vec::with_capacity(2 * BLOCK_LEN);
        padding.push(0x80u8);
        let pad_to = {
            let rem = (self.buffer_len + 1) % BLOCK_LEN;
            if rem <= 56 {
                56 - rem
            } else {
                BLOCK_LEN + 56 - rem
            }
        };
        padding.extend(std::iter::repeat(0u8).take(pad_to));
        padding.extend_from_slice(&bit_len.to_be_bytes());
        self.update(&padding);
        debug_assert_eq!(self.buffer_len, 0);

        let mut out = Vec::with_capacity(Self::OUTPUT_LEN);
        for word in self.state {
            out.extend_from_slice(&word.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sha1;
    use proptest::prelude::*;

    #[test]
    fn fips_vectors() {
        let hex = |bytes: &[u8]| -> String { bytes.iter().map(|b| format!("{:02x}", b)).collect() };
        assert_eq!(
            hex(&ReferenceSha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&ReferenceSha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    proptest! {
        #[test]
        fn optimized_sha1_matches_reference(
            data in proptest::collection::vec(any::<u8>(), 0..4096),
        ) {
            prop_assert_eq!(Sha1::digest(&data), ReferenceSha1::digest(&data));
        }

        #[test]
        fn optimized_sha1_matches_reference_streaming(
            data in proptest::collection::vec(any::<u8>(), 0..2048),
            split in 0usize..2048,
        ) {
            let split = split.min(data.len());
            let mut opt = Sha1::new();
            let mut reference = ReferenceSha1::new();
            opt.update(&data[..split]);
            opt.update(&data[split..]);
            reference.update(&data[..split]);
            reference.update(&data[split..]);
            prop_assert_eq!(opt.finalize(), reference.finalize());
        }
    }
}
