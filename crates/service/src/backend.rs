//! The [`BackupService`] backend: the innermost handler that owns the
//! [`DedupCluster`] and executes envelope operations against it.

use crate::middleware::ServiceResult;
use crate::pipeline::Backend;
use crate::{Operation, RequestEnvelope, ResponseEnvelope};
use parking_lot::Mutex;
use sigma_core::{BackupClient, DedupCluster, SigmaError};
use sigma_metrics::{MetricsRegistry, RestoreCounters, RestoreSnapshot, TenantStatsReport};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Response-metadata key: the file ID a backup assigned (use it to restore).
pub const FILE_ID_KEY: &str = "file_id";
/// Response-metadata key: the backup session the file was registered under.
pub const SESSION_ID_KEY: &str = "session_id";
/// Response-metadata key: logical bytes of the operation's subject.
pub const LOGICAL_BYTES_KEY: &str = "logical_bytes";
/// Response-metadata key: bytes a backup actually had to transfer (unique).
pub const TRANSFERRED_BYTES_KEY: &str = "transferred_bytes";
/// Response-metadata key: chunks the backup was partitioned into.
pub const CHUNKS_KEY: &str = "chunks";
/// Response-metadata key: chunks found to be duplicates cluster-wide.
pub const DUPLICATE_CHUNKS_KEY: &str = "duplicate_chunks";
/// Response-metadata key: logical bytes a delete released (the quota
/// middleware credits this against the tenant's budget).
pub const FREED_BYTES_KEY: &str = "freed_bytes";
/// Response-metadata key: physical bytes a garbage collection reclaimed.
pub const BYTES_RECLAIMED_KEY: &str = "bytes_reclaimed";
/// Response-metadata key: chunk payloads a restore decoded.
pub const CHUNKS_READ_KEY: &str = "chunks_read";
/// Response-metadata key: `(node, container)` groups a restore fanned out to.
pub const CONTAINERS_OPENED_KEY: &str = "containers_opened";
/// Response-metadata key: container-read-cache hits during a restore.
pub const CACHE_HITS_KEY: &str = "cache_hits";
/// Response-metadata key: container-read-cache misses during a restore.
pub const CACHE_MISSES_KEY: &str = "cache_misses";
/// Response-metadata key: bytes a restore actually read from storage backends.
pub const BACKEND_BYTES_READ_KEY: &str = "backend_bytes_read";
/// Response-metadata key: a restore's backend-bytes-read over logical-bytes
/// ratio (1.0 = seek-free, below 1.0 = the read cache absorbed repeats).
pub const READ_AMPLIFICATION_KEY: &str = "read_amplification";
/// Response-metadata prefix: the calling tenant's [`TenantStatsReport`]
/// fields on a `Stats` response (`tenant_logical_bytes`,
/// `tenant_live_logical_bytes`, `tenant_files`, …).
pub const TENANT_STATS_PREFIX: &str = "tenant_";

/// Base for service-allocated stream IDs, far above the IDs hand-picked by
/// library users and simulations sharing the cluster.
const STREAM_ID_BASE: u64 = 1 << 32;

/// One tenant's backup session in one generation.
#[derive(Debug)]
struct SessionEntry {
    tenant: String,
    generation: u64,
    files: Vec<u64>,
}

/// Who may restore or delete a file.
#[derive(Debug)]
struct FileOwner {
    tenant: String,
    session_id: u64,
}

#[derive(Default)]
struct Inner {
    /// One lazily-created client (= one open session) per tenant × generation.
    clients: HashMap<(String, u64), Arc<BackupClient>>,
    sessions: HashMap<u64, SessionEntry>,
    owners: HashMap<u64, FileOwner>,
    next_stream: u64,
}

/// The production [`Backend`]: executes [`Operation`]s against a
/// [`DedupCluster`] it owns, keyed by tenant.
///
/// Ownership is enforced at the service boundary: a tenant can only restore
/// or delete files and sessions it created *through this service*, and a
/// cross-tenant (or unknown) ID is answered with the same `NotFound` as a
/// genuinely absent one, so IDs cannot be probed across tenants.
/// `CollectGarbage` is cluster-scoped and available to any authenticated
/// tenant; `Stats` reports cluster-wide figures *plus* the calling tenant's
/// own [`TenantStatsReport`].
///
/// Every session the service opens is tenant-tagged in the cluster's
/// director, so per-tenant *live* logical bytes can be audited from the
/// cluster side independently of this layer's cumulative counters — the
/// tenant-isolation invariant checked by the simulation and property tests.
pub struct BackupService {
    cluster: Arc<DedupCluster>,
    inner: Mutex<Inner>,
    metrics: Arc<MetricsRegistry>,
    restore_counters: Arc<RestoreCounters>,
}

impl std::fmt::Debug for BackupService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("BackupService")
            .field("sessions", &inner.sessions.len())
            .field("files", &inner.owners.len())
            .finish_non_exhaustive()
    }
}

impl BackupService {
    /// Creates a service owning `cluster`.
    pub fn new(cluster: Arc<DedupCluster>) -> Self {
        BackupService {
            cluster,
            inner: Mutex::new(Inner::default()),
            metrics: Arc::new(MetricsRegistry::new()),
            restore_counters: Arc::new(RestoreCounters::new()),
        }
    }

    /// Aggregate restore-path counters (chunks read, container visits, cache
    /// hit rates, read amplification) across every tenant's restores.
    pub fn restore_counters(&self) -> &Arc<RestoreCounters> {
        &self.restore_counters
    }

    /// The cluster behind the service (stats, direct experimentation).
    pub fn cluster(&self) -> &Arc<DedupCluster> {
        &self.cluster
    }

    /// The registry holding this service's per-tenant counters.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// One tenant's accounting report: cumulative counters plus the current
    /// live state (surviving files and their logical bytes).
    pub fn tenant_stats_for(&self, tenant: &str) -> TenantStatsReport {
        let mut report = self.metrics.tenant(tenant).report(tenant);
        report.live_logical_bytes = self
            .cluster
            .tenant_logical_bytes()
            .get(tenant)
            .copied()
            .unwrap_or(0);
        report.files = {
            let inner = self.inner.lock();
            inner.owners.values().filter(|o| o.tenant == tenant).count() as u64
        };
        report
    }

    /// Reports for every tenant that has sent at least one request, keyed by
    /// tenant name.
    pub fn tenant_stats(&self) -> BTreeMap<String, TenantStatsReport> {
        self.metrics
            .tenant_reports()
            .into_keys()
            .map(|tenant| {
                let report = self.tenant_stats_for(&tenant);
                (tenant, report)
            })
            .collect()
    }

    /// The client for `(tenant, generation)`, created (with a fresh session)
    /// on first use.
    fn client_for(&self, tenant: &str, generation: u64) -> Arc<BackupClient> {
        let mut inner = self.inner.lock();
        let key = (tenant.to_string(), generation);
        if let Some(client) = inner.clients.get(&key) {
            return client.clone();
        }
        let stream_id = STREAM_ID_BASE + inner.next_stream;
        inner.next_stream += 1;
        let client = Arc::new(BackupClient::with_tenant(
            self.cluster.clone(),
            stream_id,
            generation,
            tenant,
        ));
        inner.sessions.insert(
            client.session_id(),
            SessionEntry {
                tenant: tenant.to_string(),
                generation,
                files: Vec::new(),
            },
        );
        inner.clients.insert(key, client.clone());
        client
    }

    fn backup(&self, req: &RequestEnvelope, file_name: &str, generation: u64) -> ServiceResult {
        let client = self.client_for(&req.tenant, generation);
        let report = client.backup_bytes(file_name, &req.payload)?;
        let mut inner = self.inner.lock();
        inner.owners.insert(
            report.file_id,
            FileOwner {
                tenant: req.tenant.clone(),
                session_id: client.session_id(),
            },
        );
        if let Some(session) = inner.sessions.get_mut(&client.session_id()) {
            session.files.push(report.file_id);
        }
        drop(inner);
        self.metrics
            .tenant(&req.tenant)
            .record_ingest(report.logical_bytes, report.transferred_bytes);
        Ok(ResponseEnvelope::ok(req.request_id)
            .with_metadata(FILE_ID_KEY, report.file_id.to_string())
            .with_metadata(SESSION_ID_KEY, client.session_id().to_string())
            .with_metadata(LOGICAL_BYTES_KEY, report.logical_bytes.to_string())
            .with_metadata(TRANSFERRED_BYTES_KEY, report.transferred_bytes.to_string())
            .with_metadata(CHUNKS_KEY, report.chunks.to_string())
            .with_metadata(DUPLICATE_CHUNKS_KEY, report.duplicate_chunks.to_string()))
    }

    /// Checks that `file_id` exists and belongs to `tenant`; answers
    /// cross-tenant probes with the same error as absent files.
    fn authorize_file(&self, tenant: &str, file_id: u64) -> Result<(), SigmaError> {
        let inner = self.inner.lock();
        match inner.owners.get(&file_id) {
            Some(owner) if owner.tenant == tenant => Ok(()),
            _ => Err(SigmaError::FileNotFound(file_id)),
        }
    }

    fn restore(&self, req: &RequestEnvelope, file_id: u64) -> ServiceResult {
        self.authorize_file(&req.tenant, file_id)?;
        let (data, report) = self.cluster.restore_file_with_report(file_id)?;
        self.metrics
            .tenant(&req.tenant)
            .record_restored(data.len() as u64);
        self.restore_counters.record(&RestoreSnapshot {
            restores: 1,
            chunks_read: report.chunks_read,
            containers_opened: report.containers_read,
            cache_hits: report.cache_hits,
            cache_misses: report.cache_misses,
            backend_bytes_read: report.backend_bytes_read,
            logical_bytes_restored: report.logical_bytes,
        });
        Ok(ResponseEnvelope::ok(req.request_id)
            .with_metadata(LOGICAL_BYTES_KEY, data.len().to_string())
            .with_metadata(CHUNKS_READ_KEY, report.chunks_read.to_string())
            .with_metadata(CONTAINERS_OPENED_KEY, report.containers_read.to_string())
            .with_metadata(CACHE_HITS_KEY, report.cache_hits.to_string())
            .with_metadata(CACHE_MISSES_KEY, report.cache_misses.to_string())
            .with_metadata(
                BACKEND_BYTES_READ_KEY,
                report.backend_bytes_read.to_string(),
            )
            .with_metadata(
                READ_AMPLIFICATION_KEY,
                format!("{:.4}", report.read_amplification()),
            )
            .with_payload(data))
    }

    fn delete_file(&self, req: &RequestEnvelope, file_id: u64) -> ServiceResult {
        self.authorize_file(&req.tenant, file_id)?;
        let freed = self.cluster.delete_file(file_id)?;
        let mut inner = self.inner.lock();
        if let Some(owner) = inner.owners.remove(&file_id) {
            if let Some(session) = inner.sessions.get_mut(&owner.session_id) {
                session.files.retain(|&f| f != file_id);
            }
        }
        drop(inner);
        self.metrics.tenant(&req.tenant).record_freed(freed);
        Ok(ResponseEnvelope::ok(req.request_id).with_metadata(FREED_BYTES_KEY, freed.to_string()))
    }

    /// Deletes one owned session from the cluster and the service maps.
    /// Caller must have verified ownership.
    fn delete_session(&self, session_id: u64) -> Result<u64, SigmaError> {
        let freed = self.cluster.delete_backup(session_id)?;
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.sessions.remove(&session_id) {
            for file in &entry.files {
                inner.owners.remove(file);
            }
            inner.clients.remove(&(entry.tenant, entry.generation));
        }
        Ok(freed)
    }

    fn delete_backup(&self, req: &RequestEnvelope, session_id: u64) -> ServiceResult {
        let owned = {
            let inner = self.inner.lock();
            matches!(inner.sessions.get(&session_id), Some(s) if s.tenant == req.tenant)
        };
        if !owned {
            return Err(SigmaError::BackupNotFound(session_id));
        }
        let freed = self.delete_session(session_id)?;
        self.metrics.tenant(&req.tenant).record_freed(freed);
        Ok(ResponseEnvelope::ok(req.request_id).with_metadata(FREED_BYTES_KEY, freed.to_string()))
    }

    fn delete_generation(&self, req: &RequestEnvelope, generation: u64) -> ServiceResult {
        // Only the *tenant's* sessions in this generation are expired — the
        // generation is a retention unit per tenant at this layer, even
        // though the cluster could expire it globally.
        let victims: Vec<u64> = {
            let inner = self.inner.lock();
            inner
                .sessions
                .iter()
                .filter(|(_, s)| s.tenant == req.tenant && s.generation == generation)
                .map(|(&id, _)| id)
                .collect()
        };
        let mut freed = 0u64;
        for session_id in victims {
            freed += self.delete_session(session_id)?;
        }
        self.metrics.tenant(&req.tenant).record_freed(freed);
        Ok(ResponseEnvelope::ok(req.request_id).with_metadata(FREED_BYTES_KEY, freed.to_string()))
    }

    fn collect_garbage(&self, req: &RequestEnvelope) -> ServiceResult {
        let report = self.cluster.collect_garbage()?;
        Ok(ResponseEnvelope::ok(req.request_id)
            .with_metadata(BYTES_RECLAIMED_KEY, report.bytes_reclaimed.to_string())
            .with_metadata("containers_dropped", report.containers_dropped.to_string())
            .with_metadata(
                "containers_compacted",
                report.containers_compacted.to_string(),
            )
            .with_metadata("live_bytes", report.live_bytes.to_string()))
    }

    fn stats(&self, req: &RequestEnvelope) -> ServiceResult {
        let stats = self.cluster.stats();
        let tenant = self.tenant_stats_for(&req.tenant);
        let restore = self.restore_counters.snapshot();
        Ok(ResponseEnvelope::ok(req.request_id)
            .with_metadata("restores", restore.restores.to_string())
            .with_metadata("restore_chunks_read", restore.chunks_read.to_string())
            .with_metadata(
                "restore_containers_opened",
                restore.containers_opened.to_string(),
            )
            .with_metadata("restore_cache_hits", restore.cache_hits.to_string())
            .with_metadata("restore_cache_misses", restore.cache_misses.to_string())
            .with_metadata(
                "restore_backend_bytes_read",
                restore.backend_bytes_read.to_string(),
            )
            .with_metadata(
                "restore_read_amplification",
                format!("{:.4}", restore.read_amplification()),
            )
            .with_metadata(
                "restore_cache_hit_rate",
                format!("{:.4}", restore.cache_hit_rate()),
            )
            .with_metadata("router", stats.router.clone())
            .with_metadata("node_count", stats.node_count.to_string())
            .with_metadata(LOGICAL_BYTES_KEY, stats.logical_bytes.to_string())
            .with_metadata("physical_bytes", stats.physical_bytes.to_string())
            .with_metadata("dedup_ratio", format!("{:.4}", stats.dedup_ratio))
            .with_metadata("usage_skew", format!("{:.4}", stats.usage_skew))
            .with_metadata("tenant_requests", tenant.requests.to_string())
            .with_metadata("tenant_rejected", tenant.rejected.to_string())
            .with_metadata("tenant_logical_bytes", tenant.logical_bytes.to_string())
            .with_metadata(
                "tenant_transferred_bytes",
                tenant.transferred_bytes.to_string(),
            )
            .with_metadata("tenant_freed_bytes", tenant.freed_bytes.to_string())
            .with_metadata("tenant_restored_bytes", tenant.restored_bytes.to_string())
            .with_metadata(
                "tenant_live_logical_bytes",
                tenant.live_logical_bytes.to_string(),
            )
            .with_metadata("tenant_dedup_ratio", format!("{:.4}", tenant.dedup_ratio()))
            .with_metadata("tenant_files", tenant.files.to_string()))
    }
}

impl Backend for BackupService {
    fn call(&self, req: RequestEnvelope) -> ServiceResult {
        let tenant = req.tenant.clone();
        let result = match req.operation.clone() {
            Operation::Backup {
                file_name,
                generation,
            } => self.backup(&req, &file_name, generation),
            Operation::Restore { file_id } => self.restore(&req, file_id),
            Operation::DeleteFile { file_id } => self.delete_file(&req, file_id),
            Operation::DeleteBackup { session_id } => self.delete_backup(&req, session_id),
            Operation::DeleteGeneration { generation } => self.delete_generation(&req, generation),
            Operation::CollectGarbage => self.collect_garbage(&req),
            Operation::Stats => self.stats(&req),
        };
        self.metrics.tenant(&tenant).record_request(result.is_err());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_core::{ServiceCode, SigmaConfig};

    fn service() -> BackupService {
        let config = SigmaConfig::builder()
            .super_chunk_size(64 * 1024)
            .chunker(sigma_chunking_params())
            .build()
            .unwrap();
        BackupService::new(Arc::new(DedupCluster::with_similarity_router(2, config)))
    }

    fn sigma_chunking_params() -> sigma_chunking::ChunkerParams {
        sigma_chunking::ChunkerParams::fixed(4096)
    }

    fn data(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    fn backup_req(id: u64, tenant: &str, name: &str, payload: Vec<u8>) -> RequestEnvelope {
        RequestEnvelope::new(
            id,
            tenant,
            Operation::Backup {
                file_name: name.into(),
                generation: 0,
            },
        )
        .with_payload(payload)
    }

    #[test]
    fn backup_restore_round_trip() {
        let svc = service();
        let payload = data(200_000, 1);
        let resp = svc
            .call(backup_req(1, "acme", "db.bin", payload.clone()))
            .unwrap();
        assert!(resp.is_ok());
        let file_id = resp.metadata_u64(FILE_ID_KEY).unwrap();
        assert_eq!(
            resp.metadata_u64(LOGICAL_BYTES_KEY),
            Some(payload.len() as u64)
        );
        let restored = svc
            .call(RequestEnvelope::new(
                2,
                "acme",
                Operation::Restore { file_id },
            ))
            .unwrap();
        assert_eq!(restored.payload, payload, "byte-identical restore");
    }

    #[test]
    fn restore_reports_pipeline_counters() {
        let svc = service();
        let payload = data(200_000, 30);
        let resp = svc
            .call(backup_req(1, "acme", "db.bin", payload.clone()))
            .unwrap();
        let file_id = resp.metadata_u64(FILE_ID_KEY).unwrap();
        svc.cluster().flush();
        let restored = svc
            .call(RequestEnvelope::new(
                2,
                "acme",
                Operation::Restore { file_id },
            ))
            .unwrap();
        assert_eq!(restored.payload, payload);
        assert!(restored.metadata_u64(CHUNKS_READ_KEY).unwrap() > 0);
        assert!(restored.metadata_u64(CONTAINERS_OPENED_KEY).unwrap() > 0);
        assert!(restored.metadata.contains_key(READ_AMPLIFICATION_KEY));
        // The memory backend serves from RAM: every backend byte is a
        // delivered byte, so amplification is exactly 1.
        assert_eq!(
            restored.metadata_u64(BACKEND_BYTES_READ_KEY),
            Some(payload.len() as u64)
        );
        let agg = svc.restore_counters().snapshot();
        assert_eq!(agg.restores, 1);
        assert_eq!(agg.logical_bytes_restored, payload.len() as u64);
        assert!((agg.read_amplification() - 1.0).abs() < 1e-9);
        // Stats surfaces the aggregate.
        let stats = svc
            .call(RequestEnvelope::new(3, "acme", Operation::Stats))
            .unwrap();
        assert_eq!(stats.metadata_u64("restores"), Some(1));
        assert_eq!(
            stats.metadata_u64("restore_chunks_read"),
            Some(agg.chunks_read)
        );
        assert!(stats.metadata.contains_key("restore_read_amplification"));
        assert!(stats.metadata.contains_key("restore_cache_hit_rate"));
    }

    #[test]
    fn cross_tenant_access_reads_as_not_found() {
        let svc = service();
        let resp = svc
            .call(backup_req(1, "acme", "f", data(50_000, 2)))
            .unwrap();
        let file_id = resp.metadata_u64(FILE_ID_KEY).unwrap();
        let session_id = resp.metadata_u64(SESSION_ID_KEY).unwrap();
        // Another tenant cannot restore, delete the file, or delete the session.
        let err = svc
            .call(RequestEnvelope::new(
                2,
                "evil",
                Operation::Restore { file_id },
            ))
            .unwrap_err();
        assert_eq!(err.code(), ServiceCode::NotFound);
        let err = svc
            .call(RequestEnvelope::new(
                3,
                "evil",
                Operation::DeleteFile { file_id },
            ))
            .unwrap_err();
        assert_eq!(err.code(), ServiceCode::NotFound);
        let err = svc
            .call(RequestEnvelope::new(
                4,
                "evil",
                Operation::DeleteBackup { session_id },
            ))
            .unwrap_err();
        assert_eq!(err.code(), ServiceCode::NotFound);
        // The rightful owner still can.
        assert!(svc
            .call(RequestEnvelope::new(
                5,
                "acme",
                Operation::Restore { file_id }
            ))
            .is_ok());
    }

    #[test]
    fn delete_file_frees_logical_bytes() {
        let svc = service();
        let payload = data(120_000, 3);
        let resp = svc
            .call(backup_req(1, "acme", "f", payload.clone()))
            .unwrap();
        let file_id = resp.metadata_u64(FILE_ID_KEY).unwrap();
        let del = svc
            .call(RequestEnvelope::new(
                2,
                "acme",
                Operation::DeleteFile { file_id },
            ))
            .unwrap();
        assert_eq!(
            del.metadata_u64(FREED_BYTES_KEY),
            Some(payload.len() as u64)
        );
        // Double delete is NotFound (ownership entry is gone).
        let err = svc
            .call(RequestEnvelope::new(
                3,
                "acme",
                Operation::DeleteFile { file_id },
            ))
            .unwrap_err();
        assert_eq!(err.code(), ServiceCode::NotFound);
    }

    #[test]
    fn delete_generation_expires_only_that_tenant() {
        let svc = service();
        let a = data(80_000, 4);
        let b = data(80_000, 5);
        svc.call(backup_req(1, "acme", "a", a)).unwrap();
        let other = svc.call(backup_req(2, "globex", "b", b.clone())).unwrap();
        let freed = svc
            .call(RequestEnvelope::new(
                3,
                "acme",
                Operation::DeleteGeneration { generation: 0 },
            ))
            .unwrap();
        assert_eq!(freed.metadata_u64(FREED_BYTES_KEY), Some(80_000));
        // globex's file in the same generation survives.
        let file_id = other.metadata_u64(FILE_ID_KEY).unwrap();
        let restored = svc
            .call(RequestEnvelope::new(
                4,
                "globex",
                Operation::Restore { file_id },
            ))
            .unwrap();
        assert_eq!(restored.payload, b);
        // Expiring an empty generation is Ok(0) — idempotent retention loops.
        let again = svc
            .call(RequestEnvelope::new(
                5,
                "acme",
                Operation::DeleteGeneration { generation: 0 },
            ))
            .unwrap();
        assert_eq!(again.metadata_u64(FREED_BYTES_KEY), Some(0));
    }

    #[test]
    fn gc_after_delete_reclaims_bytes() {
        let svc = service();
        let resp = svc
            .call(backup_req(1, "acme", "f", data(300_000, 6)))
            .unwrap();
        let file_id = resp.metadata_u64(FILE_ID_KEY).unwrap();
        svc.cluster().flush();
        svc.call(RequestEnvelope::new(
            2,
            "acme",
            Operation::DeleteFile { file_id },
        ))
        .unwrap();
        let gc = svc
            .call(RequestEnvelope::new(3, "acme", Operation::CollectGarbage))
            .unwrap();
        assert!(gc.metadata_u64(BYTES_RECLAIMED_KEY).unwrap() > 0);
    }

    #[test]
    fn stats_reports_cluster_and_tenant_figures() {
        let svc = service();
        svc.call(backup_req(1, "acme", "f", data(64_000, 7)))
            .unwrap();
        let stats = svc
            .call(RequestEnvelope::new(2, "acme", Operation::Stats))
            .unwrap();
        assert_eq!(stats.metadata_u64("node_count"), Some(2));
        assert_eq!(stats.metadata_u64(LOGICAL_BYTES_KEY), Some(64_000));
        assert_eq!(stats.metadata_u64("tenant_files"), Some(1));
        assert!(stats.metadata.contains_key("dedup_ratio"));
    }

    #[test]
    fn per_tenant_accounting_tracks_ingest_frees_and_live_state() {
        let svc = service();
        let a = data(100_000, 20);
        let b = data(60_000, 21);
        let ra = svc.call(backup_req(1, "acme", "a", a.clone())).unwrap();
        svc.call(backup_req(2, "globex", "b", b)).unwrap();
        // acme backs up the same bytes again: logical grows, transferred
        // barely does (first-writer-pays).
        svc.call(backup_req(3, "acme", "a2", a.clone())).unwrap();
        let acme = svc.tenant_stats_for("acme");
        assert_eq!(acme.logical_bytes, 200_000);
        assert!(
            acme.transferred_bytes < 110_000,
            "duplicate ingest must not re-pay: {}",
            acme.transferred_bytes
        );
        assert_eq!(acme.live_logical_bytes, 200_000);
        assert_eq!(acme.files, 2);
        assert!(acme.dedup_ratio() > 1.8);
        // Director-tagged live bytes partition the cluster's logical total.
        let by_tenant = svc.cluster().tenant_logical_bytes();
        assert_eq!(by_tenant["acme"], 200_000);
        assert_eq!(by_tenant["globex"], 60_000);
        assert_eq!(
            by_tenant.values().sum::<u64>(),
            svc.cluster().stats().logical_bytes
        );
        // A delete moves bytes from live to freed without touching globex.
        let file_id = ra.metadata_u64(FILE_ID_KEY).unwrap();
        svc.call(RequestEnvelope::new(
            4,
            "acme",
            Operation::DeleteFile { file_id },
        ))
        .unwrap();
        let acme = svc.tenant_stats_for("acme");
        assert_eq!(acme.freed_bytes, 100_000);
        assert_eq!(acme.live_logical_bytes, 100_000);
        assert_eq!(acme.files, 1);
        assert_eq!(svc.tenant_stats_for("globex").live_logical_bytes, 60_000);
        // Requests and rejections are tallied per tenant.
        assert!(svc
            .call(RequestEnvelope::new(
                5,
                "acme",
                Operation::Restore { file_id }
            ))
            .is_err());
        let acme = svc.tenant_stats_for("acme");
        assert_eq!(acme.requests, 4);
        assert_eq!(acme.rejected, 1);
        assert_eq!(svc.tenant_stats().len(), 2);
    }

    #[test]
    fn stats_surface_the_tenant_report() {
        let svc = service();
        svc.call(backup_req(1, "acme", "f", data(64_000, 22)))
            .unwrap();
        let stats = svc
            .call(RequestEnvelope::new(2, "acme", Operation::Stats))
            .unwrap();
        assert_eq!(stats.metadata_u64("tenant_logical_bytes"), Some(64_000));
        assert_eq!(
            stats.metadata_u64("tenant_live_logical_bytes"),
            Some(64_000)
        );
        assert_eq!(stats.metadata_u64("tenant_files"), Some(1));
        assert_eq!(stats.metadata_u64("tenant_freed_bytes"), Some(0));
        assert!(stats.metadata.contains_key("tenant_dedup_ratio"));
        // Another tenant's Stats sees its own (empty) report, not acme's.
        let other = svc
            .call(RequestEnvelope::new(3, "globex", Operation::Stats))
            .unwrap();
        assert_eq!(other.metadata_u64("tenant_logical_bytes"), Some(0));
        assert_eq!(other.metadata_u64("tenant_files"), Some(0));
    }

    #[test]
    fn sessions_are_per_tenant_and_generation() {
        let svc = service();
        let a0 = svc
            .call(backup_req(1, "acme", "a", data(8_000, 8)))
            .unwrap();
        let a0b = svc
            .call(backup_req(2, "acme", "b", data(8_000, 9)))
            .unwrap();
        let a1 = svc
            .call(
                RequestEnvelope::new(
                    3,
                    "acme",
                    Operation::Backup {
                        file_name: "c".into(),
                        generation: 1,
                    },
                )
                .with_payload(data(8_000, 10)),
            )
            .unwrap();
        let g = svc
            .call(backup_req(4, "globex", "d", data(8_000, 11)))
            .unwrap();
        let s = |r: &ResponseEnvelope| r.metadata_u64(SESSION_ID_KEY).unwrap();
        assert_eq!(s(&a0), s(&a0b), "same tenant+generation shares a session");
        assert_ne!(s(&a0), s(&a1), "generations get their own session");
        assert_ne!(s(&a0), s(&g), "tenants get their own session");
    }
}
