//! Elastic cluster membership: generation-stamped node maps and the rebalancer.
//!
//! A [`DedupCluster`](crate::DedupCluster) starts with a fixed set of nodes but may
//! grow ([`add_node`](crate::DedupCluster::add_node)) and shrink
//! ([`remove_node`](crate::DedupCluster::remove_node)) while live.  Two structures
//! make that safe:
//!
//! * **[`NodeMap`]** — an immutable, generation-stamped snapshot of the active
//!   nodes.  Every routing decision (and every batch of the parallel ingest
//!   pipeline) is made against one snapshot, so a membership change mid-batch can
//!   never split a batch across two views of the cluster.  Node *IDs* are stable
//!   for the lifetime of the cluster; only the *slots* a router indexes into
//!   change with membership.
//! * **[`Rebalancer`]** — a planned sequence of sealed-container migrations.  Each
//!   [`step`](Rebalancer::step) moves one container: the data and its
//!   chunk-index/similarity-index entries are installed on the destination node,
//!   then a forwarding tombstone is published at the source *before* the data is
//!   dropped there.  Restores therefore stay byte-identical at every point during
//!   and after a migration — a recipe written at any generation either reads the
//!   chunk where it was written or follows the tombstone chain to wherever the
//!   rebalancer took it.
//!
//! The rebalancer is deliberately incremental so callers (and tests) can
//! interleave restores and backups with a migration in flight.
//! [`Rebalancer::run`] drains every planned move; for a node removal it also
//! re-scans the source afterwards so containers sealed by stragglers still
//! migrate before the report is returned.

use crate::{DedupNode, Result};
use sigma_storage::ContainerId;
use std::sync::Arc;

/// An immutable, generation-stamped snapshot of the cluster's active nodes.
///
/// Routers index nodes by *slot* (position in [`nodes`](NodeMap::nodes)); the
/// stable node *ID* of the slot's occupant is what ends up in file recipes.
#[derive(Debug, Clone)]
pub struct NodeMap {
    generation: u64,
    nodes: Vec<Arc<DedupNode>>,
}

impl NodeMap {
    /// Creates a node map at `generation` over the given active nodes.
    pub(crate) fn new(generation: u64, nodes: Vec<Arc<DedupNode>>) -> Self {
        NodeMap { generation, nodes }
    }

    /// The membership generation this snapshot belongs to.  Bumped by every
    /// [`add_node`](crate::DedupCluster::add_node) /
    /// [`remove_node`](crate::DedupCluster::remove_node).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The active nodes, in slot order.
    pub fn nodes(&self) -> &[Arc<DedupNode>] {
        &self.nodes
    }

    /// Number of active nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no node is active (never the case for a live cluster).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Stable IDs of the active nodes, in slot order.
    pub fn node_ids(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.id()).collect()
    }

    /// The slot currently occupied by node `id`, if it is active.
    pub fn slot_of(&self, id: usize) -> Option<usize> {
        self.nodes.iter().position(|n| n.id() == id)
    }
}

/// One planned container migration.
#[derive(Debug, Clone)]
pub(crate) struct PlannedMove {
    pub(crate) from: Arc<DedupNode>,
    pub(crate) to: Arc<DedupNode>,
    pub(crate) container: ContainerId,
}

/// Receipt for one completed container migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveReceipt {
    /// Node the container was migrated from.
    pub from: usize,
    /// Node the container was migrated to.
    pub to: usize,
    /// The container's identifier on the source node (now a forwarding tombstone).
    pub container: ContainerId,
    /// The container's new identifier on the destination node.
    pub new_container: ContainerId,
    /// Logical bytes moved.
    pub bytes: u64,
    /// Chunks moved.
    pub chunks: u64,
}

/// Summary of a completed rebalance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebalanceReport {
    /// Containers migrated.
    pub containers_moved: u64,
    /// Logical bytes migrated.
    pub bytes_moved: u64,
    /// Chunks migrated.
    pub chunks_moved: u64,
    /// Membership generation the rebalance ran under.
    pub generation: u64,
}

/// A planned, incrementally executable container migration.
///
/// Obtained from [`DedupCluster::begin_rebalance_onto`](crate::DedupCluster::begin_rebalance_onto)
/// (spread load onto a newly added node) or
/// [`DedupCluster::begin_remove_node`](crate::DedupCluster::begin_remove_node)
/// (drain a leaving node).  Each [`step`](Rebalancer::step) migrates exactly one
/// sealed container and is safe to interleave with concurrent backups and
/// restores; [`run`](Rebalancer::run) drains the whole plan.
#[derive(Debug)]
pub struct Rebalancer {
    pub(crate) moves: std::collections::VecDeque<PlannedMove>,
    pub(crate) report: RebalanceReport,
    /// Live view of the cluster's membership: every executed move revalidates its
    /// destination against the *current* node map, so a plan that has gone stale
    /// (its target removed after planning) cannot strand data on a retired node.
    pub(crate) membership: Arc<parking_lot::RwLock<crate::cluster::Membership>>,
    /// For a node removal: the node being drained, so [`run`](Rebalancer::run)
    /// can sweep containers sealed by writes that raced the removal.
    pub(crate) drain: Option<Arc<DedupNode>>,
}

impl Rebalancer {
    pub(crate) fn new(
        moves: Vec<PlannedMove>,
        generation: u64,
        membership: Arc<parking_lot::RwLock<crate::cluster::Membership>>,
        drain: Option<Arc<DedupNode>>,
    ) -> Self {
        Rebalancer {
            moves: moves.into(),
            report: RebalanceReport {
                generation,
                ..RebalanceReport::default()
            },
            membership,
            drain,
        }
    }

    /// Number of planned moves not yet executed.
    pub fn remaining(&self) -> usize {
        self.moves.len()
    }

    /// True once every planned move has been executed.
    pub fn is_done(&self) -> bool {
        self.moves.is_empty()
    }

    /// The report accumulated so far (final once [`is_done`](Self::is_done)).
    pub fn report(&self) -> RebalanceReport {
        self.report
    }

    fn active_map(&self) -> Arc<NodeMap> {
        self.membership.read().map.clone()
    }

    fn record(&mut self, receipt: MoveReceipt) {
        self.report.containers_moved += 1;
        self.report.bytes_moved += receipt.bytes;
        self.report.chunks_moved += receipt.chunks;
    }

    /// Executes one container migration; returns `Ok(None)` when the plan is
    /// drained.
    ///
    /// A move whose container has meanwhile vanished from the source (e.g. an
    /// overlapping plan already migrated it) is skipped, not treated as the end
    /// of the plan.  A move whose destination has meanwhile left the cluster is
    /// redirected to the currently least-loaded active node for drain plans, and
    /// voids the rest of the plan for join plans (rebalancing onto a node that
    /// no longer exists is moot).
    ///
    /// # Errors
    ///
    /// Propagates a node crash (durable clusters under fault injection): the
    /// in-flight move stops at a journal-record boundary, which is exactly the
    /// state [`DedupCluster::restart_node`](crate::DedupCluster::restart_node)
    /// recovers from; re-planning and re-running the rebalance afterwards is
    /// safe because container adoption is idempotent per origin.
    pub fn step(&mut self) -> Result<Option<MoveReceipt>> {
        loop {
            let Some(planned) = self.moves.pop_front() else {
                return Ok(None);
            };
            let to = if self.active_map().slot_of(planned.to.id()).is_some() {
                planned.to
            } else if self.drain.is_some() {
                match least_loaded_active(&self.active_map(), planned.from.id()) {
                    Some(to) => to,
                    None => continue,
                }
            } else {
                self.moves.clear();
                return Ok(None);
            };
            match migrate_container(&planned.from, &to, planned.container)? {
                Some(receipt) => {
                    self.record(receipt);
                    return Ok(Some(receipt));
                }
                None => continue,
            }
        }
    }

    /// Executes every remaining move and returns the final report.
    ///
    /// For a node removal this also re-flushes and re-scans the drained node until
    /// it holds no sealed container, so writes that raced the removal under an
    /// older node map are migrated too rather than stranded.  Straggler targets
    /// are chosen from the membership current at sweep time.
    ///
    /// # Errors
    ///
    /// Propagates the first node crash, like [`step`](Self::step).
    pub fn run(mut self) -> Result<RebalanceReport> {
        while self.step()?.is_some() {}
        if let Some(source) = self.drain.take() {
            loop {
                source.try_flush()?;
                let stragglers = source.sealed_container_ids();
                if stragglers.is_empty() {
                    break;
                }
                let map = self.membership.read().map.clone();
                for container in stragglers {
                    // Send each straggler to the least-loaded active node.
                    let Some(to) = least_loaded_active(&map, source.id()) else {
                        return Ok(self.report);
                    };
                    if let Some(receipt) = migrate_container(&source, &to, container)? {
                        self.record(receipt);
                    }
                }
            }
        }
        Ok(self.report)
    }
}

/// The least-loaded active node other than `exclude` (ties broken by node ID).
fn least_loaded_active(map: &NodeMap, exclude: usize) -> Option<Arc<DedupNode>> {
    map.nodes()
        .iter()
        .filter(|n| n.id() != exclude)
        .min_by_key(|n| (n.storage_usage(), n.id()))
        .cloned()
}

/// Migrates one sealed container from `from` to `to`.
///
/// Order of operations is what preserves restores mid-flight *and* across
/// crashes:
///
/// 1. clone the container off the source (still readable there);
/// 2. *peek* (not extract) the source's similarity-index entries for it;
/// 3. install data + chunk-index + similarity entries on the destination —
///    durably, when the destination journals;
/// 4. publish the forwarding tombstone at the source (journal first), then
///    drop the data *and* the similarity entries there.
///
/// A restore racing with the move reads the chunk locally until step 4, and
/// follows the tombstone afterwards; at no point is the chunk unreachable.  A
/// crash between 3 and 4 leaves both copies alive (never a dangling tombstone);
/// recovery reconciliation or an idempotent retry completes the hand-off.  The
/// peek in step 2 is what makes a *destination* crash during step 3 harmless:
/// the source's similarity state is untouched until the adoption is durable.
fn migrate_container(
    from: &Arc<DedupNode>,
    to: &Arc<DedupNode>,
    container: ContainerId,
) -> Result<Option<MoveReceipt>> {
    let Some(exported) = from.export_container(&container) else {
        return Ok(None);
    };
    let bytes = exported.data_size() as u64;
    let chunks = exported.chunk_count() as u64;
    let rfps = from.similarity_entries_for(container);
    let new_container = to.adopt_container(from.id(), exported, &rfps)?;
    from.retire_container(container, to.id())?;
    Ok(Some(MoveReceipt {
        from: from.id(),
        to: to.id(),
        container,
        new_container,
        bytes,
        chunks,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SigmaConfig, SuperChunk};
    use sigma_hashkit::FingerprintAlgorithm;

    fn node(id: usize) -> Arc<DedupNode> {
        Arc::new(DedupNode::new(id, &SigmaConfig::default()))
    }

    fn payload_super_chunk(seed: u8, chunks: usize) -> SuperChunk {
        let data: Vec<Vec<u8>> = (0..chunks)
            .map(|i| vec![seed.wrapping_add(i as u8); 4096])
            .collect();
        SuperChunk::from_payloads(FingerprintAlgorithm::Sha1, 0, data)
    }

    #[test]
    fn node_map_slots_and_ids() {
        let map = NodeMap::new(3, vec![node(0), node(2), node(5)]);
        assert_eq!(map.generation(), 3);
        assert_eq!(map.len(), 3);
        assert!(!map.is_empty());
        assert_eq!(map.node_ids(), vec![0, 2, 5]);
        assert_eq!(map.slot_of(5), Some(2));
        assert_eq!(map.slot_of(1), None);
    }

    #[test]
    fn migrate_container_preserves_reads_and_bytes() {
        let a = node(0);
        let b = node(1);
        let sc = payload_super_chunk(7, 16);
        let hp = sc.handprint(8);
        a.process_super_chunk(0, &sc, &hp).unwrap();
        a.flush();
        let cid = a.sealed_container_ids()[0];
        let before = a.storage_usage();
        assert_eq!(b.storage_usage(), 0);

        let receipt = migrate_container(&a, &b, cid).unwrap().unwrap();
        assert_eq!(receipt.from, 0);
        assert_eq!(receipt.to, 1);
        assert_eq!(receipt.chunks, 16);
        assert_eq!(receipt.bytes, before);

        // Bytes conserved: everything A lost, B gained.
        assert_eq!(a.storage_usage(), 0);
        assert_eq!(b.storage_usage(), before);
        // The tombstone points at B, and A's read path reports the migration.
        assert_eq!(a.forwarded_to(&cid), Some(1));
        for (i, d) in sc.descriptors().iter().enumerate() {
            assert!(matches!(
                a.read_chunk(&d.fingerprint),
                Err(crate::SigmaError::ChunkMigrated { node: 1, .. })
            ));
            assert_eq!(
                b.read_chunk(&d.fingerprint).unwrap(),
                sc.payload(i).unwrap()
            );
        }
        // Similarity entries moved with the container: B now answers resemblance.
        assert_eq!(a.resemblance_count(&hp), 0);
        assert_eq!(b.resemblance_count(&hp), hp.size());
    }

    #[test]
    fn migrating_a_missing_container_is_a_no_op() {
        let a = node(0);
        let b = node(1);
        assert!(migrate_container(&a, &b, ContainerId::new(99))
            .unwrap()
            .is_none());
    }

    #[test]
    fn destination_crash_mid_adopt_preserves_source_similarity_state() {
        // Regression: the migration must *peek* (not extract) the source's
        // similarity entries before the destination's durable adopt — a
        // destination that crashes on the adopt append must leave the source
        // still answering resemblance queries, so the retried migration
        // re-homes the RFPs instead of dropping them forever.
        let durable = crate::SigmaConfig::builder()
            .durability(true)
            .build()
            .unwrap();
        let a = Arc::new(DedupNode::new(0, &durable));
        let b = Arc::new(DedupNode::new(1, &durable));
        let sc = payload_super_chunk(21, 16);
        let hp = sc.handprint(8);
        a.process_super_chunk(0, &sc, &hp).unwrap();
        a.try_flush().unwrap();
        let cid = a.sealed_container_ids()[0];

        let b_journal = b.journal().unwrap();
        b_journal.arm_crash_at_seq(b_journal.next_seq(), sigma_storage::CrashMode::Clean);
        assert!(migrate_container(&a, &b, cid).is_err(), "adopt must crash");
        assert_eq!(
            a.resemblance_count(&hp),
            hp.size(),
            "source similarity entries survive the destination crash"
        );
        assert_eq!(a.forwarded_to(&cid), None, "no dangling tombstone");

        // Recover the destination and retry: the RFPs travel with the retry.
        let (recovered_b, _) = DedupNode::recover(1, &durable, b_journal.clone()).unwrap();
        let recovered_b = Arc::new(recovered_b);
        let receipt = migrate_container(&a, &recovered_b, cid).unwrap().unwrap();
        assert_eq!(receipt.chunks, 16);
        assert_eq!(a.resemblance_count(&hp), 0, "extracted at retire time");
        assert_eq!(recovered_b.resemblance_count(&hp), hp.size());
        recovered_b.verify_consistency().unwrap();
        a.verify_consistency().unwrap();
    }

    #[test]
    fn repeated_adoption_of_the_same_origin_is_idempotent() {
        // The guard behind safe rebalance retries: adopting the same
        // (origin node, origin container) twice — a caller re-executing a plan
        // entry, or journal replay of a duplicated migration record — must not
        // double-store the container.
        let a = node(0);
        let b = node(1);
        let sc = payload_super_chunk(3, 8);
        a.process_super_chunk(0, &sc, &sc.handprint(4)).unwrap();
        a.flush();
        let cid = a.sealed_container_ids()[0];
        let exported = a.export_container(&cid).unwrap();
        let rfps = a.take_similarity_entries(cid);

        let first = b.adopt_container(0, exported.clone(), &rfps).unwrap();
        let usage_after_first = b.storage_usage();
        let second = b.adopt_container(0, exported, &rfps).unwrap();
        assert_eq!(first, second, "same origin resolves to the same local id");
        assert_eq!(b.storage_usage(), usage_after_first, "no bytes duplicated");
        assert_eq!(b.stats().containers.sealed_containers, 1);
        assert_eq!(b.adopted_origins(), vec![(0, cid, first)]);
    }
}
