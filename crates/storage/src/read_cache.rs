//! Bounded LRU cache of sealed-container data sections for the restore path.
//!
//! On a persistent backend every chunk read is a real seek into a container
//! file.  Restores revisit containers constantly — duplicate chunks by
//! construction land in containers shared across files — so the restore
//! pipeline keeps recently-touched data sections resident and serves repeat
//! visits from RAM.  The cache is deliberately narrow:
//!
//! * keyed by [`ContainerId`], holding the container's *data section* (records
//!   only, no header/metadata) as an `Arc<[u8]>` cheaply clonable to readers;
//! * bounded in **bytes**, not entries, via the `restore_cache_bytes` knob —
//!   containers are the capacity unit users reason about;
//! * invalidated by the container store whenever a container is removed,
//!   compacted or garbage-collected, so a cached section can never outlive the
//!   container it was read from.
//!
//! Volatile backends never populate it: their data sections already live in
//! RAM inside the sealed-container map, and a second resident copy would only
//! distort memory figures.  Hit/miss/eviction counters feed the restore
//! observability surfaced through `sigma-metrics`.

use crate::ContainerId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Point-in-time view of a [`ContainerReadCache`]'s counters and occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadCacheStats {
    /// Lookups served from a resident data section.
    pub hits: u64,
    /// Lookups that missed (the caller then reads the backend).
    pub misses: u64,
    /// Resident sections evicted to make room.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Data sections currently resident.
    pub resident_containers: u64,
    /// Configured capacity in bytes.
    pub capacity_bytes: u64,
}

struct Resident {
    data: Arc<[u8]>,
    /// Logical access clock at last touch; the eviction victim is the minimum.
    /// An O(n) scan over resident *containers* (a handful of multi-megabyte
    /// sections), not bytes — cheaper than threading a linked list through the
    /// map, and the scan count is bounded by `capacity / container_capacity`.
    touched: u64,
}

struct Inner {
    resident: HashMap<ContainerId, Resident>,
    bytes: u64,
    clock: u64,
}

/// Bytes-bounded LRU of container data sections; see the module docs.
pub struct ContainerReadCache {
    capacity_bytes: u64,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ContainerReadCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ContainerReadCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("resident_bytes", &inner.bytes)
            .field("resident_containers", &inner.resident.len())
            .finish()
    }
}

impl ContainerReadCache {
    /// Creates a cache bounded at `capacity_bytes` (must be non-zero; a zero
    /// budget means "no cache" and callers represent that as `None`).
    pub fn new(capacity_bytes: u64) -> Self {
        debug_assert!(capacity_bytes > 0, "zero-budget cache should be None");
        ContainerReadCache {
            capacity_bytes,
            inner: Mutex::new(Inner {
                resident: HashMap::new(),
                bytes: 0,
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Returns the resident data section for `container`, touching its LRU
    /// position; counts a hit or a miss.
    pub fn get(&self, container: &ContainerId) -> Option<Arc<[u8]>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.resident.get_mut(container) {
            Some(entry) => {
                entry.touched = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.data.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Makes `data` resident for `container`, evicting least-recently-touched
    /// sections until it fits.  Sections larger than the whole budget are not
    /// cached at all (they would evict everything and then miss next time
    /// anyway); re-inserting an already-resident container refreshes it.
    pub fn insert(&self, container: ContainerId, data: Arc<[u8]>) {
        let len = data.len() as u64;
        if len > self.capacity_bytes {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(old) = inner.resident.remove(&container) {
            inner.bytes -= old.data.len() as u64;
        }
        while inner.bytes + len > self.capacity_bytes {
            let victim = inner
                .resident
                .iter()
                .min_by_key(|(_, entry)| entry.touched)
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    if let Some(evicted) = inner.resident.remove(&id) {
                        inner.bytes -= evicted.data.len() as u64;
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => break,
            }
        }
        inner.clock += 1;
        let touched = inner.clock;
        inner.bytes += len;
        inner.resident.insert(container, Resident { data, touched });
    }

    /// Drops the resident section for `container`, if any.  Called by the
    /// container store on removal, GC and compaction so stale payloads can
    /// never be served.
    pub fn invalidate(&self, container: &ContainerId) {
        let mut inner = self.inner.lock();
        if let Some(old) = inner.resident.remove(container) {
            inner.bytes -= old.data.len() as u64;
        }
    }

    /// Point-in-time counters and occupancy.
    pub fn stats(&self) -> ReadCacheStats {
        let inner = self.inner.lock();
        ReadCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: inner.bytes,
            resident_containers: inner.resident.len() as u64,
            capacity_bytes: self.capacity_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn section(byte: u8, len: usize) -> Arc<[u8]> {
        vec![byte; len].into()
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = ContainerReadCache::new(1024);
        let id = ContainerId::new(1);
        assert!(cache.get(&id).is_none());
        cache.insert(id, section(7, 100));
        let got = cache.get(&id).expect("resident after insert");
        assert_eq!(&got[..], &vec![7u8; 100][..]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.resident_bytes, 100);
        assert_eq!(stats.resident_containers, 1);
    }

    #[test]
    fn evicts_least_recently_touched_first() {
        let cache = ContainerReadCache::new(250);
        let (a, b, c) = (
            ContainerId::new(1),
            ContainerId::new(2),
            ContainerId::new(3),
        );
        cache.insert(a, section(1, 100));
        cache.insert(b, section(2, 100));
        assert!(cache.get(&a).is_some(), "touch a so b is the LRU victim");
        cache.insert(c, section(3, 100));
        assert!(cache.get(&a).is_some(), "a survived");
        assert!(cache.get(&b).is_none(), "b was evicted");
        assert!(cache.get(&c).is_some(), "c resident");
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().resident_bytes, 200);
    }

    #[test]
    fn oversized_sections_are_not_cached() {
        let cache = ContainerReadCache::new(50);
        let id = ContainerId::new(9);
        cache.insert(id, section(0, 51));
        assert!(cache.get(&id).is_none());
        assert_eq!(cache.stats().resident_bytes, 0);
        assert_eq!(cache.stats().evictions, 0, "nothing evicted for a no-op");
    }

    #[test]
    fn invalidate_drops_the_section() {
        let cache = ContainerReadCache::new(1024);
        let id = ContainerId::new(4);
        cache.insert(id, section(4, 64));
        cache.invalidate(&id);
        assert!(cache.get(&id).is_none());
        assert_eq!(cache.stats().resident_bytes, 0);
        cache.invalidate(&id); // absent invalidate is a no-op
    }

    #[test]
    fn reinsert_refreshes_without_double_counting() {
        let cache = ContainerReadCache::new(1024);
        let id = ContainerId::new(5);
        cache.insert(id, section(1, 100));
        cache.insert(id, section(2, 200));
        let stats = cache.stats();
        assert_eq!(stats.resident_bytes, 200);
        assert_eq!(stats.resident_containers, 1);
        assert_eq!(&cache.get(&id).unwrap()[..4], &[2, 2, 2, 2]);
    }
}
