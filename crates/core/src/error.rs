//! Error type for the Σ-Dedupe core, and its stable service-code mapping.

use serde::{Deserialize, Serialize};
use sigma_storage::StorageError;

/// Stable, transport-facing status code classifying every [`SigmaError`].
///
/// The service layer (`sigma-service`) derives the status of a
/// `ResponseEnvelope` from [`SigmaError::code`] — one mapping in one place —
/// so a new error variant only has to pick its class here and every
/// transport (in-process, framed TCP, future protocols) reports it
/// consistently.  The numeric values returned by [`wire`](Self::wire) are
/// part of the wire format and must never be reused or renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceCode {
    /// The request succeeded.
    Ok,
    /// The request itself was malformed (unknown operation, undecodable
    /// envelope, invalid parameters).
    InvalidRequest,
    /// The addressed entity (file, backup session, node) does not exist —
    /// including "existed, already deleted".
    NotFound,
    /// The request is valid but conflicts with the current cluster state
    /// (e.g. removing the last node).
    Conflict,
    /// The caller's credentials are missing, unknown or wrong.
    Unauthorized,
    /// A per-tenant budget (quota bytes, rate-limit tokens) is exhausted;
    /// retrying later or freeing space may succeed.
    ResourceExhausted,
    /// An internal invariant failed (missing chunk, storage corruption);
    /// retrying will not help.
    Internal,
    /// The cluster is temporarily unable to serve the request (crashed node
    /// awaiting recovery, container mid-migration); retrying may succeed.
    Unavailable,
}

impl ServiceCode {
    /// The stable numeric form used by wire codecs (HTTP-status-shaped, so
    /// logs read naturally).
    pub fn wire(self) -> u16 {
        match self {
            ServiceCode::Ok => 0,
            ServiceCode::InvalidRequest => 400,
            ServiceCode::Unauthorized => 401,
            ServiceCode::NotFound => 404,
            ServiceCode::Conflict => 409,
            ServiceCode::ResourceExhausted => 429,
            ServiceCode::Internal => 500,
            ServiceCode::Unavailable => 503,
        }
    }

    /// Decodes a [`wire`](Self::wire) value; `None` for unknown numbers.
    pub fn from_wire(value: u16) -> Option<ServiceCode> {
        Some(match value {
            0 => ServiceCode::Ok,
            400 => ServiceCode::InvalidRequest,
            401 => ServiceCode::Unauthorized,
            404 => ServiceCode::NotFound,
            409 => ServiceCode::Conflict,
            429 => ServiceCode::ResourceExhausted,
            500 => ServiceCode::Internal,
            503 => ServiceCode::Unavailable,
            _ => return None,
        })
    }

    /// `true` only for [`ServiceCode::Ok`].
    pub fn is_ok(self) -> bool {
        self == ServiceCode::Ok
    }
}

impl std::fmt::Display for ServiceCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ServiceCode::Ok => "ok",
            ServiceCode::InvalidRequest => "invalid-request",
            ServiceCode::NotFound => "not-found",
            ServiceCode::Conflict => "conflict",
            ServiceCode::Unauthorized => "unauthorized",
            ServiceCode::ResourceExhausted => "resource-exhausted",
            ServiceCode::Internal => "internal",
            ServiceCode::Unavailable => "unavailable",
        };
        f.write_str(name)
    }
}

/// Errors produced by backup, deduplication and restore operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigmaError {
    /// An underlying storage operation failed.
    Storage(StorageError),
    /// No file recipe exists for this file ID.
    FileNotFound(u64),
    /// No backup session exists with this session ID (already deleted or never
    /// opened).
    BackupNotFound(u64),
    /// A chunk referenced by a file recipe could not be found on its node.
    ChunkMissing {
        /// Node that was expected to hold the chunk.
        node: usize,
        /// Hex form of the missing fingerprint.
        fingerprint: String,
    },
    /// The chunk exists but its payload was not stored (trace-driven/synthetic mode).
    PayloadUnavailable {
        /// Hex form of the fingerprint whose payload is unavailable.
        fingerprint: String,
    },
    /// The chunk's container was migrated to another node; the error carries the
    /// forwarding tombstone's destination.  Cluster-level restores follow the
    /// chain transparently, so callers normally never observe this variant.
    ChunkMigrated {
        /// Hex form of the migrated chunk's fingerprint.
        fingerprint: String,
        /// Node the container was forwarded to.
        node: usize,
    },
    /// Membership operation referenced a node ID that is not in the cluster.
    UnknownNode(usize),
    /// Membership operation would leave the cluster without any node.
    ClusterTooSmall,
    /// A restore rebuilt fewer (or more) bytes than the file recipe records —
    /// chunk payloads and recipe metadata disagree, so the returned data would
    /// be corrupt.  Restores fail loudly instead of handing back a silently
    /// truncated file.
    RestoreTruncated {
        /// File whose restore diverged.
        file_id: u64,
        /// Logical size the recipe records.
        expected: u64,
        /// Bytes the chunk payloads actually rebuilt.
        actual: u64,
    },
    /// The routing scheme requires file boundaries but none were provided.
    FileBoundariesRequired {
        /// Name of the routing scheme that raised the error.
        router: String,
    },
    /// Configuration rejected at validation time.
    InvalidConfig(String),
    /// The service layer rejected the request's credentials (unknown tenant,
    /// missing or mismatched token).
    Unauthorized {
        /// Tenant named by the request.
        tenant: String,
    },
    /// The tenant's logical-bytes quota cannot cover the request.
    QuotaExceeded {
        /// Tenant whose budget is exhausted.
        tenant: String,
        /// Logical bytes the request asked to ingest.
        requested_bytes: u64,
        /// Logical bytes still available in the tenant's budget.
        remaining_bytes: u64,
    },
    /// The tenant's request rate exceeded its token bucket.
    RateLimited {
        /// Tenant that ran out of tokens.
        tenant: String,
        /// Milliseconds until the bucket refills enough for one request
        /// (0 when the bucket never refills).
        retry_after_ms: u64,
    },
    /// The service shed the request because the whole cluster's bounded
    /// in-flight work is saturated — not a per-tenant condition.  Maps to
    /// [`ServiceCode::Unavailable`] (wire 503): the request was valid and
    /// retrying after `retry_after_ms` may succeed.
    Overloaded {
        /// In-flight payload bytes already admitted when the request arrived.
        inflight_bytes: u64,
        /// The configured in-flight byte ceiling that was hit.
        limit_bytes: u64,
        /// Deterministic retry hint in milliseconds, scaled by how far past
        /// the ceiling the cluster is (same state ⇒ same hint).
        retry_after_ms: u64,
    },
}

impl SigmaError {
    /// The stable [`ServiceCode`] class of this error — the single place
    /// transport status is derived from (response envelopes call this instead
    /// of matching variants per call site).
    pub fn code(&self) -> ServiceCode {
        match self {
            SigmaError::Storage(StorageError::Crashed) => ServiceCode::Unavailable,
            SigmaError::Storage(_) => ServiceCode::Internal,
            SigmaError::FileNotFound(_) | SigmaError::BackupNotFound(_) => ServiceCode::NotFound,
            SigmaError::ChunkMissing { .. }
            | SigmaError::PayloadUnavailable { .. }
            | SigmaError::RestoreTruncated { .. } => ServiceCode::Internal,
            SigmaError::ChunkMigrated { .. } => ServiceCode::Unavailable,
            SigmaError::UnknownNode(_) => ServiceCode::NotFound,
            SigmaError::ClusterTooSmall => ServiceCode::Conflict,
            SigmaError::FileBoundariesRequired { .. } | SigmaError::InvalidConfig(_) => {
                ServiceCode::InvalidRequest
            }
            SigmaError::Unauthorized { .. } => ServiceCode::Unauthorized,
            SigmaError::QuotaExceeded { .. } | SigmaError::RateLimited { .. } => {
                ServiceCode::ResourceExhausted
            }
            SigmaError::Overloaded { .. } => ServiceCode::Unavailable,
        }
    }
}

impl std::fmt::Display for SigmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SigmaError::Storage(e) => write!(f, "storage error: {}", e),
            SigmaError::FileNotFound(id) => write!(f, "no file recipe for file id {}", id),
            SigmaError::BackupNotFound(id) => {
                write!(f, "no backup session with id {}", id)
            }
            SigmaError::ChunkMissing { node, fingerprint } => {
                write!(f, "chunk {} missing on node {}", fingerprint, node)
            }
            SigmaError::PayloadUnavailable { fingerprint } => write!(
                f,
                "payload for chunk {} was not stored (synthetic mode)",
                fingerprint
            ),
            SigmaError::ChunkMigrated { fingerprint, node } => {
                write!(f, "chunk {} was migrated to node {}", fingerprint, node)
            }
            SigmaError::RestoreTruncated {
                file_id,
                expected,
                actual,
            } => write!(
                f,
                "restore of file {} rebuilt {} bytes but the recipe records {}",
                file_id, actual, expected
            ),
            SigmaError::UnknownNode(id) => write!(f, "no active node with id {}", id),
            SigmaError::ClusterTooSmall => {
                write!(f, "cannot remove the last node of a cluster")
            }
            SigmaError::FileBoundariesRequired { router } => write!(
                f,
                "routing scheme {} requires file boundary information",
                router
            ),
            SigmaError::InvalidConfig(msg) => write!(f, "invalid configuration: {}", msg),
            SigmaError::Unauthorized { tenant } => {
                write!(f, "unauthorized request for tenant {:?}", tenant)
            }
            SigmaError::QuotaExceeded {
                tenant,
                requested_bytes,
                remaining_bytes,
            } => write!(
                f,
                "tenant {:?} quota exceeded: requested {} bytes, {} remaining",
                tenant, requested_bytes, remaining_bytes
            ),
            SigmaError::RateLimited {
                tenant,
                retry_after_ms,
            } => write!(
                f,
                "tenant {:?} rate limited (retry after {} ms)",
                tenant, retry_after_ms
            ),
            SigmaError::Overloaded {
                inflight_bytes,
                limit_bytes,
                retry_after_ms,
            } => write!(
                f,
                "service overloaded: {} of {} in-flight bytes (retry after {} ms)",
                inflight_bytes, limit_bytes, retry_after_ms
            ),
        }
    }
}

impl std::error::Error for SigmaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SigmaError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for SigmaError {
    fn from(e: StorageError) -> Self {
        SigmaError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_storage::ContainerId;

    #[test]
    fn display_and_source() {
        let e = SigmaError::from(StorageError::ContainerNotFound(ContainerId::new(3)));
        assert!(e.to_string().contains("container-3"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&SigmaError::FileNotFound(1)).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SigmaError>();
    }

    #[test]
    fn every_variant_maps_to_one_service_code() {
        let cases: Vec<(SigmaError, ServiceCode)> = vec![
            (
                SigmaError::Storage(StorageError::Crashed),
                ServiceCode::Unavailable,
            ),
            (
                SigmaError::Storage(StorageError::ContainerNotFound(ContainerId::new(1))),
                ServiceCode::Internal,
            ),
            (SigmaError::FileNotFound(9), ServiceCode::NotFound),
            (SigmaError::BackupNotFound(9), ServiceCode::NotFound),
            (
                SigmaError::ChunkMissing {
                    node: 0,
                    fingerprint: "aa".into(),
                },
                ServiceCode::Internal,
            ),
            (
                SigmaError::PayloadUnavailable {
                    fingerprint: "aa".into(),
                },
                ServiceCode::Internal,
            ),
            (
                SigmaError::ChunkMigrated {
                    fingerprint: "aa".into(),
                    node: 1,
                },
                ServiceCode::Unavailable,
            ),
            (
                SigmaError::RestoreTruncated {
                    file_id: 3,
                    expected: 4096,
                    actual: 1024,
                },
                ServiceCode::Internal,
            ),
            (SigmaError::UnknownNode(4), ServiceCode::NotFound),
            (SigmaError::ClusterTooSmall, ServiceCode::Conflict),
            (
                SigmaError::FileBoundariesRequired { router: "x".into() },
                ServiceCode::InvalidRequest,
            ),
            (
                SigmaError::InvalidConfig("bad".into()),
                ServiceCode::InvalidRequest,
            ),
            (
                SigmaError::Unauthorized { tenant: "t".into() },
                ServiceCode::Unauthorized,
            ),
            (
                SigmaError::QuotaExceeded {
                    tenant: "t".into(),
                    requested_bytes: 10,
                    remaining_bytes: 2,
                },
                ServiceCode::ResourceExhausted,
            ),
            (
                SigmaError::RateLimited {
                    tenant: "t".into(),
                    retry_after_ms: 50,
                },
                ServiceCode::ResourceExhausted,
            ),
            (
                SigmaError::Overloaded {
                    inflight_bytes: 4096,
                    limit_bytes: 2048,
                    retry_after_ms: 25,
                },
                ServiceCode::Unavailable,
            ),
        ];
        for (err, code) in cases {
            assert_eq!(err.code(), code, "wrong class for {:?}", err);
        }
    }

    #[test]
    fn service_code_wire_round_trips() {
        for code in [
            ServiceCode::Ok,
            ServiceCode::InvalidRequest,
            ServiceCode::NotFound,
            ServiceCode::Conflict,
            ServiceCode::Unauthorized,
            ServiceCode::ResourceExhausted,
            ServiceCode::Internal,
            ServiceCode::Unavailable,
        ] {
            assert_eq!(ServiceCode::from_wire(code.wire()), Some(code));
            assert_eq!(code.is_ok(), code == ServiceCode::Ok);
            assert!(!code.to_string().is_empty());
        }
        assert_eq!(ServiceCode::from_wire(999), None);
        assert_eq!(ServiceCode::from_wire(1), None);
    }

    #[test]
    fn new_service_variants_display_their_context() {
        let e = SigmaError::Unauthorized {
            tenant: "acme".into(),
        };
        assert!(e.to_string().contains("acme"));
        let e = SigmaError::QuotaExceeded {
            tenant: "acme".into(),
            requested_bytes: 2048,
            remaining_bytes: 100,
        };
        assert!(e.to_string().contains("2048"));
        assert!(e.to_string().contains("100"));
        let e = SigmaError::RateLimited {
            tenant: "acme".into(),
            retry_after_ms: 750,
        };
        assert!(e.to_string().contains("750"));
        let e = SigmaError::Overloaded {
            inflight_bytes: 9000,
            limit_bytes: 8192,
            retry_after_ms: 40,
        };
        for needle in ["9000", "8192", "40"] {
            assert!(e.to_string().contains(needle), "missing {}", needle);
        }
    }
}
