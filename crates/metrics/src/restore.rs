//! Restore-path observability: what the restore pipeline read, from where,
//! and at what amplification.
//!
//! Ingest throughput tells half the backup story; the half users actually wait
//! on is the restore, so it gets its own counter class.  [`RestoreCounters`]
//! aggregates per-operation observations behind atomics (same lock-light
//! contract as [`OpCounters`](crate::OpCounters)); [`RestoreSnapshot`] is both
//! the per-operation observation the service layer feeds in and the aggregate
//! view it reads back.  The headline derived figure is **read amplification**:
//! backend bytes read divided by logical bytes restored — 1.0 means every byte
//! read off the medium reached the user, below 1.0 means the container read
//! cache absorbed repeat visits.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic aggregate of restore observations; see the module docs.
#[derive(Debug, Default)]
pub struct RestoreCounters {
    restores: AtomicU64,
    chunks_read: AtomicU64,
    containers_opened: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    backend_bytes_read: AtomicU64,
    logical_bytes_restored: AtomicU64,
}

impl RestoreCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        RestoreCounters::default()
    }

    /// Folds one restore's observation into the aggregate.
    pub fn record(&self, obs: &RestoreSnapshot) {
        self.restores.fetch_add(obs.restores, Ordering::Relaxed);
        self.chunks_read
            .fetch_add(obs.chunks_read, Ordering::Relaxed);
        self.containers_opened
            .fetch_add(obs.containers_opened, Ordering::Relaxed);
        self.cache_hits.fetch_add(obs.cache_hits, Ordering::Relaxed);
        self.cache_misses
            .fetch_add(obs.cache_misses, Ordering::Relaxed);
        self.backend_bytes_read
            .fetch_add(obs.backend_bytes_read, Ordering::Relaxed);
        self.logical_bytes_restored
            .fetch_add(obs.logical_bytes_restored, Ordering::Relaxed);
    }

    /// A point-in-time copy; may tear by one observation against a concurrent
    /// [`record`](Self::record), which is fine for monitoring.
    pub fn snapshot(&self) -> RestoreSnapshot {
        RestoreSnapshot {
            restores: self.restores.load(Ordering::Relaxed),
            chunks_read: self.chunks_read.load(Ordering::Relaxed),
            containers_opened: self.containers_opened.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            backend_bytes_read: self.backend_bytes_read.load(Ordering::Relaxed),
            logical_bytes_restored: self.logical_bytes_restored.load(Ordering::Relaxed),
        }
    }
}

/// One restore's observation, or a point-in-time aggregate of many.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RestoreSnapshot {
    /// Restore operations observed (1 when used as a single observation).
    pub restores: u64,
    /// Chunk payloads decoded.
    pub chunks_read: u64,
    /// Distinct `(node, container)` visits the restore plans fanned out to.
    pub containers_opened: u64,
    /// Container-read-cache hits.
    pub cache_hits: u64,
    /// Container-read-cache misses.
    pub cache_misses: u64,
    /// Bytes actually read from storage backends.
    pub backend_bytes_read: u64,
    /// Logical bytes delivered to callers.
    pub logical_bytes_restored: u64,
}

impl RestoreSnapshot {
    /// Backend bytes read per logical byte restored (0 when nothing was
    /// restored).  1.0 is seek-free perfection on an uncached persistent
    /// backend; below 1.0 means the read cache absorbed repeat visits; volatile
    /// backends report 1.0 by construction (payloads served from RAM count as
    /// their own length).
    pub fn read_amplification(&self) -> f64 {
        if self.logical_bytes_restored == 0 {
            0.0
        } else {
            self.backend_bytes_read as f64 / self.logical_bytes_restored as f64
        }
    }

    /// Cache hit rate over batched container visits (0 when no cache lookups
    /// happened, e.g. caching is off or the backend is volatile).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_aggregate_across_observations() {
        let c = RestoreCounters::new();
        c.record(&RestoreSnapshot {
            restores: 1,
            chunks_read: 10,
            containers_opened: 2,
            cache_hits: 1,
            cache_misses: 1,
            backend_bytes_read: 4096,
            logical_bytes_restored: 8192,
        });
        c.record(&RestoreSnapshot {
            restores: 1,
            chunks_read: 5,
            containers_opened: 1,
            cache_hits: 1,
            cache_misses: 0,
            backend_bytes_read: 0,
            logical_bytes_restored: 2048,
        });
        let s = c.snapshot();
        assert_eq!(s.restores, 2);
        assert_eq!(s.chunks_read, 15);
        assert_eq!(s.containers_opened, 3);
        assert_eq!((s.cache_hits, s.cache_misses), (2, 1));
        assert_eq!(s.backend_bytes_read, 4096);
        assert_eq!(s.logical_bytes_restored, 10_240);
        assert!((s.read_amplification() - 0.4).abs() < 1e-12);
        assert!((s.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_derives_zeros() {
        let s = RestoreCounters::new().snapshot();
        assert_eq!(s, RestoreSnapshot::default());
        assert_eq!(s.read_amplification(), 0.0);
        assert_eq!(s.cache_hit_rate(), 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let c = std::sync::Arc::new(RestoreCounters::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record(&RestoreSnapshot {
                            restores: 1,
                            chunks_read: 2,
                            logical_bytes_restored: 3,
                            ..RestoreSnapshot::default()
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.restores, 4000);
        assert_eq!(s.chunks_read, 8000);
        assert_eq!(s.logical_bytes_restored, 12_000);
    }
}
