//! Garbage-collection reclaim throughput vs. the liveness threshold.
//!
//! Not a figure of the paper — its clusters are append-only — but the metric
//! that gates a retention policy once backups expire: how fast a mark-and-sweep
//! turns dead generations back into free space, and how the
//! [`SigmaConfig::gc_liveness_threshold`] knob trades reclaimed bytes against
//! compaction (rewrite) I/O.
//!
//! The banner prints a one-shot table sweeping the threshold over the
//! `retention_churn` scenario (reclaimed MiB, reclaim MB/s, drop/compact mix);
//! criterion then measures the full delete + mark-and-sweep cycle at a low and
//! a high threshold on a mid-size workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sigma_core::{BackupClient, DedupCluster, SigmaConfig};
use sigma_workloads::payload::{generational_payloads, GenerationalPayloadParams};
use std::sync::Arc;

fn bench_sigma(threshold: f64) -> SigmaConfig {
    SigmaConfig::builder()
        .super_chunk_size(64 * 1024)
        .container_capacity(256 * 1024)
        .gc_liveness_threshold(threshold)
        .build()
        .expect("valid bench config")
}

/// Builds a cluster holding `generations` generational waves from `streams`
/// streams and expires the oldest `expire` of them (deletion only — the sweep
/// is what gets measured).
fn expired_cluster(
    threshold: f64,
    streams: u64,
    generations: usize,
    expire: u64,
    bytes_per_stream: usize,
) -> Arc<DedupCluster> {
    let cluster = Arc::new(DedupCluster::with_similarity_router(
        4,
        bench_sigma(threshold),
    ));
    for (stream, dataset) in (0..streams)
        .map(|s| {
            generational_payloads(GenerationalPayloadParams {
                seed: 0x6C_0DE ^ s,
                generations,
                initial_size: bytes_per_stream,
                mutation_rate: 0.2,
                growth_per_generation: bytes_per_stream / 16,
            })
        })
        .enumerate()
    {
        for (generation, (name, data)) in dataset.iter().enumerate() {
            let client =
                BackupClient::with_generation(cluster.clone(), stream as u64, generation as u64);
            client
                .backup_bytes(name, data)
                .expect("payload backup cannot fail");
        }
    }
    cluster.flush();
    for generation in 0..expire {
        cluster
            .delete_generation(generation)
            .expect("generation exists");
    }
    cluster
}

fn report() {
    sigma_bench::banner(
        "gc compaction",
        "mark-and-sweep reclaim vs. the container liveness threshold",
    );
    let mut table = sigma_metrics::report::TextTable::new(vec![
        "threshold",
        "physical MiB",
        "reclaimed MiB",
        "dropped",
        "compacted",
        "kept partial",
        "reclaim MB/s",
    ]);
    for threshold in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let cluster = expired_cluster(threshold, 4, 4, 2, 4 << 20);
        let physical_before = cluster.stats().physical_bytes;
        let sw = sigma_metrics::Stopwatch::start();
        let gc = cluster.collect_garbage().expect("no faults in bench");
        let tp = sw.stop(gc.bytes_reclaimed);
        table.add_row(vec![
            format!("{:.2}", threshold),
            format!("{:.1}", physical_before as f64 / (1 << 20) as f64),
            format!("{:.1}", gc.bytes_reclaimed as f64 / (1 << 20) as f64),
            gc.containers_dropped.to_string(),
            gc.containers_compacted.to_string(),
            gc.containers_kept_partial.to_string(),
            format!("{:.1}", tp.mb_per_sec()),
        ]);
    }
    sigma_bench::print_table(
        "reclaim vs. liveness threshold (4 streams x 4 generations, oldest 2 expired)",
        &table.render(),
    );
}

fn bench(c: &mut Criterion) {
    report();

    let mut group = c.benchmark_group("gc_compaction");
    group.sample_size(10);
    for (label, threshold) in [("drop_only", 0.0), ("compact_aggressive", 1.0)] {
        // MB/s here is physical bytes *reclaimed* per second of sweep time.  A
        // sweep is destructive, so each iteration needs a fresh expired
        // cluster — built in the (untimed) setup half of iter_batched so the
        // reported rate covers the mark-and-sweep only, not cluster
        // construction.
        let reclaimable = {
            let cluster = expired_cluster(threshold, 2, 3, 1, 1 << 20);
            cluster
                .collect_garbage()
                .expect("no faults")
                .bytes_reclaimed
        };
        group.throughput(Throughput::Bytes(reclaimable.max(1)));
        group.bench_function(label, |b| {
            b.iter_batched(
                || expired_cluster(threshold, 2, 3, 1, 1 << 20),
                |cluster| cluster.collect_garbage().expect("no faults in bench"),
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
