//! The backup service over framed TCP: a config-driven middleware stack
//! (auth → quota → rate-limit → logging) in front of a two-node cluster,
//! served on a loopback socket and exercised by a [`TcpClient`].
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example service_tcp
//! ```
//!
//! The final line is asserted by CI:
//!
//! ```text
//! service_tcp: round-trip OK (restored 2097152 bytes, unauthorized=401, over-quota=429)
//! ```

use sigma_dedupe::prelude::*;
use std::sync::Arc;

/// The stack, declared as data rather than code.
const SERVICE_TOML: &str = r#"
[auth.tokens]
acme = "s3cret"

[quota.logical_bytes]
acme = 16777216            # 16 MiB logical budget

[rate_limit]
capacity = 100
refill_per_sec = 50.0

[logging]
enabled = true
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Arc::new(DedupCluster::with_similarity_router(
        2,
        SigmaConfig::default(),
    ));
    let stack = Arc::new(ServiceConfig::build(SERVICE_TOML, cluster)?);
    println!("middleware stack: {:?}", stack.middleware_names());

    let mut service = TcpService::bind("127.0.0.1:0", stack.clone())?;
    println!("serving on {}", service.local_addr());
    let mut client = TcpClient::connect(service.local_addr())?;

    // Back up 2 MiB of versioned data and restore it over the socket.
    let payload: Vec<u8> = (0..2 << 20)
        .map(|i| ((i * 2654435761usize) >> 13) as u8)
        .collect();
    let backup = client.call(
        &RequestEnvelope::new(
            1,
            "acme",
            Operation::Backup {
                file_name: "volume.img".into(),
                generation: 0,
            },
        )
        .with_payload(payload.clone())
        .with_token("s3cret"),
    )?;
    assert!(backup.is_ok(), "backup failed: {}", backup.message);
    let file_id = backup
        .metadata_u64(sigma_dedupe::service::backend::FILE_ID_KEY)
        .expect("backup reports file_id");
    println!(
        "backed up file {} ({} logical bytes)",
        file_id,
        payload.len()
    );

    let restore = client.call(
        &RequestEnvelope::new(2, "acme", Operation::Restore { file_id }).with_token("s3cret"),
    )?;
    assert_eq!(restore.payload, payload, "restore must be byte-identical");

    // Rejections travel as envelopes with their wire codes.
    let unauthorized =
        client.call(&RequestEnvelope::new(3, "acme", Operation::Stats).with_token("wrong"))?;
    assert_eq!(unauthorized.code, ServiceCode::Unauthorized);
    let over_quota = client.call(
        &RequestEnvelope::new(
            4,
            "acme",
            Operation::Backup {
                file_name: "too-big.img".into(),
                generation: 0,
            },
        )
        .with_payload(vec![0u8; 32 << 20])
        .with_token("s3cret"),
    )?;
    assert_eq!(over_quota.code, ServiceCode::ResourceExhausted);

    if let Some(log) = stack.log() {
        println!("\nrequest log ({} entries):", log.len());
        for e in log.entries() {
            println!(
                "  #{:<3} {:<18} {:>4}  {:>9}B in  {:>9}B out  {:.3}ms",
                e.request_id,
                e.operation,
                e.code.wire(),
                e.request_bytes,
                e.response_bytes,
                e.latency_secs * 1e3,
            );
        }
    }

    service.shutdown();
    println!(
        "service_tcp: round-trip OK (restored {} bytes, unauthorized={}, over-quota={})",
        restore.payload.len(),
        unauthorized.code.wire(),
        over_quota.code.wire(),
    );
    Ok(())
}
