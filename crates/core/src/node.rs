//! The deduplication server node.
//!
//! A node receives super-chunks routed to it, identifies duplicate chunks and stores
//! the unique ones in containers.  The intra-node design follows Section 3.3 of the
//! paper:
//!
//! 1. look the super-chunk's representative fingerprints up in the **similarity
//!    index**;
//! 2. **prefetch** the chunk-fingerprint lists of the matched containers into the
//!    chunk-fingerprint cache (one sequential metadata read per container);
//! 3. resolve every chunk fingerprint against the cache; only cache misses may fall
//!    back to the traditional on-disk chunk index (a simulated random disk read), and
//!    that fallback can be disabled entirely for the approximate mode of Fig. 5(b);
//! 4. store unique chunks into the per-stream open container and finally map the
//!    super-chunk's representative fingerprints to that container in the similarity
//!    index.

use crate::{ChunkDescriptor, Handprint, Result, SigmaConfig, SigmaError, SuperChunk};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use sigma_hashkit::Fingerprint;
use sigma_storage::{
    BackendKind, CacheStats, ChunkIndex, ChunkIndexStats, ChunkLocation, ClaimOutcome, Container,
    ContainerId, ContainerStore, ContainerStoreStats, DiskModel, DiskStats, FileBackend,
    FingerprintCache, Journal, JournalRecord, MemoryBackend, NodeSnapshot, SimDiskBackend,
    SimilarityIndex, SimilarityIndexStats, StorageBackend, StreamId,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Result of deduplicating one super-chunk on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SuperChunkReceipt {
    /// Node that processed the super-chunk.
    pub node_id: usize,
    /// Chunks found to be duplicates (not stored again).
    pub duplicate_chunks: u64,
    /// Chunks stored as new unique data.
    pub unique_chunks: u64,
    /// Bytes of duplicate chunks.
    pub duplicate_bytes: u64,
    /// Bytes of unique chunks (what a source-deduplicating client must transfer).
    pub unique_bytes: u64,
    /// Duplicate chunks resolved by the chunk-fingerprint cache.
    pub cache_hits: u64,
    /// Duplicate chunks resolved by the on-disk chunk-index fallback.
    pub index_fallback_hits: u64,
    /// Containers prefetched into the cache for this super-chunk.
    pub containers_prefetched: u64,
}

impl SuperChunkReceipt {
    /// Total chunks in the super-chunk.
    pub fn total_chunks(&self) -> u64 {
        self.duplicate_chunks + self.unique_chunks
    }

    /// Total logical bytes in the super-chunk.
    pub fn logical_bytes(&self) -> u64 {
        self.duplicate_bytes + self.unique_bytes
    }
}

/// Point-in-time statistics of a [`DedupNode`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct NodeStats {
    /// Node identifier.
    pub node_id: usize,
    /// Logical bytes received.
    pub logical_bytes: u64,
    /// Physical bytes stored after deduplication.
    pub physical_bytes: u64,
    /// Total chunks received.
    pub total_chunks: u64,
    /// Unique chunks stored.
    pub unique_chunks: u64,
    /// Super-chunks processed.
    pub super_chunks: u64,
    /// Deduplication ratio (logical / physical); 1.0 when nothing is stored.
    pub dedup_ratio: f64,
    /// Similarity-index statistics.
    pub similarity_index: SimilarityIndexStats,
    /// Chunk-fingerprint cache statistics.
    pub cache: CacheStats,
    /// On-disk chunk-index statistics.
    pub chunk_index: ChunkIndexStats,
    /// Container store statistics.
    pub containers: ContainerStoreStats,
    /// Simulated disk statistics.
    pub disk: DiskStats,
    /// Estimated RAM used by the similarity index, in bytes.
    pub similarity_index_ram_bytes: u64,
    /// Estimated size of the full chunk index, in bytes (what a traditional design
    /// would need to keep hot).
    pub chunk_index_bytes: u64,
}

/// A deduplication server node.
///
/// All methods take `&self`; internal state is protected by striped locks so that
/// multiple backup streams (threads) can be deduplicated in parallel, as in the
/// paper's multi-stream prototype.
///
/// # Example
///
/// ```
/// use sigma_core::{DedupNode, SigmaConfig, SuperChunk};
/// use sigma_hashkit::FingerprintAlgorithm;
///
/// let node = DedupNode::new(0, &SigmaConfig::default());
/// let chunks: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 4096]).collect();
/// let sc = SuperChunk::from_payloads(FingerprintAlgorithm::Sha1, 0, chunks);
/// let handprint = sc.handprint(8);
///
/// let first = node.process_super_chunk(0, &sc, &handprint).unwrap();
/// assert_eq!(first.unique_chunks, 4);
/// let second = node.process_super_chunk(0, &sc, &handprint).unwrap();
/// assert_eq!(second.duplicate_chunks, 4);
/// assert!(node.stats().dedup_ratio > 1.9);
/// ```
#[derive(Debug)]
pub struct DedupNode {
    id: usize,
    chunk_index_fallback: bool,
    similarity_index: SimilarityIndex,
    cache: FingerprintCache,
    chunk_index: ChunkIndex,
    store: ContainerStore,
    disk: Arc<DiskModel>,
    logical_bytes: AtomicU64,
    total_chunks: AtomicU64,
    unique_chunks: AtomicU64,
    super_chunks: AtomicU64,
    /// Fingerprints written to the currently open container of each stream; catches
    /// duplicates within the active container before it is sealed.
    open_fingerprints: Mutex<HashMap<StreamId, (ContainerId, HashSet<Fingerprint>)>>,
    /// Forwarding tombstones: containers migrated away by the rebalancer, mapped to
    /// the node that received them.  Chunk-index entries for migrated chunks stay in
    /// place, so a restore that lands here resolves the chunk's container, finds it
    /// gone from the store, and follows the tombstone to the new owner.
    forwarding: RwLock<HashMap<ContainerId, usize>>,
    /// Write-ahead journal (None unless [`SigmaConfig::durability`] is set): the
    /// node's durable medium, surviving a crash that destroys everything above.
    journal: Option<Arc<Journal>>,
}

/// What one journal replay rebuilt — returned by [`DedupNode::recover`] and
/// [`DedupCluster::restart_node`](crate::DedupCluster::restart_node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// The recovered node's stable ID.
    pub node_id: usize,
    /// Journal frames replayed.
    pub frames_replayed: u64,
    /// Journal bytes replayed.
    pub bytes_replayed: u64,
    /// Trailing journal bytes discarded as a torn or corrupt tail.
    pub bytes_discarded: u64,
    /// Sealed containers reinstalled (locally sealed and adopted).
    pub containers_recovered: u64,
    /// Chunk-index entries rebuilt.
    pub chunks_indexed: u64,
    /// Similarity-index entries rebuilt.
    pub similarity_entries: u64,
    /// Forwarding tombstones restored.
    pub tombstones_restored: u64,
    /// Duplicated adopt records skipped by the origin-keyed idempotence guard.
    pub duplicate_adopts_skipped: u64,
    /// Garbage-collection records replayed (`GcCompact` + `GcDrop`): the sweep
    /// history folded back into the recovered state, so recovery converges to
    /// the post-GC world rather than resurrecting collected containers.
    pub gc_records_replayed: u64,
    /// `RecipeDelete` audit records seen during replay.
    pub recipe_deletes_replayed: u64,
    /// Half-completed migrations finished by cluster-level reconciliation (only
    /// set by [`DedupCluster::restart_node`](crate::DedupCluster::restart_node)).
    pub reconciled_migrations: u64,
    /// Container objects on the persistent backend that matched the replayed
    /// state byte-for-byte (always 0 on volatile backends).
    pub backend_objects_verified: u64,
    /// Container objects rewritten from the journal-derived truth or swept as
    /// orphans during post-replay reconciliation (always 0 on volatile
    /// backends, and 0 on a healthy persistent medium).
    pub backend_objects_repaired: u64,
}

/// What one node-local GC sweep reclaimed — the per-node half of a
/// [`GcReport`](crate::GcReport).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeGcReport {
    /// The swept node's stable ID.
    pub node_id: usize,
    /// Sealed containers examined.
    pub containers_scanned: u64,
    /// Containers dropped outright (no live chunks).
    pub containers_dropped: u64,
    /// Containers compacted (live chunks rewritten into a fresh container).
    pub containers_compacted: u64,
    /// Containers kept despite dead bytes (liveness at or above the threshold).
    pub containers_kept_partial: u64,
    /// Dead chunks discarded by drops and compactions.
    pub chunks_discarded: u64,
    /// Physical bytes reclaimed.
    pub bytes_reclaimed: u64,
}

impl DedupNode {
    /// Creates a node with identifier `id` configured by `config`.
    ///
    /// With [`SigmaConfig::durability`] set, the node opens a write-ahead
    /// [`Journal`] and writes through it on every seal, adoption, similarity
    /// publication and tombstone, so it can later be rebuilt by
    /// [`recover`](Self::recover).
    pub fn new(id: usize, config: &SigmaConfig) -> Self {
        Self::empty(id, config, config.durability)
    }

    /// The one place a node's structures are wired together: `new` asks for a
    /// journal for immediate write-through, `recover` builds without one (replay
    /// must not append to the journal it is reading) and attaches it afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the configured file backend's directory cannot be created or
    /// reset — a node whose durable medium is unusable must not come up.
    fn empty(id: usize, config: &SigmaConfig, journaled: bool) -> Self {
        let disk = Arc::new(DiskModel::new(config.disk_params));
        let backend = Self::build_backend(id, config, &disk);
        if journaled && backend.persistent() {
            // A brand-new durable node starts from a clean slate: stale objects
            // from a previous incarnation in a reused directory must not leak
            // into (or shadow) the new node's state.  Recovery (`journaled ==
            // false` here, journal attached afterwards) never wipes.
            for obj in backend.list().expect("scan node storage directory") {
                backend.delete(obj).expect("reset node storage directory");
            }
        }
        let journal = journaled.then(|| {
            Arc::new(Journal::with_backend(backend.clone()).expect("initialize journal object"))
        });
        let mut store = ContainerStore::new(config.container_capacity)
            .with_backend(backend)
            .with_read_cache_bytes(config.restore_cache_bytes);
        if let Some(journal) = &journal {
            store = store.with_journal(journal.clone());
        }
        DedupNode {
            id,
            chunk_index_fallback: config.chunk_index_fallback,
            similarity_index: SimilarityIndex::new(config.similarity_index_locks),
            cache: FingerprintCache::new(config.cache_containers),
            chunk_index: ChunkIndex::with_disk(disk.clone()),
            store,
            disk,
            logical_bytes: AtomicU64::new(0),
            total_chunks: AtomicU64::new(0),
            unique_chunks: AtomicU64::new(0),
            super_chunks: AtomicU64::new(0),
            open_fingerprints: Mutex::new(HashMap::new()),
            forwarding: RwLock::new(HashMap::new()),
            journal,
        }
    }

    /// Builds the storage backend [`SigmaConfig::storage_backend`] selects.
    ///
    /// # Panics
    ///
    /// Panics when the file backend's directory cannot be opened; config
    /// validation guarantees `storage_root` is present for the file kind.
    fn build_backend(
        id: usize,
        config: &SigmaConfig,
        disk: &Arc<DiskModel>,
    ) -> Arc<dyn StorageBackend> {
        match config.storage_backend {
            BackendKind::Memory => Arc::new(MemoryBackend::new()),
            BackendKind::SimDisk => Arc::new(SimDiskBackend::new(disk.clone())),
            BackendKind::File => {
                let dir = config
                    .node_storage_dir(id)
                    .expect("validated: file backend has a storage root");
                Arc::new(FileBackend::open(dir).expect("open node storage directory"))
            }
        }
    }

    /// Rebuilds a node from its write-ahead journal (crash recovery).
    ///
    /// The journal's torn tail — an append interrupted by the crash — is
    /// discarded, then every surviving record is replayed in order: containers are
    /// reinstalled under their original identifiers, the chunk index and
    /// similarity index are rebuilt, forwarding tombstones are restored (dropping
    /// the container data they tombstone, exactly as the live path does), and the
    /// ingest counters come back from the last durable checkpoint.  The journal is
    /// then reattached as the recovered node's write-ahead log.
    ///
    /// The replay state machine is idempotent where the crash protocol needs it
    /// to be: a duplicated [`JournalRecord::ContainerAdopt`] is skipped by the
    /// origin-keyed adoption ledger, and re-upserted index entries overwrite
    /// themselves.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice (a corrupt journal truncates, it does not
    /// error), but returns `Result` so future integrity checks can refuse.
    pub fn recover(
        id: usize,
        config: &SigmaConfig,
        journal: Arc<Journal>,
    ) -> Result<(Self, RecoveryReport)> {
        let node = Self::empty(id, config, false);
        // The journal survives the crash; the dead node's DiskModel does not.
        // Re-target it first so the replay read and every later append is
        // charged to the recovered node's disk.
        journal.attach_disk(node.disk.clone());
        let (records, summary) = journal.recover_truncating();
        let mut report = RecoveryReport {
            node_id: id,
            frames_replayed: summary.frames,
            bytes_replayed: summary.bytes_replayed,
            bytes_discarded: summary.bytes_discarded,
            ..RecoveryReport::default()
        };
        for record in records {
            node.apply_record(record, &mut report);
        }
        node.prune_dangling_similarity_entries();
        // On a persistent backend, reconcile the container objects on the
        // medium with the journal-derived truth: rewrite missing/mismatched
        // objects, sweep orphans whose seal was torn away with the tail.
        let (verified, repaired) = node
            .store
            .sync_backend_objects()
            .map_err(SigmaError::Storage)?;
        report.backend_objects_verified = verified;
        report.backend_objects_repaired = repaired;
        let mut node = node;
        node.store = node.store.with_journal(journal.clone());
        node.journal = Some(journal);
        Ok((node, report))
    }

    /// Rebuilds a node from the on-disk directory a previous *process* left
    /// behind — the restart path for [`BackendKind::File`] storage, where the
    /// journal handle itself did not survive.
    ///
    /// Opens `storage_root/node-<id>`, adopts the `journal.wal` found there and
    /// runs the ordinary [`recover`](Self::recover) replay against it (torn
    /// tails are truncated, container objects reconciled).
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::InvalidConfig`] when `config` does not select the
    /// file backend, and [`SigmaError::Storage`] when the directory cannot be
    /// opened or read.
    pub fn recover_from_dir(id: usize, config: &SigmaConfig) -> Result<(Self, RecoveryReport)> {
        let dir = config.node_storage_dir(id).ok_or_else(|| {
            SigmaError::InvalidConfig(
                "recover_from_dir requires storage_backend = file and a storage_root".to_string(),
            )
        })?;
        let backend: Arc<dyn StorageBackend> =
            Arc::new(FileBackend::open(dir).map_err(SigmaError::Storage)?);
        let journal = Arc::new(Journal::open(backend).map_err(SigmaError::Storage)?);
        Self::recover(id, config, journal)
    }

    /// Drops replayed similarity entries whose container never became durable.
    ///
    /// A `SimilarityPublish` record may name a container that was still *open*
    /// at the crash (its seal never journaled): the mapping points at data that
    /// no longer exists, would inflate resemblance counts, and — worse — the
    /// never-sealed container's ID is still allocatable, so a later seal could
    /// silently alias it.  Pruning restores the invariant that every similarity
    /// entry names a sealed or tombstoned container.
    fn prune_dangling_similarity_entries(&self) {
        let dangling: HashSet<ContainerId> = self
            .similarity_index
            .entries()
            .into_iter()
            .map(|(_, cid)| cid)
            .filter(|cid| {
                !self.store.contains_sealed(cid) && !self.forwarding.read().contains_key(cid)
            })
            .collect();
        for cid in dangling {
            let _ = self.similarity_index.extract_container(cid);
        }
    }

    /// Applies one replayed journal record to this (journal-detached) node.
    fn apply_record(&self, record: JournalRecord, report: &mut RecoveryReport) {
        match record {
            JournalRecord::ContainerSeal { container } => {
                // The seal record is self-sufficient: installing it also indexes
                // its chunks, so a crash between the seal frame and its finalize
                // frame cannot leave durable chunks unreachable.
                self.index_container_records(&container);
                report.chunks_indexed += container.chunk_count() as u64;
                self.store.install_recovered(None, container);
                report.containers_recovered += 1;
            }
            JournalRecord::ChunkIndexFinalize { entries, .. } => {
                // Redundant with the seal/adopt replay by design (belt and
                // braces); upserting identical locations is a no-op.
                for (fp, loc) in entries {
                    self.chunk_index.insert(fp, loc);
                }
            }
            JournalRecord::SimilarityPublish { container, rfps } => {
                for rfp in rfps {
                    self.similarity_index.insert(rfp, container);
                }
                report.similarity_entries += 1;
            }
            JournalRecord::ContainerAdopt {
                origin_node,
                origin_container,
                container,
                rfps,
            } => {
                let origin = Some((origin_node, origin_container));
                // Check-then-install is race-free here: replay is single-threaded
                // on a node nothing else references yet.
                if self.store.install_recovered(origin, container.clone()) {
                    self.index_container_records(&container);
                    report.chunks_indexed += container.chunk_count() as u64;
                    for rfp in rfps {
                        self.similarity_index.insert(rfp, container.id());
                    }
                    report.containers_recovered += 1;
                } else {
                    report.duplicate_adopts_skipped += 1;
                }
            }
            JournalRecord::Tombstone {
                container,
                successor,
            } => {
                self.forwarding
                    .write()
                    .insert(container, successor as usize);
                self.store.remove_sealed(&container);
                // Mirror the live migration: the similarity entries travelled
                // with the container.
                let _ = self.similarity_index.extract_container(container);
                report.tombstones_restored += 1;
            }
            JournalRecord::RecipeDelete { .. } => {
                // Recipes are director state; the record is a durable witness
                // that later GC records were computed against a post-delete
                // root set (and a crash boundary between deletion and sweep).
                report.recipe_deletes_replayed += 1;
            }
            JournalRecord::GcCompact {
                victim,
                replacement,
                rfps,
            } => {
                // One atomic swap, exactly as the live sweep performed it: the
                // victim (installed by an earlier seal/adopt replay) goes, its
                // dead chunk entries with it; the replacement comes back with
                // its chunks indexed at their new offsets and the travelling
                // RFPs re-homed.
                if let Some(old) = self
                    .store
                    .apply_compaction_recovered(&victim, replacement.clone())
                {
                    for record in &old.meta().records {
                        self.chunk_index.remove_if_at(&record.fingerprint, victim);
                    }
                }
                self.index_container_records(&replacement);
                let _ = self.similarity_index.extract_container(victim);
                for rfp in rfps {
                    self.similarity_index.insert(rfp, replacement.id());
                }
                report.gc_records_replayed += 1;
            }
            JournalRecord::GcDrop { container } => {
                // Unlike a tombstone, nothing forwards anywhere: the data was
                // unreferenced, so its index and similarity entries die with it.
                if let Some(old) = self.store.remove_sealed(&container) {
                    for record in &old.meta().records {
                        self.chunk_index
                            .remove_if_at(&record.fingerprint, container);
                    }
                }
                let _ = self.similarity_index.extract_container(container);
                report.gc_records_replayed += 1;
            }
            JournalRecord::StatsCheckpoint {
                logical_bytes,
                total_chunks,
                unique_chunks,
                super_chunks,
            } => {
                self.logical_bytes.store(logical_bytes, Ordering::Relaxed);
                self.total_chunks.store(total_chunks, Ordering::Relaxed);
                self.unique_chunks.store(unique_chunks, Ordering::Relaxed);
                self.super_chunks.store(super_chunks, Ordering::Relaxed);
            }
            JournalRecord::Snapshot(snapshot) => {
                self.apply_snapshot(snapshot, report);
            }
        }
    }

    /// Applies a compaction snapshot (always the first record of a compacted log).
    fn apply_snapshot(&self, snapshot: NodeSnapshot, report: &mut RecoveryReport) {
        let NodeSnapshot {
            next_container_id,
            containers,
            chunk_entries,
            similarity,
            tombstones,
            logical_bytes,
            total_chunks,
            unique_chunks,
            super_chunks,
        } = snapshot;
        for (origin, container) in containers {
            if self.store.install_recovered(origin, container) {
                report.containers_recovered += 1;
            } else {
                report.duplicate_adopts_skipped += 1;
            }
        }
        report.chunks_indexed += chunk_entries.len() as u64;
        for (fp, loc) in chunk_entries {
            self.chunk_index.insert(fp, loc);
        }
        report.similarity_entries += similarity.len() as u64;
        for (rfp, cid) in similarity {
            self.similarity_index.insert(rfp, cid);
        }
        report.tombstones_restored += tombstones.len() as u64;
        {
            let mut forwarding = self.forwarding.write();
            for (cid, successor) in tombstones {
                forwarding.insert(cid, successor as usize);
            }
        }
        self.store.restore_next_id(next_container_id);
        self.logical_bytes.store(logical_bytes, Ordering::Relaxed);
        self.total_chunks.store(total_chunks, Ordering::Relaxed);
        self.unique_chunks.store(unique_chunks, Ordering::Relaxed);
        self.super_chunks.store(super_chunks, Ordering::Relaxed);
    }

    fn index_container_records(&self, container: &Container) {
        for record in &container.meta().records {
            self.chunk_index.insert(
                record.fingerprint,
                ChunkLocation {
                    container: container.id(),
                    offset: record.offset,
                    len: record.len,
                },
            );
        }
    }

    /// The node identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Counts how many of a handprint's representative fingerprints this node has in
    /// its similarity index (the resemblance value returned to a pre-routing query,
    /// step 2 of Algorithm 1).
    pub fn resemblance_count(&self, handprint: &Handprint) -> usize {
        self.similarity_index
            .count_matches(handprint.representative_fingerprints())
    }

    /// Counts how many of the given chunk fingerprints this node already stores.
    ///
    /// Used by the *stateful* baseline router, which consults every node's stored
    /// state; the probe does not charge simulated disk I/O (the paper's stateful
    /// scheme keeps a sampled in-RAM index for this purpose).
    pub fn count_stored_fingerprints(&self, fingerprints: &[Fingerprint]) -> usize {
        fingerprints
            .iter()
            .filter(|fp| self.chunk_index.contains_silent(fp))
            .count()
    }

    /// Physical bytes stored on this node (the storage-usage figure used for load
    /// balancing and skew metrics).
    pub fn storage_usage(&self) -> u64 {
        self.store.physical_bytes()
    }

    /// Logical bytes routed to this node so far.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes.load(Ordering::Relaxed)
    }

    /// Deduplicates one super-chunk arriving on `stream`.
    ///
    /// The handprint is passed in (rather than recomputed) because in the real
    /// protocol the backup client computes it once and sends it both to the routing
    /// candidates and to the target node.
    ///
    /// # Errors
    ///
    /// Returns an error if a unique chunk cannot be stored (e.g. it exceeds the
    /// container capacity).
    pub fn process_super_chunk(
        &self,
        stream: StreamId,
        super_chunk: &SuperChunk,
        handprint: &Handprint,
    ) -> Result<SuperChunkReceipt> {
        let mut receipt = SuperChunkReceipt {
            node_id: self.id,
            ..SuperChunkReceipt::default()
        };

        // Step 1 + 2: similarity-index lookup and container prefetch.
        let matched = self
            .similarity_index
            .matched_containers(handprint.representative_fingerprints());
        for cid in &matched {
            if !self.cache.contains_container(*cid) {
                if let Ok(meta) = self.store.read_metadata(cid) {
                    self.cache.insert_container(*cid, meta.fingerprints());
                    receipt.containers_prefetched += 1;
                }
            }
        }

        // Step 3: resolve each chunk.
        let mut first_target: Option<ContainerId> = None;
        for (i, descriptor) in super_chunk.descriptors().iter().enumerate() {
            let resolution = self.resolve_chunk(stream, descriptor, super_chunk.payload(i))?;
            match resolution {
                ChunkResolution::CacheHit => {
                    receipt.duplicate_chunks += 1;
                    receipt.duplicate_bytes += descriptor.len as u64;
                    receipt.cache_hits += 1;
                }
                ChunkResolution::IndexHit => {
                    receipt.duplicate_chunks += 1;
                    receipt.duplicate_bytes += descriptor.len as u64;
                    receipt.index_fallback_hits += 1;
                }
                ChunkResolution::OpenContainerHit => {
                    receipt.duplicate_chunks += 1;
                    receipt.duplicate_bytes += descriptor.len as u64;
                    receipt.cache_hits += 1;
                }
                ChunkResolution::Stored(container) => {
                    receipt.unique_chunks += 1;
                    receipt.unique_bytes += descriptor.len as u64;
                    if first_target.is_none() {
                        first_target = Some(container);
                    }
                }
            }
        }

        // Step 4: index the super-chunk's handprint under the container it went to.
        let target = first_target.or_else(|| matched.first().copied());
        if let Some(cid) = target {
            // Write-ahead: the publication is journaled before it lands in the
            // similarity index, so recovery rebuilds exactly the mappings that
            // were durably acknowledged.
            if let Some(journal) = &self.journal {
                journal.append(&JournalRecord::SimilarityPublish {
                    container: cid,
                    rfps: handprint.representative_fingerprints().to_vec(),
                })?;
            }
            for rfp in handprint.representative_fingerprints() {
                self.similarity_index.insert(*rfp, cid);
            }
        }

        self.logical_bytes
            .fetch_add(super_chunk.logical_size(), Ordering::Relaxed);
        self.total_chunks
            .fetch_add(super_chunk.chunk_count() as u64, Ordering::Relaxed);
        self.unique_chunks
            .fetch_add(receipt.unique_chunks, Ordering::Relaxed);
        self.super_chunks.fetch_add(1, Ordering::Relaxed);
        Ok(receipt)
    }

    /// Deduplicates a batch of super-chunks arriving on `stream`, in order.
    ///
    /// Handprints are computed with `handprint_size` representative fingerprints
    /// each.  This is the node-side half of the cluster's batched ingest entry
    /// points: one call per stream, stream order preserved.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first storage error.
    pub fn process_super_chunk_batch(
        &self,
        stream: StreamId,
        super_chunks: &[SuperChunk],
        handprint_size: usize,
    ) -> Result<Vec<SuperChunkReceipt>> {
        super_chunks
            .iter()
            .map(|sc| self.process_super_chunk(stream, sc, &sc.handprint(handprint_size)))
            .collect()
    }

    fn resolve_chunk(
        &self,
        stream: StreamId,
        descriptor: &ChunkDescriptor,
        payload: Option<&[u8]>,
    ) -> Result<ChunkResolution> {
        let fp = descriptor.fingerprint;

        // 3a: chunk-fingerprint cache (container-locality hits).
        if self.cache.lookup(&fp).is_some() {
            return Ok(ChunkResolution::CacheHit);
        }

        // 3b: fingerprints already written to this stream's open container.
        {
            let open = self.open_fingerprints.lock();
            if let Some((cid, set)) = open.get(&stream) {
                if self.store.open_container(stream) == Some(*cid) && set.contains(&fp) {
                    return Ok(ChunkResolution::OpenContainerHit);
                }
            }
        }

        // An oversized chunk can never be stored, so it must be rejected *before*
        // any claim: if it were claimed first and the store then failed, a
        // concurrent stream racing on the same fingerprint would have seen
        // `Duplicate` and reported a successful backup referencing a chunk that
        // ends up existing nowhere.  Failing here keeps every racer on the same
        // error path the serial client takes.
        if descriptor.len as usize > self.store.container_capacity() {
            return Err(sigma_storage::StorageError::ChunkTooLarge {
                chunk_size: descriptor.len as usize,
                container_capacity: self.store.container_capacity(),
            }
            .into());
        }

        // 3c: optional on-disk chunk-index fallback.  In exact mode the index
        // doubles as the uniqueness arbiter: the fingerprint is *claimed* before
        // the chunk is appended to a container, so of several streams racing on the
        // same new fingerprint exactly one stores it and the rest see a duplicate.
        // This keeps the unique-chunk set — and the node's physical bytes —
        // identical whether super-chunks arrive serially or concurrently.
        if self.chunk_index_fallback {
            match self.chunk_index.claim(fp) {
                ClaimOutcome::Duplicate => return Ok(ChunkResolution::IndexHit),
                ClaimOutcome::Claimed => {}
            }
        }

        // Unique: store it.
        let stored = match payload {
            Some(bytes) => self.store.store_chunk(stream, fp, bytes),
            None => self.store.store_chunk_synthetic(stream, fp, descriptor.len),
        };
        let stored = match stored {
            Ok(stored) => stored,
            Err(e) => {
                if self.chunk_index_fallback {
                    // Roll the claim back so a later, smaller-capacity retry (or
                    // another stream) can store the chunk.
                    self.chunk_index.abandon(&fp);
                }
                return Err(e.into());
            }
        };
        let location = ChunkLocation {
            container: stored.container,
            offset: stored.offset,
            len: stored.len,
        };
        if self.chunk_index_fallback {
            self.chunk_index.finalize(fp, location);
        } else {
            self.chunk_index.insert(fp, location);
        }
        // Track the open container's fingerprints for intra-container duplicate hits.
        {
            let mut open = self.open_fingerprints.lock();
            let entry = open
                .entry(stream)
                .or_insert_with(|| (stored.container, HashSet::new()));
            if entry.0 != stored.container {
                *entry = (stored.container, HashSet::new());
            }
            entry.1.insert(fp);
        }
        Ok(ChunkResolution::Stored(stored.container))
    }

    /// Reads a chunk's payload back (restore path).
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::ChunkMissing`] when the fingerprint is unknown to this
    /// node, [`SigmaError::PayloadUnavailable`] when the chunk was stored in
    /// synthetic (trace-driven) mode, and [`SigmaError::ChunkMigrated`] when the
    /// chunk's container was migrated away by the rebalancer — the error names the
    /// node now holding it, and [`DedupCluster`](crate::DedupCluster) restores
    /// follow that forwarding chain transparently.
    pub fn read_chunk(&self, fingerprint: &Fingerprint) -> Result<Vec<u8>> {
        let location =
            self.chunk_index
                .lookup(fingerprint)
                .ok_or_else(|| SigmaError::ChunkMissing {
                    node: self.id,
                    fingerprint: fingerprint.to_string(),
                })?;
        match self.store.read_chunk(&location.container, fingerprint) {
            Ok(data) => Ok(data),
            Err(sigma_storage::StorageError::ChunkNotInContainer { .. }) => {
                Err(SigmaError::PayloadUnavailable {
                    fingerprint: fingerprint.to_string(),
                })
            }
            Err(sigma_storage::StorageError::ContainerNotFound(cid)) => {
                match self.forwarded_to(&cid) {
                    Some(node) => Err(SigmaError::ChunkMigrated {
                        fingerprint: fingerprint.to_string(),
                        node,
                    }),
                    None => Err(SigmaError::ChunkMissing {
                        node: self.id,
                        fingerprint: fingerprint.to_string(),
                    }),
                }
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Resolves a fingerprint to its record extent for the planned restore
    /// pipeline, with exactly [`read_chunk`](Self::read_chunk)'s error mapping
    /// (including the tombstone hop into [`SigmaError::ChunkMigrated`]) but
    /// without touching any payload.  The chunk-index lookup is charged
    /// identically to the serial path's.
    ///
    /// # Errors
    ///
    /// Same as [`read_chunk`](Self::read_chunk), except that a synthetic chunk
    /// is not detected here — it still resolves to an extent, and surfaces as
    /// [`SigmaError::PayloadUnavailable`] when the batched read rejects it.
    pub fn plan_chunk_read(&self, fingerprint: &Fingerprint) -> Result<ChunkLocation> {
        let location =
            self.chunk_index
                .lookup(fingerprint)
                .ok_or_else(|| SigmaError::ChunkMissing {
                    node: self.id,
                    fingerprint: fingerprint.to_string(),
                })?;
        if self.store.contains_sealed(&location.container)
            || self.store.contains_open(&location.container)
        {
            return Ok(location);
        }
        match self.forwarded_to(&location.container) {
            Some(node) => Err(SigmaError::ChunkMigrated {
                fingerprint: fingerprint.to_string(),
                node,
            }),
            None => Err(SigmaError::ChunkMissing {
                node: self.id,
                fingerprint: fingerprint.to_string(),
            }),
        }
    }

    /// Reads a batch of chunk payloads out of one of this node's containers,
    /// decoding each directly into its output slice — the per-container unit
    /// of work of the restore pipeline (see
    /// [`ContainerStore::read_chunks_batched`]).
    ///
    /// # Errors
    ///
    /// Maps storage errors exactly as [`read_chunk`](Self::read_chunk) does:
    /// a synthetic chunk surfaces as [`SigmaError::PayloadUnavailable`], a
    /// migrated-away container as [`SigmaError::ChunkMigrated`] (or
    /// [`SigmaError::ChunkMissing`] when no tombstone points onward).  On error
    /// the output slices are partially written; the pipeline falls back to the
    /// serial path for the whole group.
    pub fn read_chunks_batched(
        &self,
        container: &ContainerId,
        fetches: &mut [sigma_storage::ChunkFetch<'_>],
    ) -> Result<sigma_storage::BatchedReadStats> {
        match self.store.read_chunks_batched(container, fetches) {
            Ok(stats) => Ok(stats),
            Err(sigma_storage::StorageError::ChunkNotInContainer { fingerprint, .. }) => {
                Err(SigmaError::PayloadUnavailable { fingerprint })
            }
            Err(sigma_storage::StorageError::ContainerNotFound(cid)) => {
                match self.forwarded_to(&cid) {
                    Some(node) => Err(SigmaError::ChunkMigrated {
                        fingerprint: fetches
                            .first()
                            .map(|f| f.fingerprint.to_string())
                            .unwrap_or_default(),
                        node,
                    }),
                    None => Err(SigmaError::ChunkMissing {
                        node: self.id,
                        fingerprint: fetches
                            .first()
                            .map(|f| f.fingerprint.to_string())
                            .unwrap_or_default(),
                    }),
                }
            }
            Err(e) => Err(e.into()),
        }
    }

    /// The container read cache's counters, `None` when caching is disabled.
    pub fn read_cache_stats(&self) -> Option<sigma_storage::ReadCacheStats> {
        self.store.read_cache_stats()
    }

    // ---- Garbage collection (used by `DedupCluster::collect_garbage`) ----

    /// The finalized chunk-index location of a fingerprint, without charging
    /// simulated disk I/O or lookup statistics — the GC mark phase's resolver.
    pub fn chunk_location(&self, fingerprint: &Fingerprint) -> Option<ChunkLocation> {
        self.chunk_index.lookup_silent(fingerprint)
    }

    /// True if `container` is currently open (being filled by some stream).
    /// Open containers are invisible to the GC sweep: their chunks are not yet
    /// acknowledged and their container cannot be scored or compacted.
    pub fn has_open_container(&self, container: &ContainerId) -> bool {
        self.store.contains_open(container)
    }

    /// Durably notes that a file recipe referencing this node was deleted.
    ///
    /// Best-effort and advisory: recipes are director state, so the record has
    /// no structural replay effect — it witnesses that any later GC record was
    /// computed against a post-delete root set and gives fault plans a journal
    /// boundary between deletion and sweep.  A crashed journal is ignored (the
    /// deletion itself is a director-side fact either way; the node's next
    /// sweep will surface the crash).
    pub fn note_recipe_deleted(&self, file_id: u64) {
        if let Some(journal) = &self.journal {
            let _ = journal.append(&JournalRecord::RecipeDelete { file_id });
        }
    }

    /// Sweeps this node's sealed containers against the mark phase's live set.
    ///
    /// `live` maps each of this node's containers to the fingerprints some
    /// surviving recipe still references there (containers absent from the map
    /// are fully dead).  Containers with no live chunks are dropped; containers
    /// whose live fraction falls below `threshold` are *compacted* — their live
    /// chunks rewritten into a fresh container (the same install path an
    /// adopted migrated container takes) before the victim drops; everything
    /// else is kept, with its live/dead accounting refreshed.  Open containers
    /// are never touched.
    ///
    /// Every structural change is journaled write-ahead (`GcDrop` /
    /// `GcCompact`), so a crash at any record boundary recovers to a state the
    /// sweep can simply be re-run from.
    ///
    /// Must run at a GC-quiescent point: no concurrent backup may be
    /// deduplicating against containers this sweep might collect, or a chunk
    /// could be declared duplicate against data that is about to vanish.
    /// Restores and migrations are safe to interleave.
    ///
    /// # Errors
    ///
    /// Returns a crash error when the journal refuses an append; the sweep
    /// stops at that boundary (completed drops/compactions stand, the rest of
    /// the plan is untouched) and can be retried after recovery.
    pub fn sweep_garbage(
        &self,
        live: &HashMap<ContainerId, HashSet<Fingerprint>>,
        threshold: f64,
    ) -> Result<NodeGcReport> {
        let mut report = NodeGcReport {
            node_id: self.id,
            ..NodeGcReport::default()
        };
        let empty = HashSet::new();
        for cid in self.store.sealed_container_ids() {
            let live_fps = live.get(&cid).unwrap_or(&empty);
            let Some(acct) = self.store.container_liveness(&cid, live_fps) else {
                continue;
            };
            report.containers_scanned += 1;
            if acct.live_chunks == 0 {
                if let Some(dropped) = self.store.drop_sealed_gc(&cid)? {
                    for record in &dropped.meta().records {
                        self.chunk_index.remove_if_at(&record.fingerprint, cid);
                    }
                    let _ = self.similarity_index.extract_container(cid);
                    report.containers_dropped += 1;
                    report.chunks_discarded += dropped.chunk_count() as u64;
                    report.bytes_reclaimed += dropped.data_size() as u64;
                }
            } else if acct.dead_chunks > 0 && acct.liveness() < threshold {
                // The RFPs are peeked (not extracted) before the durable
                // append, mirroring a migration: if the append crashes, the
                // victim — and its similarity state — is untouched.
                let rfps = self.similarity_index.peek_container(cid);
                if let Some(outcome) = self.store.compact_container(&cid, live_fps, &rfps)? {
                    for record in &outcome.dead_records {
                        self.chunk_index.remove_if_at(&record.fingerprint, cid);
                    }
                    for record in &outcome.live_records {
                        self.chunk_index.retarget(
                            &record.fingerprint,
                            cid,
                            ChunkLocation {
                                container: outcome.replacement,
                                offset: record.offset,
                                len: record.len,
                            },
                        );
                    }
                    let moved = self.similarity_index.extract_container(cid);
                    for rfp in moved {
                        self.similarity_index.insert(rfp, outcome.replacement);
                    }
                    report.containers_compacted += 1;
                    report.chunks_discarded += outcome.dead_records.len() as u64;
                    report.bytes_reclaimed += outcome.reclaimed_bytes;
                }
            } else if acct.dead_chunks > 0 {
                report.containers_kept_partial += 1;
            }
        }
        Ok(report)
    }

    // ---- Elastic-membership support (used by the cluster's `Rebalancer`) ----

    /// Identifiers of every sealed container on this node, sorted ascending.
    pub fn sealed_container_ids(&self) -> Vec<ContainerId> {
        self.store.sealed_container_ids()
    }

    /// Logical data-section size of a sealed container, if it exists.
    pub fn container_data_size(&self, container: &ContainerId) -> Option<usize> {
        self.store.sealed_data_size(container)
    }

    /// Node this container was forwarded to, if it was migrated away.
    pub fn forwarded_to(&self, container: &ContainerId) -> Option<usize> {
        self.forwarding.read().get(container).copied()
    }

    /// Clones a sealed container out of this node for migration (charged to the
    /// disk model as a sequential read).  The container remains readable here until
    /// [`retire_container`](Self::retire_container) completes the hand-off.
    pub fn export_container(&self, container: &ContainerId) -> Option<Container> {
        self.store.export_sealed(container)
    }

    /// The similarity-index entries (representative fingerprints) currently
    /// pointing at `container`, without removing them.
    ///
    /// This is what a migration hands to the destination's
    /// [`adopt_container`](Self::adopt_container): the source keeps its entries
    /// until [`retire_container`](Self::retire_container) — so a destination
    /// that crashes mid-adopt leaves the source's similarity state untouched.
    pub fn similarity_entries_for(&self, container: ContainerId) -> Vec<Fingerprint> {
        self.similarity_index.peek_container(container)
    }

    /// Removes and returns the similarity-index entries (representative
    /// fingerprints) pointing at `container`, for re-insertion on the destination
    /// node under the container's new identifier.
    pub fn take_similarity_entries(&self, container: ContainerId) -> Vec<Fingerprint> {
        self.similarity_index.extract_container(container)
    }

    /// Adopts a container migrated from node `origin_node`.
    ///
    /// The container is re-identified in this node's ID space, every chunk record
    /// is indexed at its new location, and the given representative fingerprints
    /// are mapped to the new container so future similar super-chunks deduplicate
    /// here.  Returns the container's new local identifier.
    ///
    /// Adoption is **idempotent** per `(origin node, origin container)`: a
    /// retried rebalance step (or a replayed migration record) that adopts the
    /// same origin again gets the existing local identifier back and stores
    /// nothing twice.
    ///
    /// # Errors
    ///
    /// Returns a crash error when the write-ahead journal refuses the append; the
    /// adoption then never happened, and the source still owns the container.
    pub fn adopt_container(
        &self,
        origin_node: usize,
        container: Container,
        rfps: &[Fingerprint],
    ) -> Result<ContainerId> {
        let records: Vec<sigma_storage::ChunkRecord> = container.meta().records.clone();
        let new_id = self
            .store
            .adopt_sealed(origin_node as u64, container, rfps)?;
        for record in records {
            self.chunk_index.insert(
                record.fingerprint,
                ChunkLocation {
                    container: new_id,
                    offset: record.offset,
                    len: record.len,
                },
            );
        }
        for rfp in rfps {
            self.similarity_index.insert(*rfp, new_id);
        }
        Ok(new_id)
    }

    /// Completes the migration of `container` to node `successor`: a forwarding
    /// tombstone is published (journal first, then RAM) *before* the container
    /// data is dropped, so a restore racing with the hand-off either still reads
    /// the chunk locally or follows the tombstone — there is no window in which
    /// the chunk is unreachable, live or across a crash.
    ///
    /// # Errors
    ///
    /// Returns a crash error when the journal refuses the tombstone append; the
    /// data is then *not* dropped (the destination may hold a duplicate copy,
    /// which [`DedupCluster::restart_node`](crate::DedupCluster::restart_node)
    /// reconciles after recovery).
    pub fn retire_container(&self, container: ContainerId, successor: usize) -> Result<()> {
        if let Some(journal) = &self.journal {
            journal.append(&JournalRecord::Tombstone {
                container,
                successor: successor as u64,
            })?;
        }
        self.forwarding.write().insert(container, successor);
        self.store.remove_sealed(&container);
        // The similarity entries travelled with the container (the destination
        // re-published them at adopt time); dropping any stragglers here keeps
        // the live path, the reconciliation path and Tombstone replay identical:
        // a retired container never answers resemblance queries again.
        let _ = self.similarity_index.extract_container(container);
        Ok(())
    }

    /// The adoption ledger: `(origin node, origin container, local container)`
    /// for every container this node adopted, sorted for deterministic
    /// reconciliation sweeps.
    pub fn adopted_origins(&self) -> Vec<(usize, ContainerId, ContainerId)> {
        self.store
            .adopted_origins()
            .into_iter()
            .map(|(node, origin, local)| (node as usize, origin, local))
            .collect()
    }

    /// True if a sealed container with this ID is currently present.
    pub fn has_sealed_container(&self, container: &ContainerId) -> bool {
        self.store.contains_sealed(container)
    }

    /// Seals all open containers (end of a backup session), ignoring a crashed
    /// journal — a dead node's flush is a no-op.  Durability-aware callers use
    /// [`try_flush`](Self::try_flush) to observe the crash instead.
    pub fn flush(&self) {
        let _ = self.try_flush();
    }

    /// Seals all open containers and journals a stats checkpoint — the durable
    /// acknowledgement point: once `try_flush` returns `Ok`, everything ingested
    /// so far survives a crash.
    ///
    /// # Errors
    ///
    /// Returns a crash error when the journal refuses an append; containers not
    /// yet sealed at that point are lost, exactly as the crash would lose them.
    pub fn try_flush(&self) -> Result<()> {
        self.store.flush()?;
        self.open_fingerprints.lock().clear();
        if let Some(journal) = &self.journal {
            journal.append(&JournalRecord::StatsCheckpoint {
                logical_bytes: self.logical_bytes.load(Ordering::Relaxed),
                total_chunks: self.total_chunks.load(Ordering::Relaxed),
                unique_chunks: self.unique_chunks.load(Ordering::Relaxed),
                super_chunks: self.super_chunks.load(Ordering::Relaxed),
            })?;
        }
        Ok(())
    }

    /// The node's write-ahead journal, when durability is enabled.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// True once the node's journal hit a crash point; the node must be rebuilt
    /// via [`recover`](Self::recover) (or
    /// [`DedupCluster::restart_node`](crate::DedupCluster::restart_node)).
    pub fn crashed(&self) -> bool {
        self.journal.as_ref().is_some_and(|j| j.crashed())
    }

    /// Folds the journal into a single snapshot frame.
    ///
    /// Call at a quiescent point (no in-flight backups or migrations on this
    /// node); the snapshot captures sealed state only, so anything still open is
    /// — by the durability contract — not yet acknowledged anyway.
    ///
    /// # Errors
    ///
    /// Returns a crash error if the journal has crashed, and an invalid-config
    /// error if the node has no journal.
    pub fn compact_journal(&self) -> Result<()> {
        let journal = self
            .journal
            .as_ref()
            .ok_or_else(|| SigmaError::InvalidConfig("node has no journal".to_string()))?;
        // The snapshot may only name *durable* containers.  Index entries that
        // point at a still-open container describe unacknowledged chunks; if
        // they were snapshotted, recovery would install phantom entries whose
        // claim() answers "duplicate" for data that exists nowhere — silently
        // corrupting a later acknowledged backup.  Filtering them mirrors what
        // a crash does to the live journal: the open tail simply never existed.
        let durable = |cid: &ContainerId| {
            self.store.contains_sealed(cid) || self.forwarding.read().contains_key(cid)
        };
        let snapshot = NodeSnapshot {
            next_container_id: self.store.peek_next_id(),
            containers: self.store.sealed_snapshot(),
            chunk_entries: self
                .chunk_index
                .finalized_entries()
                .into_iter()
                .filter(|(_, loc)| durable(&loc.container))
                .collect(),
            similarity: self
                .similarity_index
                .entries()
                .into_iter()
                .filter(|(_, cid)| durable(cid))
                .collect(),
            tombstones: self
                .forwarding
                .read()
                .iter()
                .map(|(&cid, &node)| (cid, node as u64))
                .collect(),
            logical_bytes: self.logical_bytes.load(Ordering::Relaxed),
            total_chunks: self.total_chunks.load(Ordering::Relaxed),
            unique_chunks: self.unique_chunks.load(Ordering::Relaxed),
            super_chunks: self.super_chunks.load(Ordering::Relaxed),
        };
        journal.compact(snapshot)?;
        Ok(())
    }

    /// Structural consistency check used by the crash-recovery suites: every
    /// finalized chunk-index entry must resolve to a present, open or tombstoned
    /// container, and the store's byte/chunk counters must match its contents.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify_consistency(&self) -> std::result::Result<(), String> {
        let open: std::collections::HashSet<ContainerId> =
            self.store.open_container_ids().into_iter().collect();
        for (fp, loc) in self.chunk_index.finalized_entries() {
            if !self.store.contains_sealed(&loc.container)
                && !open.contains(&loc.container)
                && self.forwarded_to(&loc.container).is_none()
            {
                return Err(format!(
                    "chunk {} points at container {} which is neither stored nor tombstoned on node {}",
                    fp, loc.container, self.id
                ));
            }
        }
        for (rfp, cid) in self.similarity_index.entries() {
            if !self.store.contains_sealed(&cid)
                && !open.contains(&cid)
                && self.forwarded_to(&cid).is_none()
            {
                return Err(format!(
                    "similarity entry {} points at container {} which is neither stored nor tombstoned on node {}",
                    rfp, cid, self.id
                ));
            }
        }
        let mut bytes = 0u64;
        let mut chunks = 0u64;
        for (_, container) in self.store.sealed_snapshot() {
            bytes += container.data_size() as u64;
            chunks += container.chunk_count() as u64;
        }
        let stats = self.store.stats();
        if stats.stored_bytes != bytes {
            return Err(format!(
                "store counts {} stored bytes but containers hold {}",
                stats.stored_bytes, bytes
            ));
        }
        if stats.stored_chunks != chunks {
            return Err(format!(
                "store counts {} stored chunks but containers hold {}",
                stats.stored_chunks, chunks
            ));
        }
        // The same figure derived from the storage *backend* (decoded from the
        // container objects actually on the medium, when one persists them)
        // must agree with the counter- and directory-derived figures above —
        // this is what keeps the file backend's reports identical to the
        // volatile backends' instead of silently drifting.
        match self.store.backend_physical_bytes() {
            Ok(backend_bytes) => {
                if backend_bytes != bytes {
                    return Err(format!(
                        "storage backend holds {} bytes of container objects but the directory holds {}",
                        backend_bytes, bytes
                    ));
                }
            }
            Err(e) => return Err(format!("storage backend unreadable: {}", e)),
        }
        Ok(())
    }

    /// The node's deduplication ratio (logical bytes / physical bytes); 1.0 when no
    /// data has been stored.
    pub fn dedup_ratio(&self) -> f64 {
        let physical = self.storage_usage();
        if physical == 0 {
            1.0
        } else {
            self.logical_bytes() as f64 / physical as f64
        }
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            node_id: self.id,
            logical_bytes: self.logical_bytes(),
            physical_bytes: self.storage_usage(),
            total_chunks: self.total_chunks.load(Ordering::Relaxed),
            unique_chunks: self.unique_chunks.load(Ordering::Relaxed),
            super_chunks: self.super_chunks.load(Ordering::Relaxed),
            dedup_ratio: self.dedup_ratio(),
            similarity_index: self.similarity_index.stats(),
            cache: self.cache.stats(),
            chunk_index: self.chunk_index.stats(),
            containers: self.store.stats(),
            disk: self.disk.stats(),
            similarity_index_ram_bytes: self.similarity_index.estimated_ram_bytes() as u64,
            chunk_index_bytes: self.chunk_index.estimated_bytes() as u64,
        }
    }
}

enum ChunkResolution {
    CacheHit,
    OpenContainerHit,
    IndexHit,
    Stored(ContainerId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuperChunkBuilder;
    use sigma_hashkit::{Digest, FingerprintAlgorithm, Sha1};

    fn config() -> SigmaConfig {
        SigmaConfig::builder()
            .super_chunk_size(64 * 1024)
            .container_capacity(256 * 1024)
            .cache_containers(8)
            .build()
            .unwrap()
    }

    fn payload_super_chunk(seed: u8, chunks: usize, chunk_len: usize) -> SuperChunk {
        let data: Vec<Vec<u8>> = (0..chunks)
            .map(|i| {
                (0..chunk_len)
                    .map(|j| seed.wrapping_add((i * 31 + j) as u8))
                    .collect()
            })
            .collect();
        SuperChunk::from_payloads(FingerprintAlgorithm::Sha1, 0, data)
    }

    fn descriptor_super_chunk(ids: &[u64], len: u32) -> SuperChunk {
        SuperChunk::from_descriptors(
            0,
            ids.iter()
                .map(|&i| ChunkDescriptor::new(Sha1::fingerprint(&i.to_le_bytes()), len))
                .collect(),
        )
    }

    #[test]
    fn unique_then_duplicate_super_chunk() {
        let node = DedupNode::new(3, &config());
        let sc = payload_super_chunk(1, 16, 4096);
        let hp = sc.handprint(8);
        let first = node.process_super_chunk(0, &sc, &hp).unwrap();
        assert_eq!(first.node_id, 3);
        assert_eq!(first.unique_chunks, 16);
        assert_eq!(first.duplicate_chunks, 0);
        assert_eq!(first.unique_bytes, 16 * 4096);

        let second = node.process_super_chunk(0, &sc, &hp).unwrap();
        assert_eq!(second.unique_chunks, 0);
        assert_eq!(second.duplicate_chunks, 16);
        assert_eq!(second.total_chunks(), 16);
        assert_eq!(second.logical_bytes(), 16 * 4096);

        let stats = node.stats();
        assert_eq!(stats.logical_bytes, 2 * 16 * 4096);
        assert_eq!(stats.physical_bytes, 16 * 4096);
        assert!((stats.dedup_ratio - 2.0).abs() < 1e-9);
        assert_eq!(stats.super_chunks, 2);
    }

    #[test]
    fn duplicates_within_one_super_chunk_are_caught() {
        let node = DedupNode::new(0, &config());
        // The same chunk id repeated many times inside one super-chunk.
        let sc = descriptor_super_chunk(&[7, 7, 7, 7, 8], 4096);
        let hp = sc.handprint(8);
        let r = node.process_super_chunk(0, &sc, &hp).unwrap();
        assert_eq!(r.unique_chunks, 2);
        assert_eq!(r.duplicate_chunks, 3);
    }

    #[test]
    fn similarity_only_mode_still_detects_similar_super_chunks() {
        let cfg = SigmaConfig::builder()
            .super_chunk_size(64 * 1024)
            .chunk_index_fallback(false)
            .cache_containers(8)
            .build()
            .unwrap();
        let node = DedupNode::new(0, &cfg);
        let sc = descriptor_super_chunk(&(0..64).collect::<Vec<u64>>(), 4096);
        let hp = sc.handprint(8);
        node.process_super_chunk(0, &sc, &hp).unwrap();
        node.flush();
        // The identical super-chunk arrives again: the handprint matches, the
        // container is prefetched, every chunk hits the cache.
        let r = node.process_super_chunk(0, &sc, &hp).unwrap();
        assert_eq!(r.duplicate_chunks, 64);
        assert_eq!(r.unique_chunks, 0);
        assert!(r.containers_prefetched >= 1);
    }

    #[test]
    fn similarity_only_mode_misses_dissimilar_duplicates() {
        // Without the chunk-index fallback, duplicates arriving in a super-chunk
        // whose handprint does not match anything go undetected — that is the
        // approximate-dedup trade-off of Fig. 5(b).
        let cfg = SigmaConfig::builder()
            .chunk_index_fallback(false)
            .cache_containers(8)
            .build()
            .unwrap();
        let node = DedupNode::new(0, &cfg);
        // First super-chunk: chunks 0..64.
        let a = descriptor_super_chunk(&(0..64).collect::<Vec<u64>>(), 4096);
        node.process_super_chunk(0, &a, &a.handprint(8)).unwrap();
        node.flush();
        // Second super-chunk shares only one low-similarity chunk and has a disjoint
        // handprint (we force that by computing the handprint from different data).
        let mut ids: Vec<u64> = (1000..1063).collect();
        ids.push(5); // one duplicate chunk hidden among new data
        let b = descriptor_super_chunk(&ids, 4096);
        // Handprint intentionally computed only over the new chunks so it cannot
        // match the stored container.
        let hp_b = Handprint::from_fingerprints(
            ids[..32]
                .iter()
                .map(|i| Sha1::fingerprint(&i.to_le_bytes())),
            8,
        );
        let r = node.process_super_chunk(0, &b, &hp_b).unwrap();
        // The hidden duplicate may or may not be caught via the open container (it is
        // a different container), so in similarity-only mode it is stored again.
        assert_eq!(r.duplicate_chunks, 0);
        assert_eq!(r.unique_chunks, 64);

        // With the fallback enabled the same scenario catches the duplicate.
        let exact = DedupNode::new(1, &SigmaConfig::default());
        exact.process_super_chunk(0, &a, &a.handprint(8)).unwrap();
        exact.flush();
        let r2 = exact.process_super_chunk(0, &b, &hp_b).unwrap();
        assert_eq!(r2.duplicate_chunks, 1);
    }

    #[test]
    fn oversized_chunk_fails_before_claiming_its_fingerprint() {
        let node = DedupNode::new(0, &config());
        // 300 KB chunk vs. 256 KB containers: must fail up front, leaving the
        // fingerprint unclaimed so no racer can mistake it for a duplicate.
        let sc = descriptor_super_chunk(&[7], 300 * 1024);
        let fp = sc.descriptors()[0].fingerprint;
        assert!(node.process_super_chunk(0, &sc, &sc.handprint(4)).is_err());
        assert_eq!(node.count_stored_fingerprints(&[fp]), 0);
        // The same fingerprint with a storable length is still accepted later.
        let ok = SuperChunk::from_descriptors(0, vec![ChunkDescriptor::new(fp, 4096)]);
        let receipt = node.process_super_chunk(0, &ok, &ok.handprint(4)).unwrap();
        assert_eq!(receipt.unique_chunks, 1);
    }

    #[test]
    fn read_back_restores_payloads() {
        let node = DedupNode::new(0, &config());
        let sc = payload_super_chunk(9, 8, 1024);
        let hp = sc.handprint(8);
        node.process_super_chunk(0, &sc, &hp).unwrap();
        node.flush();
        for (i, d) in sc.descriptors().iter().enumerate() {
            let data = node.read_chunk(&d.fingerprint).unwrap();
            assert_eq!(data.as_slice(), sc.payload(i).unwrap());
        }
    }

    #[test]
    fn read_chunk_errors() {
        let node = DedupNode::new(0, &config());
        let missing = Sha1::fingerprint(b"never stored");
        assert!(matches!(
            node.read_chunk(&missing),
            Err(SigmaError::ChunkMissing { .. })
        ));

        // Synthetic chunks have no payload.
        let sc = descriptor_super_chunk(&[1, 2, 3], 512);
        node.process_super_chunk(0, &sc, &sc.handprint(4)).unwrap();
        node.flush();
        assert!(matches!(
            node.read_chunk(&sc.descriptors()[0].fingerprint),
            Err(SigmaError::PayloadUnavailable { .. })
        ));
    }

    #[test]
    fn resemblance_count_reflects_similarity_index() {
        let node = DedupNode::new(0, &config());
        let sc = descriptor_super_chunk(&(0..32).collect::<Vec<u64>>(), 4096);
        let hp = sc.handprint(8);
        assert_eq!(node.resemblance_count(&hp), 0);
        node.process_super_chunk(0, &sc, &hp).unwrap();
        assert_eq!(node.resemblance_count(&hp), 8);
        // A disjoint super-chunk has zero resemblance.
        let other = descriptor_super_chunk(&(100..132).collect::<Vec<u64>>(), 4096);
        assert_eq!(node.resemblance_count(&other.handprint(8)), 0);
    }

    #[test]
    fn count_stored_fingerprints_for_stateful_routing() {
        let node = DedupNode::new(0, &config());
        let sc = descriptor_super_chunk(&(0..16).collect::<Vec<u64>>(), 4096);
        node.process_super_chunk(0, &sc, &sc.handprint(8)).unwrap();
        let probe: Vec<Fingerprint> = (8..24u64)
            .map(|i| Sha1::fingerprint(&i.to_le_bytes()))
            .collect();
        assert_eq!(node.count_stored_fingerprints(&probe), 8);
    }

    fn durable_config() -> SigmaConfig {
        SigmaConfig::builder()
            .super_chunk_size(64 * 1024)
            .container_capacity(16 * 1024)
            .cache_containers(8)
            .durability(true)
            .build()
            .unwrap()
    }

    #[test]
    fn recovery_rebuilds_flushed_state_byte_identically() {
        let cfg = durable_config();
        let node = DedupNode::new(4, &cfg);
        let sc = payload_super_chunk(11, 16, 4096);
        let hp = sc.handprint(8);
        node.process_super_chunk(0, &sc, &hp).unwrap();
        node.try_flush().unwrap();
        let stats_before = node.stats();
        let journal = node.journal().unwrap().clone();
        drop(node); // the crash: all in-memory state gone, the journal survives

        let (recovered, report) = DedupNode::recover(4, &cfg, journal).unwrap();
        assert_eq!(report.node_id, 4);
        assert!(report.containers_recovered > 0);
        assert_eq!(report.bytes_discarded, 0);
        for (i, d) in sc.descriptors().iter().enumerate() {
            assert_eq!(
                recovered.read_chunk(&d.fingerprint).unwrap(),
                sc.payload(i).unwrap()
            );
        }
        let stats_after = recovered.stats();
        assert_eq!(stats_after.physical_bytes, stats_before.physical_bytes);
        assert_eq!(stats_after.logical_bytes, stats_before.logical_bytes);
        assert_eq!(stats_after.unique_chunks, stats_before.unique_chunks);
        assert_eq!(recovered.resemblance_count(&hp), hp.size());
        recovered.verify_consistency().unwrap();
        // The journal is live again: the recovered node keeps journaling.
        let sc2 = payload_super_chunk(99, 4, 4096);
        recovered
            .process_super_chunk(0, &sc2, &sc2.handprint(4))
            .unwrap();
        recovered.try_flush().unwrap();
    }

    #[test]
    fn recovery_drops_unflushed_open_containers() {
        let cfg = durable_config();
        let node = DedupNode::new(0, &cfg);
        // First super-chunk flushed (acknowledged), second one left open.
        let acked = payload_super_chunk(1, 8, 2048);
        node.process_super_chunk(0, &acked, &acked.handprint(4))
            .unwrap();
        node.try_flush().unwrap();
        let lost = payload_super_chunk(2, 2, 1024);
        node.process_super_chunk(0, &lost, &lost.handprint(4))
            .unwrap();
        let physical_at_ack = {
            let journal = node.journal().unwrap().clone();
            let (recovered, _) = DedupNode::recover(0, &cfg, journal).unwrap();
            // Acked chunks are all there; the open container's chunks are gone.
            for (i, d) in acked.descriptors().iter().enumerate() {
                assert_eq!(
                    recovered.read_chunk(&d.fingerprint).unwrap(),
                    acked.payload(i).unwrap()
                );
            }
            assert!(recovered
                .read_chunk(&lost.descriptors()[0].fingerprint)
                .is_err());
            recovered.verify_consistency().unwrap();
            recovered.storage_usage()
        };
        // Torn tail rule: physical bytes only ever shrink back to the ack point.
        assert!(physical_at_ack <= node.storage_usage());
    }

    #[test]
    fn compaction_preserves_recovery_and_shrinks_the_journal() {
        let cfg = durable_config();
        let node = DedupNode::new(0, &cfg);
        for seed in 0..6u8 {
            let sc = payload_super_chunk(seed, 8, 2048);
            node.process_super_chunk(seed as u64, &sc, &sc.handprint(4))
                .unwrap();
        }
        node.try_flush().unwrap();
        let journal = node.journal().unwrap().clone();
        let long = journal.len_bytes();
        let stats_before = node.stats();
        node.compact_journal().unwrap();
        assert!(journal.len_bytes() < long, "snapshot must fold the log");

        let (recovered, report) = DedupNode::recover(0, &cfg, journal).unwrap();
        assert_eq!(report.frames_replayed, 1, "one snapshot frame");
        let stats_after = recovered.stats();
        assert_eq!(stats_after.physical_bytes, stats_before.physical_bytes);
        assert_eq!(stats_after.logical_bytes, stats_before.logical_bytes);
        assert_eq!(
            stats_after.containers.sealed_containers,
            stats_before.containers.sealed_containers
        );
        recovered.verify_consistency().unwrap();
        // Post-compaction ingest still lands in fresh container IDs.
        let sc = payload_super_chunk(77, 4, 2048);
        recovered
            .process_super_chunk(0, &sc, &sc.handprint(4))
            .unwrap();
        recovered.try_flush().unwrap();
        recovered.verify_consistency().unwrap();
    }

    #[test]
    fn compaction_with_open_containers_does_not_snapshot_phantom_entries() {
        // Regression: compacting while a container is still open must not
        // snapshot that container's chunk-index entries — recovery would
        // otherwise install phantom entries whose claim() reports "duplicate"
        // for chunks that exist nowhere, silently corrupting a later
        // acknowledged backup of the same data.
        let cfg = durable_config();
        let node = DedupNode::new(0, &cfg);
        let acked = payload_super_chunk(1, 4, 2048);
        node.process_super_chunk(0, &acked, &acked.handprint(4))
            .unwrap();
        node.try_flush().unwrap();
        // This super-chunk stays in an open container across the compaction.
        let pending = payload_super_chunk(2, 3, 1024);
        node.process_super_chunk(0, &pending, &pending.handprint(4))
            .unwrap();
        node.compact_journal().unwrap();

        let journal = node.journal().unwrap().clone();
        let (recovered, _) = DedupNode::recover(0, &cfg, journal).unwrap();
        recovered.verify_consistency().unwrap();
        // The pending chunks died with the crash; re-ingesting them must store
        // them for real, and the re-acknowledged data must be restorable.
        let receipt = recovered
            .process_super_chunk(0, &pending, &pending.handprint(4))
            .unwrap();
        assert_eq!(
            receipt.unique_chunks, 3,
            "phantom snapshot entries must not swallow the re-ingest"
        );
        recovered.try_flush().unwrap();
        for (i, d) in pending.descriptors().iter().enumerate() {
            assert_eq!(
                recovered.read_chunk(&d.fingerprint).unwrap(),
                pending.payload(i).unwrap()
            );
        }
        for (i, d) in acked.descriptors().iter().enumerate() {
            assert_eq!(
                recovered.read_chunk(&d.fingerprint).unwrap(),
                acked.payload(i).unwrap()
            );
        }
    }

    #[test]
    fn replay_of_duplicated_adopt_records_cannot_double_adopt() {
        let cfg = durable_config();
        let donor = DedupNode::new(1, &cfg);
        let sc = payload_super_chunk(5, 8, 2048);
        donor.process_super_chunk(0, &sc, &sc.handprint(4)).unwrap();
        donor.try_flush().unwrap();
        let cid = donor.sealed_container_ids()[0];
        let exported = donor.export_container(&cid).unwrap();
        let rfps = donor.take_similarity_entries(cid);

        // An adopter whose journal ends up with the same migration record twice
        // (e.g. a retried step replayed on top of the original).
        let adopter = DedupNode::new(2, &cfg);
        adopter.adopt_container(1, exported.clone(), &rfps).unwrap();
        let journal = adopter.journal().unwrap();
        journal
            .append(&JournalRecord::ContainerAdopt {
                origin_node: 1,
                origin_container: cid,
                container: exported
                    .clone()
                    .with_id(sigma_storage::ContainerId::new(999)),
                rfps: rfps.clone(),
            })
            .unwrap();
        let bytes_before = adopter.storage_usage();

        let (recovered, report) = DedupNode::recover(2, &cfg, journal.clone()).unwrap();
        assert_eq!(report.duplicate_adopts_skipped, 1);
        assert_eq!(report.containers_recovered, 1);
        assert_eq!(recovered.storage_usage(), bytes_before, "no double-adopt");
        assert_eq!(recovered.stats().containers.sealed_containers, 1);
        recovered.verify_consistency().unwrap();
    }

    #[test]
    fn tombstone_replay_keeps_the_forwarding_chain() {
        let cfg = durable_config();
        let a = DedupNode::new(0, &cfg);
        let b = DedupNode::new(1, &cfg);
        let sc = payload_super_chunk(9, 8, 2048);
        a.process_super_chunk(0, &sc, &sc.handprint(4)).unwrap();
        a.try_flush().unwrap();
        let cid = a.sealed_container_ids()[0];
        let exported = a.export_container(&cid).unwrap();
        let rfps = a.take_similarity_entries(cid);
        b.adopt_container(0, exported, &rfps).unwrap();
        a.retire_container(cid, 1).unwrap();

        let journal = a.journal().unwrap().clone();
        let (recovered, report) = DedupNode::recover(0, &cfg, journal).unwrap();
        assert_eq!(report.tombstones_restored, 1);
        assert_eq!(recovered.forwarded_to(&cid), Some(1));
        assert_eq!(
            recovered.storage_usage(),
            0,
            "tombstoned data stays dropped"
        );
        assert!(matches!(
            recovered.read_chunk(&sc.descriptors()[0].fingerprint),
            Err(SigmaError::ChunkMigrated { node: 1, .. })
        ));
        recovered.verify_consistency().unwrap();
    }

    /// Live map for `sweep_garbage` built from the node's own index: every
    /// fingerprint in `survivors` marked at the container that holds it.
    fn live_map(
        node: &DedupNode,
        survivors: &[Fingerprint],
    ) -> HashMap<ContainerId, HashSet<Fingerprint>> {
        let mut live: HashMap<ContainerId, HashSet<Fingerprint>> = HashMap::new();
        for fp in survivors {
            let loc = node.chunk_location(fp).expect("survivor is indexed");
            live.entry(loc.container).or_default().insert(*fp);
        }
        live
    }

    #[test]
    fn sweep_drops_dead_containers_and_compacts_half_dead_ones() {
        let node = DedupNode::new(0, &config());
        // Stream 0: all chunks survive.  Stream 1: half survive (compaction).
        // Stream 2: nothing survives (drop).
        let keep = payload_super_chunk(1, 8, 1024);
        let half = payload_super_chunk(2, 8, 1024);
        let dead = payload_super_chunk(3, 8, 1024);
        for (stream, sc) in [(0u64, &keep), (1, &half), (2, &dead)] {
            node.process_super_chunk(stream, sc, &sc.handprint(4))
                .unwrap();
        }
        node.flush();
        let physical_before = node.storage_usage();

        let mut survivors: Vec<Fingerprint> =
            keep.descriptors().iter().map(|d| d.fingerprint).collect();
        survivors.extend(half.descriptors()[..4].iter().map(|d| d.fingerprint));
        let report = node
            .sweep_garbage(&live_map(&node, &survivors), 0.75)
            .unwrap();

        assert_eq!(report.containers_scanned, 3);
        assert_eq!(report.containers_dropped, 1);
        assert_eq!(report.containers_compacted, 1);
        assert_eq!(report.chunks_discarded, 8 + 4);
        assert_eq!(report.bytes_reclaimed, 12 * 1024);
        assert_eq!(node.storage_usage(), physical_before - 12 * 1024);

        // Survivors read back byte-identically (the compacted ones through
        // their retargeted index entries).
        for (i, d) in keep.descriptors().iter().enumerate() {
            assert_eq!(
                node.read_chunk(&d.fingerprint).unwrap(),
                keep.payload(i).unwrap()
            );
        }
        for (i, d) in half.descriptors().iter().enumerate().take(4) {
            assert_eq!(
                node.read_chunk(&d.fingerprint).unwrap(),
                half.payload(i).unwrap()
            );
        }
        // Dead chunks are gone — cleanly, with their index entries.
        for d in dead.descriptors() {
            assert!(matches!(
                node.read_chunk(&d.fingerprint),
                Err(SigmaError::ChunkMissing { .. })
            ));
        }
        for d in &half.descriptors()[4..] {
            assert!(node.read_chunk(&d.fingerprint).is_err());
        }
        node.verify_consistency().unwrap();

        // A second sweep with the same root set reclaims nothing more.
        let again = node
            .sweep_garbage(&live_map(&node, &survivors), 0.75)
            .unwrap();
        assert_eq!(again.bytes_reclaimed, 0);
        assert_eq!(again.containers_dropped, 0);
        assert_eq!(again.containers_compacted, 0);
    }

    #[test]
    fn sweep_respects_the_liveness_threshold() {
        let node = DedupNode::new(0, &config());
        let sc = payload_super_chunk(5, 8, 1024);
        node.process_super_chunk(0, &sc, &sc.handprint(4)).unwrap();
        node.flush();
        let survivors: Vec<Fingerprint> = sc.descriptors()[..6]
            .iter()
            .map(|d| d.fingerprint)
            .collect();
        // 6/8 = 0.75 live: at threshold 0.5 the container is kept...
        let report = node
            .sweep_garbage(&live_map(&node, &survivors), 0.5)
            .unwrap();
        assert_eq!(report.containers_compacted, 0);
        assert_eq!(report.containers_kept_partial, 1);
        assert_eq!(report.bytes_reclaimed, 0);
        // ...and the per-container accounting still records the dead fraction.
        let cid = node.sealed_container_ids()[0];
        let acct = node.stats().containers;
        assert_eq!(acct.gc_reclaimed_bytes, 0);
        assert_eq!(
            node.store.recorded_liveness(&cid).unwrap().dead_bytes,
            2 * 1024
        );
        // At threshold 0.9 it is compacted.
        let report = node
            .sweep_garbage(&live_map(&node, &survivors), 0.9)
            .unwrap();
        assert_eq!(report.containers_compacted, 1);
        assert_eq!(report.bytes_reclaimed, 2 * 1024);
        node.verify_consistency().unwrap();
    }

    #[test]
    fn sweep_rehomes_similarity_entries_with_the_replacement() {
        let node = DedupNode::new(0, &config());
        let sc = payload_super_chunk(9, 8, 1024);
        let hp = sc.handprint(8);
        node.process_super_chunk(0, &sc, &hp).unwrap();
        node.flush();
        assert_eq!(node.resemblance_count(&hp), 8);
        let survivors: Vec<Fingerprint> = sc.descriptors()[..2]
            .iter()
            .map(|d| d.fingerprint)
            .collect();
        let report = node
            .sweep_garbage(&live_map(&node, &survivors), 0.5)
            .unwrap();
        assert_eq!(report.containers_compacted, 1);
        // The handprint still resolves — to the replacement container.
        assert_eq!(node.resemblance_count(&hp), 8);
        node.verify_consistency().unwrap();

        // Dropping the rest kills the similarity entries too.
        let report = node.sweep_garbage(&HashMap::new(), 0.5).unwrap();
        assert_eq!(report.containers_dropped, 1);
        assert_eq!(node.resemblance_count(&hp), 0);
        assert_eq!(node.storage_usage(), 0);
        node.verify_consistency().unwrap();
    }

    #[test]
    fn gc_records_replay_to_the_post_gc_state() {
        let cfg = durable_config();
        let node = DedupNode::new(0, &cfg);
        let keep = payload_super_chunk(1, 6, 2048);
        let dead = payload_super_chunk(2, 6, 2048);
        node.process_super_chunk(0, &keep, &keep.handprint(4))
            .unwrap();
        node.process_super_chunk(1, &dead, &dead.handprint(4))
            .unwrap();
        node.try_flush().unwrap();
        node.note_recipe_deleted(7);
        let survivors: Vec<Fingerprint> = keep.descriptors()[..3]
            .iter()
            .map(|d| d.fingerprint)
            .collect();
        let report = node
            .sweep_garbage(&live_map(&node, &survivors), 0.9)
            .unwrap();
        assert_eq!(report.containers_dropped, 1);
        assert_eq!(report.containers_compacted, 1);
        let physical_after_gc = node.storage_usage();

        let journal = node.journal().unwrap().clone();
        let (recovered, recovery) = DedupNode::recover(0, &cfg, journal).unwrap();
        assert_eq!(recovery.gc_records_replayed, 2, "one drop + one compact");
        assert_eq!(recovery.recipe_deletes_replayed, 1);
        assert_eq!(
            recovered.storage_usage(),
            physical_after_gc,
            "collected containers must not resurrect"
        );
        for (i, d) in keep.descriptors().iter().enumerate().take(3) {
            assert_eq!(
                recovered.read_chunk(&d.fingerprint).unwrap(),
                keep.payload(i).unwrap()
            );
        }
        for d in dead.descriptors() {
            assert!(recovered.read_chunk(&d.fingerprint).is_err());
        }
        recovered.verify_consistency().unwrap();

        // Compaction folds the GC history into the snapshot too.
        recovered.compact_journal().unwrap();
        let journal = recovered.journal().unwrap().clone();
        let (again, _) = DedupNode::recover(0, &cfg, journal).unwrap();
        assert_eq!(again.storage_usage(), physical_after_gc);
        again.verify_consistency().unwrap();
    }

    #[test]
    fn sweep_crash_on_the_gc_append_leaves_the_victim_untouched() {
        let cfg = durable_config();
        let node = DedupNode::new(0, &cfg);
        let sc = payload_super_chunk(4, 6, 2048);
        node.process_super_chunk(0, &sc, &sc.handprint(4)).unwrap();
        node.try_flush().unwrap();
        let physical_before = node.storage_usage();

        let journal = node.journal().unwrap().clone();
        journal.arm_crash_at_seq(journal.next_seq(), sigma_storage::CrashMode::Clean);
        let err = node.sweep_garbage(&HashMap::new(), 0.5);
        assert!(err.is_err(), "the GcDrop append must crash");
        assert_eq!(
            node.storage_usage(),
            physical_before,
            "write-ahead: no drop"
        );

        // Recovery and a re-run finish the sweep.
        let (recovered, _) = DedupNode::recover(0, &cfg, journal).unwrap();
        let report = recovered.sweep_garbage(&HashMap::new(), 0.5).unwrap();
        assert_eq!(report.containers_dropped, 1);
        assert_eq!(recovered.storage_usage(), 0);
        recovered.verify_consistency().unwrap();
    }

    #[test]
    fn multi_stream_processing_is_thread_safe() {
        let node = Arc::new(DedupNode::new(0, &config()));
        let mut handles = Vec::new();
        for stream in 0..4u64 {
            let node = node.clone();
            handles.push(std::thread::spawn(move || {
                let mut builder = SuperChunkBuilder::new(32 * 1024);
                let mut supers = Vec::new();
                for i in 0..64u64 {
                    let id = stream * 1000 + i;
                    let d = ChunkDescriptor::new(Sha1::fingerprint(&id.to_le_bytes()), 4096);
                    if let Some(sc) = builder.push_descriptor(d) {
                        supers.push(sc);
                    }
                }
                supers.extend(builder.finish());
                for sc in supers {
                    node.process_super_chunk(stream, &sc, &sc.handprint(8))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = node.stats();
        assert_eq!(stats.total_chunks, 4 * 64);
        assert_eq!(stats.unique_chunks, 4 * 64);
        assert_eq!(stats.physical_bytes, 4 * 64 * 4096);
    }
}
