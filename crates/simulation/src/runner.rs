//! Drives workload traces through a deduplication cluster.
//!
//! With `sigma.parallelism <= 1` (the default) every generation is replayed on the
//! calling thread, exactly as discrete backup sessions would arrive one file at a
//! time.  With `parallelism > 1` (or `0` = one per core) the runner puts each of
//! the `client_streams` on a real thread: files keep their round-robin
//! stream assignment and their per-stream order, but the streams hit the cluster
//! concurrently — the multi-user ingest pattern the paper's throughput
//! experiments assume.

use serde::{Deserialize, Serialize};
use sigma_core::{ChunkDescriptor, DataRouter, DedupCluster, SigmaConfig, SuperChunkBuilder};
use sigma_metrics::ClusterRunSummary;
use sigma_workloads::{DatasetTrace, FileTrace};

/// Parameters of one simulated cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Number of deduplication nodes.
    pub node_count: usize,
    /// Σ-Dedupe configuration shared by clients and nodes.
    pub sigma: SigmaConfig,
    /// Number of concurrent backup-client streams the generations are spread over.
    pub client_streams: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            node_count: 8,
            sigma: SigmaConfig::default(),
            client_streams: 4,
        }
    }
}

/// The result of one cluster run: the paper's summary metrics plus the full cluster
/// statistics for anyone who wants more detail.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Metric summary (DR, NEDR inputs, message counts).
    pub summary: ClusterRunSummary,
    /// Full per-node statistics.
    pub cluster: sigma_core::ClusterStats,
}

/// Runs `dataset` through a fresh cluster of `config.node_count` nodes using
/// `router`, and returns the summary metrics.
///
/// Every backup generation is flushed (containers sealed) before the next one
/// starts, mirroring discrete backup sessions.
pub fn run_cluster(
    dataset: &DatasetTrace,
    router: Box<dyn DataRouter>,
    config: &SimulationConfig,
) -> ClusterRunSummary {
    run_cluster_detailed(dataset, router, config).summary
}

/// Like [`run_cluster`] but also returns the full cluster statistics.
pub fn run_cluster_detailed(
    dataset: &DatasetTrace,
    router: Box<dyn DataRouter>,
    config: &SimulationConfig,
) -> RunOutcome {
    // File-similarity routers place whole files, so their routing unit must not span
    // file boundaries; all other schemes route the backup *stream*, whose
    // super-chunks freely span consecutive small files (that is what keeps
    // super-chunks at their full 1 MB size on small-file workloads).
    let per_file_super_chunks = router.requires_file_boundaries();
    let cluster = DedupCluster::new(config.node_count, config.sigma.clone(), router);
    let streams = config.client_streams.max(1) as u64;
    let parallelism = config.sigma.effective_parallelism();

    for generation in &dataset.generations {
        if parallelism > 1 && streams > 1 {
            // Threaded mode: one real thread per client stream (up to
            // `parallelism` in flight).  Files keep the same round-robin stream
            // assignment and per-stream order as the serial path below.
            let assignments: Vec<Vec<&FileTrace>> = {
                let mut per_stream: Vec<Vec<&FileTrace>> = vec![Vec::new(); streams as usize];
                for (i, file) in generation.files.iter().enumerate() {
                    per_stream[i % streams as usize].push(file);
                }
                per_stream
            };
            std::thread::scope(|scope| {
                let mut pending = Vec::new();
                for (stream, files) in assignments.into_iter().enumerate() {
                    if pending.len() >= parallelism {
                        // Simple admission control: wait for the oldest stream
                        // before launching another one.
                        let handle: std::thread::ScopedJoinHandle<'_, ()> = pending.remove(0);
                        handle.join().expect("stream worker panicked");
                    }
                    let cluster = &cluster;
                    pending.push(scope.spawn(move || {
                        drive_stream(
                            cluster,
                            stream as u64,
                            &files,
                            dataset.has_file_boundaries,
                            per_file_super_chunks,
                            config.sigma.super_chunk_size,
                        );
                    }));
                }
                for handle in pending {
                    handle.join().expect("stream worker panicked");
                }
            });
        } else {
            let mut builders: Vec<SuperChunkBuilder> = (0..streams)
                .map(|_| SuperChunkBuilder::new(config.sigma.super_chunk_size))
                .collect();
            for (i, file) in generation.files.iter().enumerate() {
                let stream = i as u64 % streams;
                let file_id = if dataset.has_file_boundaries {
                    Some(file.file_id)
                } else {
                    None
                };
                let builder = &mut builders[stream as usize];
                for chunk in &file.chunks {
                    let descriptor = ChunkDescriptor::new(chunk.fingerprint, chunk.len);
                    if let Some(sc) = builder.push_descriptor(descriptor) {
                        cluster
                            .backup_super_chunk(stream, &sc, file_id)
                            .expect("trace-driven backup cannot fail to store synthetic chunks");
                    }
                }
                if per_file_super_chunks {
                    if let Some(sc) = builder.finish() {
                        cluster
                            .backup_super_chunk(stream, &sc, file_id)
                            .expect("trace-driven backup cannot fail to store synthetic chunks");
                    }
                }
            }
            for (stream, builder) in builders.iter_mut().enumerate() {
                if let Some(sc) = builder.finish() {
                    cluster
                        .backup_super_chunk(stream as u64, &sc, None)
                        .expect("trace-driven backup cannot fail to store synthetic chunks");
                }
            }
        }
        cluster.flush();
    }

    let stats = cluster.stats();
    let summary = ClusterRunSummary {
        scheme: cluster.router_name(),
        dataset: dataset.name.clone(),
        nodes: config.node_count,
        logical_bytes: stats.logical_bytes,
        physical_bytes: stats.physical_bytes,
        dedup_ratio: stats.dedup_ratio,
        skew: stats.usage_skew,
        single_node_dr: dataset.exact_dedup_ratio(),
        prerouting_lookups: stats.messages.prerouting_lookups,
        postrouting_lookups: stats.messages.postrouting_lookups,
    };
    RunOutcome {
        summary,
        cluster: stats,
    }
}

/// Replays one stream's files through the cluster, in order — the per-thread body
/// of the threaded runner.
fn drive_stream(
    cluster: &DedupCluster,
    stream: u64,
    files: &[&FileTrace],
    has_file_boundaries: bool,
    per_file_super_chunks: bool,
    super_chunk_size: usize,
) {
    let mut builder = SuperChunkBuilder::new(super_chunk_size);
    for file in files {
        let file_id = if has_file_boundaries {
            Some(file.file_id)
        } else {
            None
        };
        for chunk in &file.chunks {
            let descriptor = ChunkDescriptor::new(chunk.fingerprint, chunk.len);
            if let Some(sc) = builder.push_descriptor(descriptor) {
                cluster
                    .backup_super_chunk(stream, &sc, file_id)
                    .expect("trace-driven backup cannot fail to store synthetic chunks");
            }
        }
        if per_file_super_chunks {
            if let Some(sc) = builder.finish() {
                cluster
                    .backup_super_chunk(stream, &sc, file_id)
                    .expect("trace-driven backup cannot fail to store synthetic chunks");
            }
        }
    }
    if let Some(sc) = builder.finish() {
        cluster
            .backup_super_chunk(stream, &sc, None)
            .expect("trace-driven backup cannot fail to store synthetic chunks");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_baselines::{RoundRobinRouter, StatefulRouter, StatelessRouter};
    use sigma_core::SimilarityRouter;
    use sigma_workloads::{presets, Scale};

    fn tiny_config(nodes: usize) -> SimulationConfig {
        SimulationConfig {
            node_count: nodes,
            ..SimulationConfig::default()
        }
    }

    #[test]
    fn single_node_sigma_matches_exact_dedup() {
        // With one node and the chunk-index fallback enabled, the cluster is an exact
        // deduplicator, so its DR must equal the trace's exact DR.
        let dataset = presets::linux_dataset(Scale::Tiny);
        let summary = run_cluster(
            &dataset,
            Box::new(SimilarityRouter::new(true)),
            &tiny_config(1),
        );
        assert!(
            (summary.dedup_ratio - dataset.exact_dedup_ratio()).abs() / dataset.exact_dedup_ratio()
                < 0.01,
            "cluster {} vs exact {}",
            summary.dedup_ratio,
            dataset.exact_dedup_ratio()
        );
        assert!((summary.normalized_dr() - 1.0).abs() < 0.01);
    }

    #[test]
    fn sigma_beats_stateless_and_round_robin_on_linux() {
        let dataset = presets::linux_dataset(Scale::Tiny);
        let cfg = tiny_config(16);
        let sigma = run_cluster(&dataset, Box::new(SimilarityRouter::new(true)), &cfg);
        let stateless = run_cluster(&dataset, Box::new(StatelessRouter::new()), &cfg);
        let round_robin = run_cluster(&dataset, Box::new(RoundRobinRouter::new()), &cfg);
        assert!(
            sigma.nedr() > stateless.nedr(),
            "sigma {} vs stateless {}",
            sigma.nedr(),
            stateless.nedr()
        );
        assert!(
            sigma.dedup_ratio > round_robin.dedup_ratio,
            "sigma {} vs round-robin {}",
            sigma.dedup_ratio,
            round_robin.dedup_ratio
        );
    }

    #[test]
    fn sigma_overhead_stays_near_stateless_while_stateful_explodes() {
        let dataset = presets::web_dataset(Scale::Tiny);
        let cfg = tiny_config(32);
        let sigma = run_cluster(&dataset, Box::new(SimilarityRouter::new(true)), &cfg);
        let stateless = run_cluster(&dataset, Box::new(StatelessRouter::new()), &cfg);
        let stateful = run_cluster(&dataset, Box::new(StatefulRouter::new()), &cfg);
        // Σ-Dedupe's total lookups stay within 1.25× of stateless (Section 4.4).
        assert!(
            (sigma.total_lookups() as f64) <= 1.3 * stateless.total_lookups() as f64,
            "sigma {} vs stateless {}",
            sigma.total_lookups(),
            stateless.total_lookups()
        );
        assert!(stateful.total_lookups() > 2 * sigma.total_lookups());
    }

    #[test]
    fn sigma_approaches_stateful_effectiveness() {
        let dataset = presets::linux_dataset(Scale::Tiny);
        let cfg = tiny_config(16);
        let sigma = run_cluster(&dataset, Box::new(SimilarityRouter::new(true)), &cfg);
        let stateful = run_cluster(&dataset, Box::new(StatefulRouter::new()), &cfg);
        assert!(
            sigma.nedr() > 0.7 * stateful.nedr(),
            "sigma {} vs stateful {}",
            sigma.nedr(),
            stateful.nedr()
        );
    }

    #[test]
    fn threaded_runner_matches_logical_accounting_and_restores_nothing_lost() {
        let dataset = presets::linux_dataset(Scale::Tiny);
        let sigma = sigma_core::SigmaConfig::builder()
            .parallelism(4)
            .build()
            .unwrap();
        let threaded = SimulationConfig {
            node_count: 4,
            sigma,
            client_streams: 4,
        };
        let outcome =
            run_cluster_detailed(&dataset, Box::new(SimilarityRouter::new(true)), &threaded);
        // Logical bytes are workload-determined, independent of interleaving.
        assert_eq!(outcome.summary.logical_bytes, dataset.logical_bytes());
        // Every chunk fingerprint costs one post-routing lookup.
        assert_eq!(
            outcome.summary.postrouting_lookups,
            dataset.chunk_count(),
            "post-routing lookups must equal total chunks"
        );
        // The cluster never stores more than the logical bytes, nor less than the
        // exact unique set.
        assert!(outcome.summary.physical_bytes <= outcome.summary.logical_bytes);
        assert!(outcome.summary.physical_bytes >= dataset.exact_unique_bytes() / 2);
        // Per-node usage sums to the cluster total.
        assert_eq!(
            outcome.cluster.node_usage.iter().sum::<u64>(),
            outcome.summary.physical_bytes
        );
    }

    #[test]
    fn threaded_single_node_run_still_matches_exact_dedup() {
        // On one node with the chunk-index fallback, dedup is exact no matter how
        // streams interleave: the claim protocol stores each fingerprint once.
        let dataset = presets::linux_dataset(Scale::Tiny);
        let sigma = sigma_core::SigmaConfig::builder()
            .parallelism(4)
            .build()
            .unwrap();
        let config = SimulationConfig {
            node_count: 1,
            sigma,
            client_streams: 4,
        };
        let summary = run_cluster(&dataset, Box::new(SimilarityRouter::new(true)), &config);
        assert!(
            (summary.dedup_ratio - dataset.exact_dedup_ratio()).abs() / dataset.exact_dedup_ratio()
                < 1e-9,
            "threaded cluster {} vs exact {}",
            summary.dedup_ratio,
            dataset.exact_dedup_ratio()
        );
    }

    #[test]
    fn detailed_run_exposes_node_stats() {
        let dataset = presets::web_dataset(Scale::Tiny);
        let outcome = run_cluster_detailed(
            &dataset,
            Box::new(SimilarityRouter::new(true)),
            &tiny_config(4),
        );
        assert_eq!(outcome.cluster.nodes.len(), 4);
        assert_eq!(outcome.cluster.logical_bytes, outcome.summary.logical_bytes);
        assert_eq!(outcome.summary.dataset, "Web");
    }
}
