//! The deduplication server cluster.
//!
//! [`DedupCluster`] wires together N [`DedupNode`]s, a [`DataRouter`] and a
//! [`Director`], and accounts for the fingerprint-lookup messages the routing and
//! deduplication process generates — the overhead metric of Figure 7.
//!
//! Membership is **elastic**: nodes can be added and removed on a live cluster
//! (see the [`membership`](crate::membership) module).  Every routing decision is
//! made against a generation-stamped [`NodeMap`] snapshot, node IDs recorded in
//! file recipes are stable forever, and the [`Rebalancer`] leaves forwarding
//! tombstones behind migrated containers so restores stay byte-identical across
//! any sequence of joins, leaves and migrations.

use crate::membership::{NodeMap, PlannedMove, RebalanceReport, Rebalancer};
use crate::node::{NodeGcReport, RecoveryReport};
use crate::{
    DataRouter, DedupNode, Director, FileId, FileRecipe, Handprint, NodeStats, Result,
    RoutingContext, SigmaConfig, SigmaError, SimilarityRouter, SuperChunk, SuperChunkReceipt,
};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use sigma_hashkit::Fingerprint;
use sigma_storage::ContainerId;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fingerprint-lookup message counters (the paper's system-overhead metric).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageStats {
    /// Lookups sent to candidate nodes before routing (representative fingerprints).
    pub prerouting_lookups: u64,
    /// Lookups sent to the target node after routing (one per chunk fingerprint in
    /// the batched duplicate-or-unique query).
    pub postrouting_lookups: u64,
    /// Remote nodes contacted by pre-routing queries.
    pub nodes_contacted: u64,
    /// Super-chunks routed.
    pub super_chunks_routed: u64,
}

impl MessageStats {
    /// Total fingerprint-lookup messages.
    pub fn total_lookups(&self) -> u64 {
        self.prerouting_lookups + self.postrouting_lookups
    }
}

/// Cluster-wide statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ClusterStats {
    /// Name of the routing scheme in use.
    pub router: String,
    /// Number of deduplication nodes.
    pub node_count: usize,
    /// Logical bytes backed up across the cluster.
    pub logical_bytes: u64,
    /// Physical bytes stored across the cluster.
    pub physical_bytes: u64,
    /// Cluster-wide deduplication ratio (logical / physical).
    pub dedup_ratio: f64,
    /// Physical storage usage per node.
    pub node_usage: Vec<u64>,
    /// Standard deviation of per-node storage usage divided by its mean
    /// (the load-imbalance term of the paper's "effective deduplication ratio").
    pub usage_skew: f64,
    /// Message counters.
    pub messages: MessageStats,
    /// Per-node statistics.
    pub nodes: Vec<NodeStats>,
}

impl ClusterStats {
    /// The paper's *effective deduplication ratio*: the cluster deduplication ratio
    /// divided by `1 + skew`.  Normalising it by a single-node exact-deduplication
    /// ratio yields the EDR curves of Figure 8.
    pub fn effective_dedup_ratio(&self) -> f64 {
        self.dedup_ratio / (1.0 + self.usage_skew)
    }
}

/// What one cluster-wide garbage collection marked and reclaimed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Surviving recipes the mark phase walked (the root set).
    pub recipes_marked: u64,
    /// Distinct live chunks marked across the cluster.
    pub live_chunks: u64,
    /// Bytes of distinct live chunks — physical bytes can never be swept below
    /// this figure.
    pub live_bytes: u64,
    /// Sealed containers the sweep examined.
    pub containers_scanned: u64,
    /// Containers dropped outright (no live chunks).
    pub containers_dropped: u64,
    /// Containers compacted (live chunks rewritten into fresh containers).
    pub containers_compacted: u64,
    /// Containers kept despite dead bytes (liveness at or above the threshold).
    pub containers_kept_partial: u64,
    /// Dead chunks discarded.
    pub chunks_discarded: u64,
    /// Physical bytes reclaimed cluster-wide.
    pub bytes_reclaimed: u64,
    /// Per-node sweep reports, sorted by stable node ID.
    pub nodes: Vec<NodeGcReport>,
}

/// Receipts for one stream's batch: one `(receipt, target node)` pair per
/// super-chunk, in stream order.
pub type BatchReceipts = Vec<(SuperChunkReceipt, usize)>;

/// One backup stream's ordered batch of super-chunks, the unit of
/// [`DedupCluster::backup_batches_concurrent`].
#[derive(Debug, Clone)]
pub struct StreamBatch {
    /// The data-stream identifier (chooses the per-stream open container).
    pub stream: u64,
    /// File-boundary hint for routers that need one.
    pub file_id: Option<u64>,
    /// The stream's super-chunks, in stream order.
    pub super_chunks: Vec<SuperChunk>,
}

/// A cluster of deduplication nodes behind a data-routing scheme.
///
/// # Example
///
/// ```
/// use sigma_core::{DedupCluster, SigmaConfig, SuperChunk};
/// use sigma_hashkit::FingerprintAlgorithm;
///
/// let cluster = DedupCluster::with_similarity_router(4, SigmaConfig::default());
/// let chunks: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i; 4096]).collect();
/// let sc = SuperChunk::from_payloads(FingerprintAlgorithm::Sha1, 0, chunks);
/// let receipt = cluster.backup_super_chunk(0, &sc, None).unwrap();
/// assert_eq!(receipt.unique_chunks, 16);
/// let stats = cluster.stats();
/// assert_eq!(stats.logical_bytes, 16 * 4096);
/// ```
pub struct DedupCluster {
    config: SigmaConfig,
    membership: Arc<RwLock<Membership>>,
    router: Box<dyn DataRouter>,
    director: Director,
    prerouting_lookups: AtomicU64,
    postrouting_lookups: AtomicU64,
    nodes_contacted: AtomicU64,
    super_chunks_routed: AtomicU64,
    /// Logical bytes routed, accounted cluster-wide rather than summed from
    /// per-node counters: a removed node takes its historical ingest counter out
    /// of the active set, but the bytes it ingested (now migrated elsewhere) are
    /// still protected by the cluster and must keep counting toward its
    /// deduplication ratio.
    logical_bytes_routed: AtomicU64,
}

/// Mutable membership state: the current active-node snapshot plus a directory of
/// every node the cluster has ever had.  Retired nodes stay in the directory so
/// recipes written before their removal still resolve (their data has migrated,
/// but their forwarding tombstones have not).
#[derive(Debug)]
pub(crate) struct Membership {
    pub(crate) map: Arc<NodeMap>,
    directory: HashMap<usize, Arc<DedupNode>>,
    next_node_id: usize,
}

impl std::fmt::Debug for DedupCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.node_map();
        f.debug_struct("DedupCluster")
            .field("nodes", &map.len())
            .field("generation", &map.generation())
            .field("router", &self.router.name())
            .finish()
    }
}

impl DedupCluster {
    /// Creates a cluster of `node_count` nodes using the given routing scheme.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero.
    pub fn new(node_count: usize, config: SigmaConfig, router: Box<dyn DataRouter>) -> Self {
        assert!(node_count > 0, "cluster must have at least one node");
        let nodes: Vec<Arc<DedupNode>> = (0..node_count)
            .map(|i| Arc::new(DedupNode::new(i, &config)))
            .collect();
        let directory = nodes.iter().map(|n| (n.id(), n.clone())).collect();
        DedupCluster {
            config,
            membership: Arc::new(RwLock::new(Membership {
                map: Arc::new(NodeMap::new(0, nodes)),
                directory,
                next_node_id: node_count,
            })),
            router,
            director: Director::new(),
            prerouting_lookups: AtomicU64::new(0),
            postrouting_lookups: AtomicU64::new(0),
            nodes_contacted: AtomicU64::new(0),
            super_chunks_routed: AtomicU64::new(0),
            logical_bytes_routed: AtomicU64::new(0),
        }
    }

    /// Creates a cluster using Σ-Dedupe's similarity-based stateful router.
    pub fn with_similarity_router(node_count: usize, config: SigmaConfig) -> Self {
        let balancing = config.capacity_balancing;
        DedupCluster::new(
            node_count,
            config,
            Box::new(SimilarityRouter::new(balancing)),
        )
    }

    /// The cluster configuration.
    pub fn config(&self) -> &SigmaConfig {
        &self.config
    }

    /// Number of *active* deduplication nodes.
    pub fn node_count(&self) -> usize {
        self.node_map().len()
    }

    /// Snapshot of the active deduplication nodes, in slot order.
    pub fn nodes(&self) -> Vec<Arc<DedupNode>> {
        self.node_map().nodes().to_vec()
    }

    /// The current generation-stamped active-node map.
    ///
    /// Every backup entry point takes exactly one such snapshot and routes the
    /// whole call against it, so a concurrent [`add_node`](Self::add_node) /
    /// [`remove_node`](Self::remove_node) never splits a batch across two views
    /// of the cluster.
    pub fn node_map(&self) -> Arc<NodeMap> {
        self.membership.read().map.clone()
    }

    /// The current membership generation (bumped by every add/remove).
    pub fn generation(&self) -> u64 {
        self.node_map().generation()
    }

    /// Stable IDs of the active nodes, in slot order.
    pub fn node_ids(&self) -> Vec<usize> {
        self.node_map().node_ids()
    }

    /// Looks a node up by its stable ID, active or retired.
    ///
    /// Retired nodes remain addressable so recipes that predate their removal can
    /// follow the forwarding tombstones they left behind.
    pub fn node_by_id(&self, id: usize) -> Option<Arc<DedupNode>> {
        self.membership.read().directory.get(&id).cloned()
    }

    /// Number of addressable nodes, active *and* retired — the tombstone-chain
    /// hop cap shared by [`read_chunk`](Self::read_chunk) and the restore
    /// planner (a chain can visit each addressable node at most once).
    pub(crate) fn directory_len(&self) -> usize {
        self.membership.read().directory.len()
    }

    /// The routing scheme's name.
    pub fn router_name(&self) -> String {
        self.router.name()
    }

    /// The director (metadata service).
    pub fn director(&self) -> &Director {
        &self.director
    }

    /// Routes and deduplicates one super-chunk arriving from client stream `stream`.
    ///
    /// `file_id` carries file-boundary information when available; file-similarity
    /// routing schemes require it.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::FileBoundariesRequired`] if the router needs a file ID
    /// and none was given, or a storage error if a unique chunk cannot be stored.
    pub fn backup_super_chunk(
        &self,
        stream: u64,
        super_chunk: &SuperChunk,
        file_id: Option<u64>,
    ) -> Result<SuperChunkReceipt> {
        let map = self.node_map();
        self.backup_super_chunk_on(&map, stream, super_chunk, file_id)
    }

    /// [`backup_super_chunk`](Self::backup_super_chunk) against one fixed node-map
    /// snapshot — the building block that gives batches a consistent membership
    /// view.
    fn backup_super_chunk_on(
        &self,
        map: &NodeMap,
        stream: u64,
        super_chunk: &SuperChunk,
        file_id: Option<u64>,
    ) -> Result<SuperChunkReceipt> {
        if super_chunk.is_empty() {
            return Ok(SuperChunkReceipt::default());
        }
        if self.router.requires_file_boundaries() && file_id.is_none() {
            return Err(SigmaError::FileBoundariesRequired {
                router: self.router.name(),
            });
        }
        let handprint = super_chunk.handprint(self.config.handprint_size);
        let decision = self.router.route(&RoutingContext {
            super_chunk,
            handprint: &handprint,
            file_id,
            nodes: map.nodes(),
        });

        self.prerouting_lookups
            .fetch_add(decision.prerouting_lookup_messages, Ordering::Relaxed);
        self.nodes_contacted
            .fetch_add(decision.nodes_contacted, Ordering::Relaxed);
        // The batched duplicate-or-unique query at the target costs one fingerprint
        // lookup per chunk (source deduplication, Section 3.1).
        self.postrouting_lookups
            .fetch_add(super_chunk.chunk_count() as u64, Ordering::Relaxed);
        self.super_chunks_routed.fetch_add(1, Ordering::Relaxed);
        self.logical_bytes_routed
            .fetch_add(super_chunk.logical_size(), Ordering::Relaxed);

        map.nodes()[decision.target].process_super_chunk(stream, super_chunk, &handprint)
    }

    /// Routes and deduplicates one super-chunk, also returning the target node.
    ///
    /// This is the variant backup clients use so they can record chunk→node mappings
    /// in file recipes.
    ///
    /// # Errors
    ///
    /// Same as [`backup_super_chunk`](DedupCluster::backup_super_chunk).
    pub fn backup_super_chunk_with_target(
        &self,
        stream: u64,
        super_chunk: &SuperChunk,
        file_id: Option<u64>,
    ) -> Result<(SuperChunkReceipt, usize)> {
        let receipt = self.backup_super_chunk(stream, super_chunk, file_id)?;
        Ok((receipt, receipt.node_id))
    }

    /// Routes and deduplicates a batch of super-chunks from one stream, in order.
    ///
    /// Per-stream ordering is what keeps file recipes — and therefore restores —
    /// identical to issuing the super-chunks one by one.  The whole batch routes
    /// against a single node-map snapshot, so a membership change mid-batch never
    /// splits it across two cluster views.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first routing/storage error.
    pub fn backup_super_chunk_batch(
        &self,
        stream: u64,
        super_chunks: &[SuperChunk],
        file_id: Option<u64>,
    ) -> Result<BatchReceipts> {
        let map = self.node_map();
        super_chunks
            .iter()
            .map(|sc| {
                let receipt = self.backup_super_chunk_on(&map, stream, sc, file_id)?;
                Ok((receipt, receipt.node_id))
            })
            .collect()
    }

    /// Processes several streams' batches concurrently on real threads.
    ///
    /// Each batch keeps its internal order (one worker walks it front to back),
    /// while up to `parallelism` batches are in flight at once — the cluster-side
    /// half of the parallel ingest pipeline.  Results come back in input order.
    ///
    /// # Errors
    ///
    /// Returns the first error any stream hit; other streams still run to
    /// completion (their chunks are stored, only their receipts are discarded).
    ///
    /// # Example
    ///
    /// ```
    /// use sigma_core::{DedupCluster, SigmaConfig, StreamBatch, SuperChunk};
    /// use sigma_hashkit::FingerprintAlgorithm;
    ///
    /// let cluster = DedupCluster::with_similarity_router(2, SigmaConfig::default());
    /// let batches: Vec<StreamBatch> = (0..4u64)
    ///     .map(|stream| StreamBatch {
    ///         stream,
    ///         file_id: None,
    ///         super_chunks: vec![SuperChunk::from_payloads(
    ///             FingerprintAlgorithm::Sha1,
    ///             0,
    ///             vec![vec![stream as u8; 4096]],
    ///         )],
    ///     })
    ///     .collect();
    /// let receipts = cluster.backup_batches_concurrent(batches, 4).unwrap();
    /// assert_eq!(receipts.len(), 4);
    /// assert!(receipts.iter().all(|r| r[0].0.unique_chunks == 1));
    /// ```
    pub fn backup_batches_concurrent(
        &self,
        batches: Vec<StreamBatch>,
        parallelism: usize,
    ) -> Result<Vec<BatchReceipts>> {
        crate::pipeline::run_pool(parallelism, batches, |_, batch: StreamBatch| {
            self.backup_super_chunk_batch(batch.stream, &batch.super_chunks, batch.file_id)
        })
        .into_iter()
        .collect()
    }

    /// Reads one chunk back from the node a recipe recorded for it, transparently
    /// following forwarding tombstones if the rebalancer has since migrated the
    /// chunk's container to another node (possibly through several hops).
    ///
    /// # Errors
    ///
    /// Propagates [`SigmaError::ChunkMissing`] / [`SigmaError::PayloadUnavailable`]
    /// from the node.
    pub fn read_chunk(
        &self,
        node: usize,
        fingerprint: &sigma_hashkit::Fingerprint,
    ) -> Result<Vec<u8>> {
        // The hop cap guards against a (theoretical) tombstone cycle: a chain
        // can visit each node at most once.  It is computed lazily so the
        // common chunk-never-migrated path costs a single directory lookup.
        let mut node_id = node;
        let mut hops = 0usize;
        loop {
            let current = self
                .node_by_id(node_id)
                .ok_or_else(|| SigmaError::ChunkMissing {
                    node: node_id,
                    fingerprint: fingerprint.to_string(),
                })?;
            match current.read_chunk(fingerprint) {
                Err(SigmaError::ChunkMigrated { node: next, .. }) => {
                    hops += 1;
                    if hops > self.membership.read().directory.len() {
                        return Err(SigmaError::ChunkMissing {
                            node: next,
                            fingerprint: fingerprint.to_string(),
                        });
                    }
                    node_id = next;
                }
                other => return other,
            }
        }
    }

    /// Reconstructs a previously backed-up file from its recipe.
    ///
    /// Runs the container-aware restore pipeline (see [`crate::RestoreReport`]):
    /// entries are grouped per `(node, container)`, extents coalesce into
    /// batched backend reads served through the container read cache, and
    /// groups fan out [`SigmaConfig::restore_parallelism`] wide, each decoding
    /// straight into the preallocated output.  The output is byte-identical to
    /// [`restore_file_reference`](Self::restore_file_reference), which remains
    /// the behavioural arbiter (and the fallback whenever a plan cannot
    /// represent the recipe).
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::FileNotFound`] for unknown file IDs and propagates chunk
    /// read errors.  Returns [`SigmaError::RestoreTruncated`] when the rebuilt
    /// byte count disagrees with the logical size the recipe records — the
    /// end-to-end guard that a stored chunk payload shrinking or growing out
    /// from under its recipe can never surface as a silently corrupt restore.
    pub fn restore_file(&self, file_id: FileId) -> Result<Vec<u8>> {
        self.restore_file_with_report(file_id)
            .map(|(bytes, _)| bytes)
    }

    /// The serial per-chunk restore the pipeline is measured against: one
    /// [`read_chunk`](Self::read_chunk) per recipe entry, in recipe order,
    /// copying each payload twice (into its own `Vec`, then into the output).
    ///
    /// Kept as the reference implementation — like `sigma_chunking::reference`
    /// — both for the equivalence proptests and as the fallback arbiter when
    /// the planned pipeline meets a recipe it cannot represent.
    ///
    /// # Errors
    ///
    /// Exactly as [`restore_file`](Self::restore_file).
    pub fn restore_file_reference(&self, file_id: FileId) -> Result<Vec<u8>> {
        let recipe = self
            .director
            .recipe(file_id)
            .ok_or(SigmaError::FileNotFound(file_id))?;
        let mut out = Vec::with_capacity(recipe.size as usize);
        for entry in &recipe.chunks {
            let data = self.read_chunk(entry.node, &entry.fingerprint)?;
            out.extend_from_slice(&data);
        }
        if out.len() as u64 != recipe.size {
            return Err(SigmaError::RestoreTruncated {
                file_id,
                expected: recipe.size,
                actual: out.len() as u64,
            });
        }
        Ok(out)
    }

    // ---- Backup lifecycle & garbage collection ----

    /// Deletes one backed-up file: its recipe leaves the root set, so chunks no
    /// surviving recipe references become garbage for the next
    /// [`collect_garbage`](Self::collect_garbage) sweep.  Returns the logical
    /// bytes the deletion released (which also leave the cluster's
    /// `logical_bytes` accounting — deleted data no longer flatters the
    /// deduplication ratio).
    ///
    /// A `RecipeDelete` audit record is journaled, best-effort, on every
    /// durable node the recipe named, giving crash recovery a boundary between
    /// the deletion and the sweep that follows.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::FileNotFound`] for unknown — including
    /// already-deleted — file IDs.
    pub fn delete_file(&self, file_id: FileId) -> Result<u64> {
        let recipe = self
            .director
            .delete_file(file_id)
            .ok_or(SigmaError::FileNotFound(file_id))?;
        Ok(self.account_deleted(std::slice::from_ref(&recipe)))
    }

    /// Deletes a whole backup (a session and every file registered in it).
    /// Returns the logical bytes released.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::BackupNotFound`] for unknown — including
    /// already-deleted — session IDs.
    pub fn delete_backup(&self, session_id: u64) -> Result<u64> {
        let recipes = self
            .director
            .delete_backup(session_id)
            .ok_or(SigmaError::BackupNotFound(session_id))?;
        Ok(self.account_deleted(&recipes))
    }

    /// Expires a whole backup generation: every session opened in it (see
    /// [`BackupClient::with_generation`](crate::BackupClient::with_generation))
    /// and every file those sessions registered.  Returns the logical bytes
    /// released — `Ok(0)` when the generation has no sessions, so a retention
    /// loop can expire idempotently.
    pub fn delete_generation(&self, generation: u64) -> Result<u64> {
        let recipes = self.director.delete_generation(generation);
        Ok(self.account_deleted(&recipes))
    }

    /// Books the deletion of `recipes`: subtracts their logical bytes from the
    /// cluster accounting and journals a `RecipeDelete` audit record on every
    /// durable node each recipe named.
    fn account_deleted(&self, recipes: &[Arc<FileRecipe>]) -> u64 {
        let mut freed = 0u64;
        for recipe in recipes {
            freed += recipe.size;
            let nodes: BTreeSet<usize> = recipe.chunks.iter().map(|e| e.node).collect();
            for node_id in nodes {
                if let Some(node) = self.node_by_id(node_id) {
                    node.note_recipe_deleted(recipe.file_id);
                }
            }
        }
        // Saturating: trace-driven ingest routes logical bytes that never get a
        // recipe, so the counter can only over-cover the recipes being deleted,
        // but a wrap on some future accounting drift must stay impossible.
        let _ = self
            .logical_bytes_routed
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(freed))
            });
        freed
    }

    /// Reclaims the space of deleted backups: a cluster-wide mark-and-sweep.
    ///
    /// **Mark** walks every surviving recipe (the root set) and resolves each
    /// chunk to the node and container that actually holds it *now* — routing
    /// through the node directory and following forwarding tombstones, so a
    /// migration in flight cannot hide a live chunk from the mark.  **Sweep**
    /// then visits every node (active and retired, in stable-ID order):
    /// containers with no live chunks are dropped, containers whose live
    /// fraction falls below [`SigmaConfig::gc_liveness_threshold`] are
    /// compacted (live chunks rewritten into a fresh container before the
    /// victim drops), and every structural change is journaled write-ahead on
    /// durable nodes, so recovery replays to a post-GC-consistent state.
    ///
    /// A cluster with no recipes and no stored data is a no-op (`GcReport`
    /// all-zero).  Note that recipes really are the *only* root set: data
    /// ingested without registering a recipe (trace-driven experiments calling
    /// [`backup_super_chunk`](Self::backup_super_chunk) directly) is garbage to
    /// this sweep.
    ///
    /// Must run at a GC-quiescent point: restores and migrations may
    /// interleave, concurrent backups may not (a chunk could be declared a
    /// duplicate of data the sweep is about to drop).
    ///
    /// # Errors
    ///
    /// Propagates the first node crash (durable clusters under fault
    /// injection); the sweep stops at a journal-record boundary, and re-running
    /// `collect_garbage` after [`restart_node`](Self::restart_node) converges —
    /// completed drops and compactions are simply absent from the next mark.
    pub fn collect_garbage(&self) -> Result<GcReport> {
        let mut nodes: Vec<Arc<DedupNode>> =
            self.membership.read().directory.values().cloned().collect();
        nodes.sort_by_key(|n| n.id());
        let by_id: HashMap<usize, Arc<DedupNode>> =
            nodes.iter().map(|n| (n.id(), n.clone())).collect();
        let recipes = self.director.recipes();

        // Mark: live chunks per (node, container), deduplicated so shared
        // chunks are counted once.
        let mut live: HashMap<usize, HashMap<ContainerId, HashSet<Fingerprint>>> = HashMap::new();
        let mut report = GcReport {
            recipes_marked: recipes.len() as u64,
            ..GcReport::default()
        };
        let hop_cap = nodes.len();
        for recipe in &recipes {
            for entry in &recipe.chunks {
                let mut node_id = entry.node;
                let mut hops = 0usize;
                while let Some(node) = by_id.get(&node_id) {
                    let Some(location) = node.chunk_location(&entry.fingerprint) else {
                        // Unknown to this node's index: the restore path would
                        // fail here too; there is nothing to keep alive.
                        break;
                    };
                    if node.has_sealed_container(&location.container)
                        || node.has_open_container(&location.container)
                    {
                        let fresh = live
                            .entry(node_id)
                            .or_default()
                            .entry(location.container)
                            .or_default()
                            .insert(entry.fingerprint);
                        if fresh {
                            report.live_chunks += 1;
                            report.live_bytes += location.len as u64;
                        }
                        break;
                    }
                    // The container migrated away: follow the tombstone chain,
                    // exactly as a restore would.
                    match node.forwarded_to(&location.container) {
                        Some(next) if hops < hop_cap => {
                            hops += 1;
                            node_id = next;
                        }
                        _ => break,
                    }
                }
            }
        }

        // Sweep, node by node in stable-ID order (deterministic journals).
        let threshold = self.config.gc_liveness_threshold;
        let empty = HashMap::new();
        for node in &nodes {
            let node_live = live.get(&node.id()).unwrap_or(&empty);
            let swept = node.sweep_garbage(node_live, threshold)?;
            report.containers_scanned += swept.containers_scanned;
            report.containers_dropped += swept.containers_dropped;
            report.containers_compacted += swept.containers_compacted;
            report.containers_kept_partial += swept.containers_kept_partial;
            report.chunks_discarded += swept.chunks_discarded;
            report.bytes_reclaimed += swept.bytes_reclaimed;
            report.nodes.push(swept);
        }
        Ok(report)
    }

    /// Seals all open containers on every node — active *and* retired — marking
    /// the end of a backup session.  Crashed nodes are skipped (their flush is a
    /// no-op); durability-aware callers use [`try_flush`](Self::try_flush).
    pub fn flush(&self) {
        let nodes: Vec<Arc<DedupNode>> =
            self.membership.read().directory.values().cloned().collect();
        for node in nodes {
            node.flush();
        }
    }

    /// Seals all open containers on every node, treating the flush as the durable
    /// acknowledgement point: once it returns `Ok`, every backup completed so far
    /// survives any single-node crash.
    ///
    /// # Errors
    ///
    /// Returns the first crash hit; [`crashed_nodes`](Self::crashed_nodes) names
    /// the victim and [`restart_node`](Self::restart_node) recovers it, after
    /// which the flush can be retried.
    pub fn try_flush(&self) -> Result<()> {
        let mut nodes: Vec<Arc<DedupNode>> =
            self.membership.read().directory.values().cloned().collect();
        nodes.sort_by_key(|n| n.id());
        for node in nodes {
            node.try_flush()?;
        }
        Ok(())
    }

    /// Stable IDs of every node (active or retired) whose journal has hit a
    /// crash point and which therefore needs [`restart_node`](Self::restart_node).
    pub fn crashed_nodes(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .membership
            .read()
            .directory
            .values()
            .filter(|n| n.crashed())
            .map(|n| n.id())
            .collect();
        out.sort_unstable();
        out
    }

    /// Resolves a handprint's resemblance on every active node — exposed for
    /// experiments that need a global view (not used by the routing protocol
    /// itself).
    pub fn resemblance_by_node(&self, handprint: &Handprint) -> Vec<usize> {
        self.node_map()
            .nodes()
            .iter()
            .map(|n| n.resemblance_count(handprint))
            .collect()
    }

    // ---- Elastic membership ----

    /// Adds a fresh, empty node to the cluster and returns its stable ID.
    ///
    /// The membership generation is bumped; in-flight batches finish on the
    /// snapshot they started with, subsequent calls route over the grown cluster.
    /// The new node receives data organically from then on — call
    /// [`rebalance_onto`](Self::rebalance_onto) (or use
    /// [`add_node_rebalanced`](Self::add_node_rebalanced)) to also migrate
    /// existing containers to it.
    pub fn add_node(&self) -> usize {
        let mut m = self.membership.write();
        let id = m.next_node_id;
        m.next_node_id += 1;
        let node = Arc::new(DedupNode::new(id, &self.config));
        m.directory.insert(id, node.clone());
        let mut nodes = m.map.nodes().to_vec();
        nodes.push(node);
        m.map = Arc::new(NodeMap::new(m.map.generation() + 1, nodes));
        id
    }

    /// [`add_node`](Self::add_node) followed by a full
    /// [`rebalance_onto`](Self::rebalance_onto) of the new node.
    ///
    /// # Errors
    ///
    /// Propagates a node crash from the migration (durable clusters under fault
    /// injection only); the node is added either way.
    pub fn add_node_rebalanced(&self) -> Result<(usize, RebalanceReport)> {
        let id = self.add_node();
        let report = self.rebalance_onto(id)?;
        Ok((id, report))
    }

    /// Plans a rebalance that migrates sealed containers from over-loaded active
    /// nodes onto node `id` until its storage usage reaches the cluster mean.
    ///
    /// The plan is deterministic (heaviest donors first, containers in ID order)
    /// and executes incrementally: each [`Rebalancer::step`] moves one container
    /// and may be freely interleaved with backups and restores.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::UnknownNode`] if `id` is not an active node.
    pub fn begin_rebalance_onto(&self, id: usize) -> Result<Rebalancer> {
        let map = self.node_map();
        let slot = map.slot_of(id).ok_or(SigmaError::UnknownNode(id))?;
        let target = map.nodes()[slot].clone();
        let total: u64 = map.nodes().iter().map(|n| n.storage_usage()).sum();
        let mean = total / map.len() as u64;
        let mut target_usage = target.storage_usage();

        // Heaviest donors first; node ID breaks ties so plans are deterministic.
        let mut donors: Vec<(Arc<DedupNode>, u64)> = map
            .nodes()
            .iter()
            .filter(|n| n.id() != id)
            .map(|n| (n.clone(), n.storage_usage()))
            .collect();
        donors.sort_by_key(|(n, usage)| (std::cmp::Reverse(*usage), n.id()));

        let mut moves = Vec::new();
        'donors: for (donor, mut usage) in donors {
            for container in donor.sealed_container_ids() {
                if target_usage >= mean {
                    break 'donors;
                }
                if usage <= mean {
                    break;
                }
                let size = donor.container_data_size(&container).unwrap_or(0) as u64;
                if size == 0 {
                    continue;
                }
                moves.push(PlannedMove {
                    from: donor.clone(),
                    to: target.clone(),
                    container,
                });
                usage -= size.min(usage);
                target_usage += size;
            }
        }
        Ok(Rebalancer::new(
            moves,
            map.generation(),
            self.membership.clone(),
            None,
        ))
    }

    /// Plans and fully executes a rebalance onto node `id`.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::UnknownNode`] if `id` is not an active node, and
    /// propagates node crashes from the migration itself.
    pub fn rebalance_onto(&self, id: usize) -> Result<RebalanceReport> {
        self.begin_rebalance_onto(id)?.run()
    }

    /// Removes node `id` from the active map and plans the migration of all its
    /// sealed containers onto the remaining nodes (least-loaded first).
    ///
    /// The node stops receiving new routed data immediately (generation bump); it
    /// stays resolvable through [`node_by_id`](Self::node_by_id) so recipes that
    /// name it keep restoring — during the drain from its own store, afterwards
    /// via the forwarding tombstones the migration leaves behind.  The returned
    /// [`Rebalancer`] must be driven ([`step`](Rebalancer::step) or
    /// [`run`](Rebalancer::run)) to actually move the data; [`Rebalancer::run`]
    /// additionally sweeps containers sealed by writes that raced the removal on
    /// an older node-map snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::UnknownNode`] if `id` is not active and
    /// [`SigmaError::ClusterTooSmall`] when `id` is the last active node.
    pub fn begin_remove_node(&self, id: usize) -> Result<Rebalancer> {
        let (node, generation) = {
            let mut m = self.membership.write();
            let slot = m.map.slot_of(id).ok_or(SigmaError::UnknownNode(id))?;
            if m.map.len() == 1 {
                return Err(SigmaError::ClusterTooSmall);
            }
            let mut nodes = m.map.nodes().to_vec();
            let node = nodes.remove(slot);
            let generation = m.map.generation() + 1;
            m.map = Arc::new(NodeMap::new(generation, nodes));
            (node, generation)
        };
        node.flush();
        self.plan_drain(node, generation)
    }

    /// Re-plans the drain of an already-removed node — the crash-recovery resume
    /// path: when a node dies mid-removal and is
    /// [`restart_node`](Self::restart_node)ed, the original [`Rebalancer`] is
    /// stale (it holds the dead node object), and the node cannot be
    /// "removed" again because it already left the active map.  `resume_drain`
    /// plans the migration of whatever sealed containers the retired node still
    /// holds; already-migrated containers are naturally absent from the new plan,
    /// and re-migrations of half-moved ones are deduplicated by the adoption
    /// ledger.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::UnknownNode`] if `id` was never a cluster member,
    /// and [`SigmaError::InvalidConfig`] if the node is still active (use
    /// [`begin_remove_node`](Self::begin_remove_node) for that).
    pub fn resume_drain(&self, id: usize) -> Result<Rebalancer> {
        let (node, generation) = {
            let m = self.membership.read();
            let node = m
                .directory
                .get(&id)
                .cloned()
                .ok_or(SigmaError::UnknownNode(id))?;
            if m.map.slot_of(id).is_some() {
                return Err(SigmaError::InvalidConfig(format!(
                    "node {} is still active; drain it with begin_remove_node",
                    id
                )));
            }
            (node, m.map.generation())
        };
        node.flush();
        self.plan_drain(node, generation)
    }

    /// Plans the migration of every sealed container off `node` onto the
    /// projected least-loaded active nodes.
    fn plan_drain(&self, node: Arc<DedupNode>, generation: u64) -> Result<Rebalancer> {
        let remaining = self.node_map().nodes().to_vec();
        let mut projected: Vec<(Arc<DedupNode>, u64)> = remaining
            .iter()
            .filter(|n| n.id() != node.id())
            .map(|n| (n.clone(), n.storage_usage()))
            .collect();
        if projected.is_empty() {
            return Err(SigmaError::ClusterTooSmall);
        }
        let mut moves = Vec::new();
        for container in node.sealed_container_ids() {
            let size = node.container_data_size(&container).unwrap_or(0) as u64;
            let (to, usage) = projected
                .iter_mut()
                .min_by_key(|(n, usage)| (*usage, n.id()))
                .expect("a drain always has at least one destination");
            moves.push(PlannedMove {
                from: node.clone(),
                to: to.clone(),
                container,
            });
            *usage += size;
        }
        Ok(Rebalancer::new(
            moves,
            generation,
            self.membership.clone(),
            Some(node),
        ))
    }

    /// Removes node `id` and fully drains it onto the remaining nodes.
    ///
    /// # Errors
    ///
    /// Same as [`begin_remove_node`](Self::begin_remove_node), plus node crashes
    /// propagated from the drain itself.
    pub fn remove_node(&self, id: usize) -> Result<RebalanceReport> {
        self.begin_remove_node(id)?.run()
    }

    // ---- Crash recovery ----

    /// Rebuilds a crashed node from its write-ahead journal and swaps the
    /// recovered node into the cluster (same stable ID, same slot if it was
    /// active), then reconciles half-completed migrations: a container the
    /// recovered node still holds but some peer has durably adopted gets its
    /// missing tombstone published (and the local copy dropped), and vice versa —
    /// so a crash inside a [`Rebalancer::step`] can never leave a container
    /// duplicated or a tombstone chain dangling.
    ///
    /// Everything the crashed node acknowledged (sealed and journaled before the
    /// crash) is served again afterwards, byte-identically; its open containers —
    /// never acknowledged — are lost, as a real crash would lose them.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::UnknownNode`] for an ID the cluster never had and
    /// [`SigmaError::InvalidConfig`] when the node has no journal
    /// ([`SigmaConfig::durability`] off).
    pub fn restart_node(&self, id: usize) -> Result<RecoveryReport> {
        let old = self.node_by_id(id).ok_or(SigmaError::UnknownNode(id))?;
        let journal = old.journal().cloned().ok_or_else(|| {
            SigmaError::InvalidConfig(format!(
                "node {} has no write-ahead journal (durability is off)",
                id
            ))
        })?;
        drop(old); // the crashed in-memory state is discarded, only the journal survives
        let (node, report) = DedupNode::recover(id, &self.config, journal)?;
        self.install_recovered_node(id, node, report)
    }

    /// Like [`restart_node`](Self::restart_node), but re-opens the node's
    /// journal from its on-disk directory instead of reusing the surviving
    /// in-memory [`Journal`](sigma_storage::Journal) handle — the
    /// process-restart path for clusters configured with
    /// [`BackendKind::File`](sigma_storage::BackendKind::File).  Nothing from
    /// the crashed node object is consulted; the node ID only has to be one the
    /// cluster knows so the recovered node lands back in its slot.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::UnknownNode`] for an ID the cluster never had,
    /// [`SigmaError::InvalidConfig`] when the config has no file-backed
    /// storage directory for the node, and [`SigmaError::Storage`] when the
    /// directory or its journal cannot be opened.
    pub fn restart_node_from_disk(&self, id: usize) -> Result<RecoveryReport> {
        if self.node_by_id(id).is_none() {
            return Err(SigmaError::UnknownNode(id));
        }
        let (node, report) = DedupNode::recover_from_dir(id, &self.config)?;
        self.install_recovered_node(id, node, report)
    }

    /// Shared tail of [`restart_node`](Self::restart_node) and
    /// [`restart_node_from_disk`](Self::restart_node_from_disk): swaps the
    /// recovered node into the directory (and its slot, if active) and
    /// reconciles migrations the crash cut in half.
    fn install_recovered_node(
        &self,
        id: usize,
        node: DedupNode,
        mut report: RecoveryReport,
    ) -> Result<RecoveryReport> {
        let node = Arc::new(node);
        {
            let mut m = self.membership.write();
            m.directory.insert(id, node.clone());
            if let Some(slot) = m.map.slot_of(id) {
                let mut nodes = m.map.nodes().to_vec();
                nodes[slot] = node.clone();
                // Bump the generation: in-flight batches finish against the dead
                // node's snapshot (and fail with a crash error), new ones route
                // to the recovered node.
                m.map = Arc::new(NodeMap::new(m.map.generation() + 1, nodes));
            }
        }

        // Reconcile migrations the crash cut in half.  Deterministic order: peers
        // sorted by stable ID.  Peers that are themselves crashed are skipped —
        // their journals refuse appends, and the symmetric sweep of their own
        // restart finishes the hand-off once they recover; reconciliation is
        // convergent regardless of restart order.
        let mut peers: Vec<Arc<DedupNode>> = self
            .membership
            .read()
            .directory
            .values()
            .filter(|n| n.id() != id && !n.crashed())
            .cloned()
            .collect();
        peers.sort_by_key(|n| n.id());
        for peer in &peers {
            // The recovered node crashed before publishing a tombstone for a
            // container the peer already adopted durably: finish the hand-off.
            for (origin_node, origin_cid, _) in peer.adopted_origins() {
                if origin_node == id
                    && node.has_sealed_container(&origin_cid)
                    && node.forwarded_to(&origin_cid).is_none()
                {
                    node.retire_container(origin_cid, peer.id())?;
                    report.reconciled_migrations += 1;
                }
            }
            // Symmetric case: the recovered node durably adopted a container the
            // (live or earlier-recovered) peer never got to retire.
            for (origin_node, origin_cid, _) in node.adopted_origins() {
                if origin_node == peer.id()
                    && peer.has_sealed_container(&origin_cid)
                    && peer.forwarded_to(&origin_cid).is_none()
                {
                    peer.retire_container(origin_cid, id)?;
                    report.reconciled_migrations += 1;
                }
            }
        }
        Ok(report)
    }

    /// Logical bytes currently accounted to the cluster (routed minus
    /// deleted) — the cheap entry point the service layer's quota accounting
    /// reads, without computing a full [`stats`](Self::stats) snapshot.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes_routed.load(Ordering::Relaxed)
    }

    /// Logical bytes of the surviving recipes, grouped by tenant tag — the
    /// cluster-side ground truth the service layer's per-tenant accounting is
    /// cross-checked against.  Sessions opened without a tenant tag are not
    /// included (see
    /// [`Director::untagged_logical_bytes`](crate::Director::untagged_logical_bytes)).
    pub fn tenant_logical_bytes(&self) -> std::collections::BTreeMap<String, u64> {
        self.director.logical_bytes_by_tenant()
    }

    /// Physical bytes stored across the whole node directory (active nodes
    /// plus retired nodes still holding containers mid-drain), without
    /// computing a full [`stats`](Self::stats) snapshot.
    pub fn physical_bytes(&self) -> u64 {
        let m = self.membership.read();
        m.directory.values().map(|n| n.storage_usage()).sum()
    }

    /// Message counters so far.
    pub fn message_stats(&self) -> MessageStats {
        MessageStats {
            prerouting_lookups: self.prerouting_lookups.load(Ordering::Relaxed),
            postrouting_lookups: self.postrouting_lookups.load(Ordering::Relaxed),
            nodes_contacted: self.nodes_contacted.load(Ordering::Relaxed),
            super_chunks_routed: self.super_chunks_routed.load(Ordering::Relaxed),
        }
    }

    /// Cluster-wide statistics snapshot.
    ///
    /// Per-node figures (`node_usage`, `nodes`, skew) cover the *active* nodes;
    /// `logical_bytes` is the cluster-wide routed total, which survives node
    /// removals (the removed node's data migrated, its history did not vanish).
    /// `physical_bytes` sums the whole node directory — active nodes *plus*
    /// retired nodes that still hold containers mid-drain — so it always means
    /// "bytes the cluster stores", and `collect_garbage` (which sweeps retired
    /// stragglers too) satisfies `physical_after == physical_before −
    /// bytes_reclaimed` even with an incremental removal in flight.
    pub fn stats(&self) -> ClusterStats {
        let map = self.node_map();
        let nodes: Vec<NodeStats> = map.nodes().iter().map(|n| n.stats()).collect();
        let logical: u64 = self.logical_bytes_routed.load(Ordering::Relaxed);
        let physical: u64 = {
            let m = self.membership.read();
            m.directory.values().map(|n| n.storage_usage()).sum()
        };
        let usage: Vec<u64> = nodes.iter().map(|n| n.physical_bytes).collect();
        let dedup_ratio = if physical == 0 {
            1.0
        } else {
            logical as f64 / physical as f64
        };
        ClusterStats {
            router: self.router.name(),
            node_count: map.len(),
            logical_bytes: logical,
            physical_bytes: physical,
            dedup_ratio,
            usage_skew: usage_skew(&usage),
            node_usage: usage,
            messages: self.message_stats(),
            nodes,
        }
    }
}

/// Standard deviation of per-node storage usage divided by the mean usage
/// (0 when the mean is zero).
pub(crate) fn usage_skew(usage: &[u64]) -> f64 {
    if usage.is_empty() {
        return 0.0;
    }
    let mean = usage.iter().map(|&u| u as f64).sum::<f64>() / usage.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let variance = usage
        .iter()
        .map(|&u| {
            let d = u as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / usage.len() as f64;
    variance.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChunkDescriptor;
    use sigma_hashkit::{Digest, FingerprintAlgorithm, Sha1};

    fn super_chunk(ids: std::ops::Range<u64>) -> SuperChunk {
        SuperChunk::from_descriptors(
            0,
            ids.map(|i| ChunkDescriptor::new(Sha1::fingerprint(&i.to_le_bytes()), 4096))
                .collect(),
        )
    }

    #[test]
    fn skew_is_zero_for_balanced_usage() {
        assert_eq!(usage_skew(&[]), 0.0);
        assert_eq!(usage_skew(&[0, 0, 0]), 0.0);
        assert!(usage_skew(&[100, 100, 100, 100]).abs() < 1e-12);
        assert!(usage_skew(&[100, 0, 100, 0]) > 0.9);
    }

    #[test]
    fn cluster_backup_accounts_messages() {
        let cluster = DedupCluster::with_similarity_router(8, SigmaConfig::default());
        let sc = super_chunk(0..256);
        cluster.backup_super_chunk(0, &sc, None).unwrap();
        let m = cluster.message_stats();
        assert_eq!(m.super_chunks_routed, 1);
        assert_eq!(m.postrouting_lookups, 256);
        // Pre-routing lookups = candidates * handprint size <= 8 * 8.
        assert!(m.prerouting_lookups > 0 && m.prerouting_lookups <= 64);
        assert!(m.total_lookups() >= 256);
    }

    #[test]
    fn duplicate_data_is_not_stored_twice_cluster_wide() {
        let cluster = DedupCluster::with_similarity_router(4, SigmaConfig::default());
        let sc = super_chunk(0..256);
        cluster.backup_super_chunk(0, &sc, None).unwrap();
        cluster.backup_super_chunk(0, &sc, None).unwrap();
        let stats = cluster.stats();
        assert_eq!(stats.logical_bytes, 2 * 256 * 4096);
        assert_eq!(stats.physical_bytes, 256 * 4096);
        assert!((stats.dedup_ratio - 2.0).abs() < 1e-9);
        assert!(stats.effective_dedup_ratio() <= stats.dedup_ratio);
    }

    #[test]
    fn empty_super_chunk_is_a_no_op() {
        let cluster = DedupCluster::with_similarity_router(2, SigmaConfig::default());
        let sc = SuperChunk::from_descriptors(0, Vec::new());
        let r = cluster.backup_super_chunk(0, &sc, None).unwrap();
        assert_eq!(r.total_chunks(), 0);
        assert_eq!(cluster.message_stats().super_chunks_routed, 0);
    }

    #[test]
    fn restore_of_unknown_file_fails() {
        let cluster = DedupCluster::with_similarity_router(2, SigmaConfig::default());
        assert!(matches!(
            cluster.restore_file(7),
            Err(SigmaError::FileNotFound(7))
        ));
    }

    #[test]
    fn payload_super_chunks_round_trip_through_read_chunk() {
        let cluster = DedupCluster::with_similarity_router(4, SigmaConfig::default());
        let chunks: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 2048]).collect();
        let sc = SuperChunk::from_payloads(FingerprintAlgorithm::Sha1, 0, chunks.clone());
        let (receipt, node) = cluster
            .backup_super_chunk_with_target(0, &sc, None)
            .unwrap();
        assert_eq!(receipt.unique_chunks, 8);
        cluster.flush();
        for (i, d) in sc.descriptors().iter().enumerate() {
            assert_eq!(cluster.read_chunk(node, &d.fingerprint).unwrap(), chunks[i]);
        }
    }

    #[test]
    fn resemblance_by_node_sees_routed_data() {
        let cluster = DedupCluster::with_similarity_router(4, SigmaConfig::default());
        let sc = super_chunk(0..256);
        let hp = sc.handprint(8);
        let before = cluster.resemblance_by_node(&hp);
        assert!(before.iter().all(|&r| r == 0));
        cluster.backup_super_chunk(0, &sc, None).unwrap();
        let after = cluster.resemblance_by_node(&hp);
        assert_eq!(after.iter().filter(|&&r| r > 0).count(), 1);
    }

    #[test]
    fn add_node_bumps_generation_and_grows_routing() {
        let cluster = DedupCluster::with_similarity_router(2, SigmaConfig::default());
        assert_eq!(cluster.generation(), 0);
        assert_eq!(cluster.node_ids(), vec![0, 1]);
        let id = cluster.add_node();
        assert_eq!(id, 2);
        assert_eq!(cluster.generation(), 1);
        assert_eq!(cluster.node_count(), 3);
        assert_eq!(cluster.node_ids(), vec![0, 1, 2]);
        // The new node is addressable and empty.
        assert_eq!(cluster.node_by_id(2).unwrap().storage_usage(), 0);
    }

    #[test]
    fn remove_node_errors() {
        let cluster = DedupCluster::with_similarity_router(1, SigmaConfig::default());
        assert!(matches!(
            cluster.remove_node(7),
            Err(SigmaError::UnknownNode(7))
        ));
        assert!(matches!(
            cluster.remove_node(0),
            Err(SigmaError::ClusterTooSmall)
        ));
        // Still fully operational afterwards.
        assert_eq!(cluster.node_count(), 1);
    }

    #[test]
    fn remove_node_conserves_physical_bytes_and_restores() {
        let config = SigmaConfig::builder()
            .super_chunk_size(64 * 1024)
            .container_capacity(128 * 1024)
            .build()
            .unwrap();
        let cluster = Arc::new(DedupCluster::with_similarity_router(3, config));
        let client = crate::BackupClient::new(cluster.clone(), 0);
        let data: Vec<u8> = (0..400_000u32).map(|i| (i % 251) as u8).collect();
        let report = client.backup_bytes("victim.bin", &data).unwrap();
        cluster.flush();

        let before = cluster.stats().physical_bytes;
        // Remove every node that holds data, one at a time, down to a single
        // survivor; after each removal the file must still restore byte-identically
        // and no byte may be duplicated or lost.
        for id in [0usize, 1] {
            let rebalance = cluster.remove_node(id).unwrap();
            assert_eq!(cluster.stats().physical_bytes, before, "conserved");
            assert_eq!(cluster.restore_file(report.file_id).unwrap(), data);
            // The retired node is drained but still addressable for forwarding.
            let retired = cluster.node_by_id(id).unwrap();
            assert_eq!(retired.storage_usage(), 0);
            let _ = rebalance;
        }
        assert_eq!(cluster.node_count(), 1);
        assert_eq!(cluster.generation(), 2);
        // Chained tombstones: data written to node 0 may have hopped 0 → 1 → 2.
        assert_eq!(cluster.restore_file(report.file_id).unwrap(), data);
    }

    #[test]
    fn rebalance_onto_new_node_moves_data_and_preserves_restores() {
        let config = SigmaConfig::builder()
            .super_chunk_size(64 * 1024)
            .container_capacity(128 * 1024)
            .build()
            .unwrap();
        let cluster = Arc::new(DedupCluster::with_similarity_router(2, config));
        let client = crate::BackupClient::new(cluster.clone(), 0);
        let data: Vec<u8> = (0..600_000u32).map(|i| (i % 241) as u8).collect();
        let report = client.backup_bytes("grow.bin", &data).unwrap();
        cluster.flush();
        let before = cluster.stats().physical_bytes;

        let (id, rebalance) = cluster.add_node_rebalanced().unwrap();
        assert!(rebalance.containers_moved > 0, "new node must receive data");
        assert_eq!(rebalance.generation, 1);
        let new_usage = cluster.node_by_id(id).unwrap().storage_usage();
        assert!(new_usage > 0);
        // Roughly the cluster mean (within one container of it).
        assert!(new_usage <= before / 3 + 128 * 1024);
        assert_eq!(cluster.stats().physical_bytes, before, "conserved");
        assert_eq!(cluster.restore_file(report.file_id).unwrap(), data);
    }

    #[test]
    fn stepwise_rebalancer_reports_progress() {
        let config = SigmaConfig::builder()
            .super_chunk_size(64 * 1024)
            .container_capacity(128 * 1024)
            .build()
            .unwrap();
        let cluster = Arc::new(DedupCluster::with_similarity_router(2, config));
        let client = crate::BackupClient::new(cluster.clone(), 0);
        let data: Vec<u8> = (0..500_000u32).map(|i| (i % 239) as u8).collect();
        let report = client.backup_bytes("steps.bin", &data).unwrap();
        cluster.flush();

        let mut rebalancer = cluster.begin_remove_node(0).unwrap();
        let planned = rebalancer.remaining();
        assert!(planned > 0);
        let mut moved = 0;
        while let Some(receipt) = rebalancer.step().unwrap() {
            moved += 1;
            assert_eq!(receipt.from, 0);
            // Mid-flight restores stay byte-identical after every single move.
            assert_eq!(cluster.restore_file(report.file_id).unwrap(), data);
        }
        assert_eq!(moved, planned);
        assert!(rebalancer.is_done());
        let final_report = rebalancer.run().unwrap();
        assert_eq!(final_report.containers_moved as usize, moved);
    }

    #[test]
    fn stale_join_plan_does_not_strand_data_on_a_removed_node() {
        let config = SigmaConfig::builder()
            .super_chunk_size(64 * 1024)
            .container_capacity(128 * 1024)
            .build()
            .unwrap();
        let cluster = Arc::new(DedupCluster::with_similarity_router(2, config));
        let client = crate::BackupClient::new(cluster.clone(), 0);
        let data: Vec<u8> = (0..400_000u32).map(|i| (i % 249) as u8).collect();
        let report = client.backup_bytes("stale.bin", &data).unwrap();
        cluster.flush();
        let before = cluster.stats().physical_bytes;

        // Plan a rebalance onto a new node, then remove that node before the
        // plan runs: the stale plan must void itself rather than migrate data
        // onto the retired node.
        let id = cluster.add_node();
        let stale = cluster.begin_rebalance_onto(id).unwrap();
        assert!(stale.remaining() > 0);
        cluster.remove_node(id).unwrap();
        let outcome = stale.run().unwrap();
        assert_eq!(outcome.containers_moved, 0, "stale join plan must void");
        assert_eq!(cluster.stats().physical_bytes, before, "conserved");
        assert_eq!(cluster.restore_file(report.file_id).unwrap(), data);
    }

    #[test]
    fn overlapping_plans_skip_already_migrated_containers() {
        let config = SigmaConfig::builder()
            .super_chunk_size(64 * 1024)
            .container_capacity(128 * 1024)
            .build()
            .unwrap();
        let cluster = Arc::new(DedupCluster::with_similarity_router(3, config));
        let client = crate::BackupClient::new(cluster.clone(), 0);
        let data: Vec<u8> = (0..400_000u32).map(|i| (i % 247) as u8).collect();
        let report = client.backup_bytes("overlap.bin", &data).unwrap();
        cluster.flush();
        let before = cluster.stats().physical_bytes;

        // Two overlapping drain plans for the same node: the second runs first
        // and migrates everything; the first must skip the vanished containers
        // (not silently abort on the first missing one) and change nothing.
        let first = cluster.begin_remove_node(0).unwrap();
        // Re-adding the node id is not possible, so build the overlap from a
        // second plan over the same already-planned moves.
        let second = Rebalancer::new(
            first.moves.iter().cloned().collect(),
            first.report().generation,
            cluster.membership.clone(),
            None,
        );
        let done = first.run().unwrap();
        assert!(done.containers_moved > 0);
        let noop = second.run().unwrap();
        assert_eq!(
            noop.containers_moved, 0,
            "already-migrated containers are skipped, not re-moved"
        );
        assert_eq!(cluster.stats().physical_bytes, before, "conserved");
        assert_eq!(cluster.restore_file(report.file_id).unwrap(), data);
    }

    fn lifecycle_config() -> SigmaConfig {
        SigmaConfig::builder()
            .super_chunk_size(64 * 1024)
            .container_capacity(64 * 1024)
            .build()
            .unwrap()
    }

    #[test]
    fn delete_file_then_gc_reclaims_space_and_keeps_survivors() {
        let cluster = Arc::new(DedupCluster::with_similarity_router(3, lifecycle_config()));
        let keep_client = crate::BackupClient::with_generation(cluster.clone(), 0, 0);
        let drop_client = crate::BackupClient::with_generation(cluster.clone(), 1, 1);
        let keep_data: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
        let drop_data: Vec<u8> = (0..300_000u32).map(|i| (i % 241) as u8).collect();
        let keep = keep_client.backup_bytes("keep.bin", &keep_data).unwrap();
        let dropped = drop_client.backup_bytes("drop.bin", &drop_data).unwrap();
        cluster.flush();

        let before = cluster.stats();
        let freed = cluster.delete_file(dropped.file_id).unwrap();
        assert_eq!(freed, drop_data.len() as u64);
        // Deletion alone reclaims nothing; logical accounting already shrank.
        let mid = cluster.stats();
        assert_eq!(mid.physical_bytes, before.physical_bytes);
        assert_eq!(mid.logical_bytes, before.logical_bytes - freed);

        let report = cluster.collect_garbage().unwrap();
        assert!(report.bytes_reclaimed > 0, "dead generation must shrink");
        assert!(report.containers_dropped + report.containers_compacted > 0);
        let after = cluster.stats();
        assert_eq!(
            after.physical_bytes,
            before.physical_bytes - report.bytes_reclaimed
        );
        assert!(
            after.physical_bytes >= report.live_bytes,
            "never below live"
        );
        assert_eq!(cluster.restore_file(keep.file_id).unwrap(), keep_data);
        assert!(matches!(
            cluster.restore_file(dropped.file_id),
            Err(SigmaError::FileNotFound(_))
        ));
        for node in cluster.nodes() {
            node.verify_consistency().unwrap();
        }

        // GC is idempotent: a second sweep over the same root set is a no-op.
        let again = cluster.collect_garbage().unwrap();
        assert_eq!(again.bytes_reclaimed, 0);
        assert_eq!(cluster.stats().physical_bytes, after.physical_bytes);
    }

    #[test]
    fn shared_chunks_survive_the_deletion_of_one_referencing_file() {
        let cluster = Arc::new(DedupCluster::with_similarity_router(2, lifecycle_config()));
        let client = crate::BackupClient::new(cluster.clone(), 0);
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 239) as u8).collect();
        let a = client.backup_bytes("gen-a", &data).unwrap();
        let b = client.backup_bytes("gen-b", &data).unwrap();
        cluster.flush();
        let before = cluster.stats().physical_bytes;

        // Both recipes reference the same chunks; deleting one frees nothing.
        cluster.delete_file(a.file_id).unwrap();
        let report = cluster.collect_garbage().unwrap();
        assert_eq!(report.bytes_reclaimed, 0, "shared chunks stay live");
        assert_eq!(cluster.stats().physical_bytes, before);
        assert_eq!(cluster.restore_file(b.file_id).unwrap(), data);

        // Deleting the last reference makes them garbage.
        cluster.delete_file(b.file_id).unwrap();
        let report = cluster.collect_garbage().unwrap();
        assert_eq!(report.live_chunks, 0);
        assert_eq!(cluster.stats().physical_bytes, 0);
    }

    #[test]
    fn lifecycle_errors_are_clean() {
        let cluster = Arc::new(DedupCluster::with_similarity_router(2, lifecycle_config()));
        assert!(matches!(
            cluster.delete_file(99),
            Err(SigmaError::FileNotFound(99))
        ));
        assert!(matches!(
            cluster.delete_backup(99),
            Err(SigmaError::BackupNotFound(99))
        ));
        // GC on an empty cluster is a no-op.
        let report = cluster.collect_garbage().unwrap();
        assert_eq!(report.recipes_marked, 0);
        assert_eq!(report.containers_scanned, 0);
        assert_eq!(report.bytes_reclaimed, 0);
        assert_eq!(
            report.nodes.len(),
            2,
            "every node is swept, finding nothing"
        );
        // Expiring a generation nobody opened is an idempotent no-op.
        assert_eq!(cluster.delete_generation(7).unwrap(), 0);

        let client = crate::BackupClient::new(cluster.clone(), 0);
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 233) as u8).collect();
        let report = client.backup_bytes("once.bin", &data).unwrap();
        cluster.flush();
        cluster.delete_file(report.file_id).unwrap();
        // Double delete and delete-then-restore are errors, not panics.
        assert!(matches!(
            cluster.delete_file(report.file_id),
            Err(SigmaError::FileNotFound(_))
        ));
        assert!(matches!(
            cluster.restore_file(report.file_id),
            Err(SigmaError::FileNotFound(_))
        ));
    }

    #[test]
    fn delete_backup_expires_a_whole_session() {
        let cluster = Arc::new(DedupCluster::with_similarity_router(2, lifecycle_config()));
        let client = crate::BackupClient::new(cluster.clone(), 0);
        let data_a: Vec<u8> = (0..150_000u32).map(|i| (i % 229) as u8).collect();
        let data_b: Vec<u8> = (0..150_000u32).map(|i| (i % 227) as u8).collect();
        let a = client.backup_bytes("a.bin", &data_a).unwrap();
        let b = client.backup_bytes("b.bin", &data_b).unwrap();
        cluster.flush();
        let freed = cluster.delete_backup(client.session_id()).unwrap();
        assert_eq!(freed, (data_a.len() + data_b.len()) as u64);
        assert!(cluster.restore_file(a.file_id).is_err());
        assert!(cluster.restore_file(b.file_id).is_err());
        cluster.collect_garbage().unwrap();
        assert_eq!(cluster.stats().physical_bytes, 0);
    }

    #[test]
    fn gc_marks_through_forwarding_tombstones_mid_rebalance() {
        let cluster = Arc::new(DedupCluster::with_similarity_router(3, lifecycle_config()));
        let keep_client = crate::BackupClient::new(cluster.clone(), 0);
        let drop_client = crate::BackupClient::new(cluster.clone(), 1);
        let keep_data: Vec<u8> = (0..250_000u32).map(|i| (i % 223) as u8).collect();
        let drop_data: Vec<u8> = (0..250_000u32).map(|i| (i % 219) as u8).collect();
        let keep = keep_client.backup_bytes("keep.bin", &keep_data).unwrap();
        let dropped = drop_client.backup_bytes("drop.bin", &drop_data).unwrap();
        cluster.flush();

        // Migrate everything off node 0, then GC: live chunks whose recipes
        // still name node 0 must be marked *through* the tombstones at their
        // new home, not collected as unreferenced.
        cluster.remove_node(0).unwrap();
        cluster.delete_file(dropped.file_id).unwrap();
        let report = cluster.collect_garbage().unwrap();
        assert!(report.live_chunks > 0);
        assert!(report.bytes_reclaimed > 0);
        assert_eq!(cluster.restore_file(keep.file_id).unwrap(), keep_data);
        assert!(cluster.stats().physical_bytes >= report.live_bytes);
        for id in 0..3 {
            cluster
                .node_by_id(id)
                .unwrap()
                .verify_consistency()
                .unwrap();
        }
    }

    #[test]
    fn gc_mid_drain_keeps_the_reclaimed_bytes_equation() {
        // A partially executed removal leaves sealed containers on a retired
        // node.  `physical_bytes` must still count them (they are bytes the
        // cluster stores), and a GC that sweeps the retired straggler must
        // satisfy physical_after == physical_before - bytes_reclaimed.
        let cluster = Arc::new(DedupCluster::with_similarity_router(3, lifecycle_config()));
        let keep_client = crate::BackupClient::new(cluster.clone(), 0);
        let drop_client = crate::BackupClient::new(cluster.clone(), 1);
        let keep_data: Vec<u8> = (0..250_000u32).map(|i| (i % 211) as u8).collect();
        let drop_data: Vec<u8> = (0..250_000u32).map(|i| (i % 199) as u8).collect();
        let keep = keep_client.backup_bytes("keep.bin", &keep_data).unwrap();
        let dropped = drop_client.backup_bytes("drop.bin", &drop_data).unwrap();
        cluster.flush();
        let before = cluster.stats().physical_bytes;

        // Retire node 0 but execute only one migration step: the rest of its
        // containers stay on the retired node as stragglers.
        let mut rebalancer = cluster.begin_remove_node(0).unwrap();
        rebalancer.step().unwrap();
        assert_eq!(
            cluster.stats().physical_bytes,
            before,
            "mid-drain bytes on the retired node still count"
        );

        cluster.delete_file(dropped.file_id).unwrap();
        let report = cluster.collect_garbage().unwrap();
        assert!(report.bytes_reclaimed > 0);
        assert_eq!(
            cluster.stats().physical_bytes,
            before - report.bytes_reclaimed,
            "reclaimed bytes account exactly, retired stragglers included"
        );
        assert_eq!(cluster.restore_file(keep.file_id).unwrap(), keep_data);

        // Finishing the drain afterwards is untroubled by the GC (collected
        // containers simply vanished from the plan) and conserves bytes.
        let after_gc = cluster.stats().physical_bytes;
        rebalancer.run().unwrap();
        assert_eq!(cluster.node_by_id(0).unwrap().storage_usage(), 0);
        assert_eq!(cluster.stats().physical_bytes, after_gc);
        assert_eq!(cluster.restore_file(keep.file_id).unwrap(), keep_data);
    }

    #[test]
    fn cluster_delete_preserves_straggler_generation_for_live_clients() {
        // Cluster-level version of the director regression: expire a
        // generation while its client object is still alive, have the client
        // write again, and verify the straggler is still governed by its
        // original generation's retention.
        let cluster = Arc::new(DedupCluster::with_similarity_router(2, lifecycle_config()));
        let client = crate::BackupClient::with_generation(cluster.clone(), 0, 3);
        let data: Vec<u8> = (0..120_000u32).map(|i| (i % 193) as u8).collect();
        client.backup_bytes("wave.bin", &data).unwrap();
        cluster.flush();
        cluster.delete_generation(3).unwrap();

        let straggler = client.backup_bytes("late.bin", &data).unwrap();
        cluster.flush();
        let freed = cluster.delete_generation(3).unwrap();
        assert_eq!(freed, data.len() as u64, "straggler expires with gen 3");
        assert!(cluster.restore_file(straggler.file_id).is_err());
        cluster.collect_garbage().unwrap();
        assert_eq!(cluster.stats().physical_bytes, 0);
    }

    #[test]
    fn node_usage_reported_per_node() {
        let cluster = DedupCluster::with_similarity_router(4, SigmaConfig::default());
        for g in 0..8u64 {
            let sc = super_chunk(g * 1000..g * 1000 + 64);
            cluster.backup_super_chunk(0, &sc, None).unwrap();
        }
        let stats = cluster.stats();
        assert_eq!(stats.node_usage.len(), 4);
        assert_eq!(stats.node_usage.iter().sum::<u64>(), stats.physical_bytes);
        assert_eq!(stats.node_count, 4);
        assert_eq!(stats.router, "sigma");
    }
}
