//! Synthetic backup workloads modelling the paper's evaluation datasets.
//!
//! The original evaluation (Table 2) uses two real datasets and two traces that are
//! not redistributable here:
//!
//! | Paper dataset | Size | DR (4 KB SC) | Modelled by |
//! |---------------|------|--------------|-------------|
//! | Linux kernel sources 1.0–3.3.6 | 160 GB | ~8.0 | [`linux_like`] — many small files over many versions, few files change per version |
//! | 2 monthly full backups of 8 VMs | 313 GB | ~4.1 | [`vm_like`] — few very large images, skewed sizes, block-level churn + intra-image redundancy |
//! | FIU mail server trace | 526 GB | ~10.5 | [`trace_like`] — chunk-fingerprint stream, no file boundaries, hot working set |
//! | FIU web server trace | 43 GB | ~1.9 | [`trace_like`] — chunk-fingerprint stream, no file boundaries, mostly cold data |
//!
//! The generators are deterministic (seeded) and produce **chunk-fingerprint
//! traces** ([`DatasetTrace`]) directly, so cluster-scale simulations never have to
//! materialise or hash gigabytes of payload.  For experiments that need real bytes
//! (client-side chunking/fingerprinting throughput, end-to-end backup examples) the
//! [`payload`] module generates versioned byte buffers instead.
//!
//! # Example
//!
//! ```
//! use sigma_workloads::{presets, Scale};
//!
//! let dataset = presets::linux_dataset(Scale::Tiny);
//! assert!(dataset.has_file_boundaries);
//! // The generator hits the ballpark of the paper's deduplication ratio for the
//! // Linux dataset (≈ 8) at any scale.
//! let dr = dataset.exact_dedup_ratio();
//! assert!(dr > 4.0, "dr = {}", dr);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linux_like;
pub mod payload;
pub mod presets;
mod rng;
mod spec;
pub mod trace_like;
pub mod vm_like;

pub use rng::{DeterministicRng, LogNormal};
pub use spec::{ChunkSpec, DatasetKind, DatasetTrace, FileTrace, GenerationTrace, Scale};
