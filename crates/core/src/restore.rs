//! The container-aware restore pipeline: plan → coalesce → cache → assemble.
//!
//! The serial reference restore ([`DedupCluster::restore_file_reference`])
//! walks the recipe one chunk at a time: each entry re-resolves the node
//! directory, pays one container lookup, allocates a fresh `Vec` for the
//! payload and copies it a second time into the output.  On a persistent
//! backend that is one seek-shaped syscall per chunk, in recipe order —
//! random I/O across container files.
//!
//! The pipeline here keeps the same observable behaviour while restructuring
//! the work around *containers*, the unit the storage layer is actually fast
//! at:
//!
//! 1. **Plan** — walk the recipe once, resolving every entry to its record
//!    extent with the same charged chunk-index lookup and tombstone
//!    follow-through as the serial path, and group the entries by
//!    `(node, container)`.
//! 2. **Coalesce** — each group becomes one
//!    [`read_chunks_batched`](sigma_storage::ContainerStore::read_chunks_batched)
//!    call: adjacent/nearby extents merge into one backend read per run, and a
//!    [container read cache](sigma_storage::ContainerReadCache) serves repeat
//!    visits from RAM.
//! 3. **Assemble** — every chunk decodes *directly* into its slice of the
//!    preallocated output buffer (offsets are known from the recipe), so the
//!    per-chunk double copy of the serial path is gone even at
//!    `restore_parallelism = 1`.
//! 4. **Fan out** — groups run on the ingest pipeline's worker pool
//!    ([`run_pool`]), `SigmaConfig::restore_parallelism` wide; output order
//!    is free because each group writes disjoint slices.
//!
//! Semantics are pinned to the serial path: a group that fails its batched
//! read (a migration or GC racing the plan, or a synthetic trace-driven chunk)
//! falls back to per-chunk [`DedupCluster::read_chunk`], which re-follows
//! tombstone chains and reproduces the serial error; when the plan cannot
//! even represent the recipe (layout disagreement between recipe and index)
//! the whole restore re-runs on the reference path, preserving the
//! [`SigmaError::RestoreTruncated`] end-to-end guard byte for byte.

use crate::cluster::DedupCluster;
use crate::director::{FileId, FileRecipe};
use crate::pipeline::run_pool;
use crate::{Result, SigmaError};
use sigma_hashkit::Fingerprint;
use sigma_storage::{ChunkFetch, ChunkLocation, ContainerId};
use std::collections::HashMap;

/// What one planned restore did — the pipeline's observability surface,
/// aggregated into `sigma_metrics::RestoreCounters` by the service layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Logical bytes delivered to the caller.
    pub logical_bytes: u64,
    /// Chunk payloads decoded.
    pub chunks_read: u64,
    /// Distinct `(node, container)` groups the plan fanned out to.
    pub containers_read: u64,
    /// Container-read-cache hits across groups.
    pub cache_hits: u64,
    /// Container-read-cache misses across groups.
    pub cache_misses: u64,
    /// Bytes actually read from storage backends (RAM serves count as their
    /// logical length, cache hits as zero).
    pub backend_bytes_read: u64,
    /// Backend reads issued after extent coalescing.
    pub coalesced_runs: u64,
    /// Payload bytes memcpy'd while assembling the output.  The pipeline
    /// writes each byte exactly once (`bytes_copied == logical_bytes`); the
    /// reference path's per-chunk `Vec` + `extend_from_slice` costs two.
    pub bytes_copied: u64,
    /// Chunks served by the per-chunk serial fallback (plan/read races,
    /// or the whole restore re-run on the reference path).
    pub serial_fallback_chunks: u64,
    /// Worker threads the group fan-out ran on.
    pub parallelism: usize,
}

impl RestoreReport {
    /// Backend bytes read per logical byte restored (0 when nothing was
    /// restored); below 1.0 means the read cache absorbed repeat visits.
    pub fn read_amplification(&self) -> f64 {
        if self.logical_bytes == 0 {
            0.0
        } else {
            self.backend_bytes_read as f64 / self.logical_bytes as f64
        }
    }

    fn absorb_group(&mut self, g: &GroupStats) {
        self.chunks_read += g.chunks;
        self.containers_read += g.containers_read;
        self.cache_hits += g.cache_hits;
        self.cache_misses += g.cache_misses;
        self.backend_bytes_read += g.backend_bytes_read;
        self.coalesced_runs += g.coalesced_runs;
        self.bytes_copied += g.bytes_copied;
        self.serial_fallback_chunks += g.serial_fallback_chunks;
    }

    /// The report shape of a restore that ran (or re-ran) on the reference
    /// path: every chunk serial, every byte copied twice.
    fn reference(bytes: &[u8], chunks: usize) -> RestoreReport {
        RestoreReport {
            logical_bytes: bytes.len() as u64,
            chunks_read: chunks as u64,
            containers_read: 0,
            backend_bytes_read: bytes.len() as u64,
            bytes_copied: 2 * bytes.len() as u64,
            serial_fallback_chunks: chunks as u64,
            parallelism: 1,
            ..RestoreReport::default()
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct GroupStats {
    chunks: u64,
    containers_read: u64,
    cache_hits: u64,
    cache_misses: u64,
    backend_bytes_read: u64,
    coalesced_runs: u64,
    bytes_copied: u64,
    serial_fallback_chunks: u64,
}

/// One planned entry: where the chunk's bytes come from and the output window
/// they decode into.
struct PlannedFetch<'a> {
    /// Position in the recipe — orders failures exactly as the serial path
    /// would surface them.
    index: usize,
    fingerprint: Fingerprint,
    /// The node the *recipe* recorded; the fallback re-follows tombstones
    /// from here, not from wherever the plan last saw the chunk.
    recipe_node: usize,
    offset: u32,
    out: &'a mut [u8],
}

/// All of one container's planned fetches — the unit of fan-out.
struct Group<'a> {
    node: usize,
    container: ContainerId,
    fetches: Vec<PlannedFetch<'a>>,
}

enum GroupOutcome {
    Done(GroupStats),
    /// The earliest-in-recipe-order failure of the group's serial fallback.
    Failed {
        index: usize,
        error: SigmaError,
    },
    /// The plan no longer matches reality (a payload length shifted under
    /// it); the whole restore must re-run on the reference path.
    Replan,
}

impl DedupCluster {
    /// Reconstructs a file and reports what the restore pipeline did.
    ///
    /// Runs the planned pipeline at
    /// [`SigmaConfig::effective_restore_parallelism`](crate::SigmaConfig::effective_restore_parallelism);
    /// [`restore_file`](Self::restore_file) is this without the report.
    ///
    /// # Errors
    ///
    /// Exactly as [`restore_file`](Self::restore_file).
    pub fn restore_file_with_report(&self, file_id: FileId) -> Result<(Vec<u8>, RestoreReport)> {
        let workers = self.config().effective_restore_parallelism();
        self.restore_file_pipelined(file_id, workers)
    }

    /// Reconstructs a file on the planned pipeline with an explicit worker
    /// count, bypassing the `restore_parallelism` knob — the entry point the
    /// equivalence proptests and benches sweep.
    ///
    /// # Errors
    ///
    /// Exactly as [`restore_file`](Self::restore_file).
    pub fn restore_file_pipelined(
        &self,
        file_id: FileId,
        workers: usize,
    ) -> Result<(Vec<u8>, RestoreReport)> {
        let recipe = self
            .director()
            .recipe(file_id)
            .ok_or(SigmaError::FileNotFound(file_id))?;
        self.restore_planned(file_id, &recipe, workers.max(1))
    }

    /// The plan → coalesce → assemble core.
    fn restore_planned(
        &self,
        file_id: FileId,
        recipe: &FileRecipe,
        workers: usize,
    ) -> Result<(Vec<u8>, RestoreReport)> {
        let total: u64 = recipe.chunks.iter().map(|e| u64::from(e.len)).sum();
        if total != recipe.size {
            // The recipe disagrees with itself; only the reference path's
            // end-to-end guard can produce the exact historical outcome
            // (including its RestoreTruncated figures).
            let bytes = self.restore_file_reference(file_id)?;
            let report = RestoreReport::reference(&bytes, recipe.chunks.len());
            return Ok((bytes, report));
        }

        let mut out = vec![0u8; total as usize];
        // Carve the output into one disjoint window per recipe entry; chained
        // `split_at_mut` keeps this safe-code-only.
        let mut windows: Vec<Option<&mut [u8]>> = Vec::with_capacity(recipe.chunks.len());
        {
            let mut rest: &mut [u8] = out.as_mut_slice();
            for entry in &recipe.chunks {
                let (head, tail) = rest.split_at_mut(entry.len as usize);
                windows.push(Some(head));
                rest = tail;
            }
        }

        // Plan: resolve every entry in recipe order (so the first locate
        // failure surfaces in serial order) and group by (node, container).
        let hop_cap = self.directory_len();
        let mut by_container: HashMap<(usize, ContainerId), Vec<PlannedFetch<'_>>> = HashMap::new();
        let mut layout_shift = false;
        for (index, entry) in recipe.chunks.iter().enumerate() {
            let (node, location) = self.locate_chunk(entry.node, &entry.fingerprint, hop_cap)?;
            if location.len != entry.len {
                layout_shift = true;
                break;
            }
            by_container
                .entry((node, location.container))
                .or_default()
                .push(PlannedFetch {
                    index,
                    fingerprint: entry.fingerprint,
                    recipe_node: entry.node,
                    offset: location.offset,
                    out: windows[index].take().expect("each entry is carved once"),
                });
        }
        if layout_shift {
            // The index's record length disagrees with the recipe: the
            // reference path is the arbiter of what that restore returns.
            drop(by_container);
            drop(windows);
            let bytes = self.restore_file_reference(file_id)?;
            let report = RestoreReport::reference(&bytes, recipe.chunks.len());
            return Ok((bytes, report));
        }

        // Deterministic group order (first recipe index), then fan out.
        let mut groups: Vec<Group<'_>> = by_container
            .into_iter()
            .map(|((node, container), mut fetches)| {
                fetches.sort_unstable_by_key(|f| f.index);
                Group {
                    node,
                    container,
                    fetches,
                }
            })
            .collect();
        groups.sort_unstable_by_key(|g| g.fetches[0].index);

        let outcomes = run_pool(workers, groups, |_, group| self.fetch_group(group));

        let mut report = RestoreReport {
            logical_bytes: total,
            parallelism: workers,
            ..RestoreReport::default()
        };
        let mut failure: Option<(usize, SigmaError)> = None;
        let mut replan = false;
        for outcome in outcomes {
            match outcome {
                GroupOutcome::Done(stats) => report.absorb_group(&stats),
                GroupOutcome::Failed { index, error } => {
                    if failure.as_ref().map_or(true, |(i, _)| index < *i) {
                        failure = Some((index, error));
                    }
                }
                GroupOutcome::Replan => replan = true,
            }
        }
        if replan {
            let bytes = self.restore_file_reference(file_id)?;
            let report = RestoreReport::reference(&bytes, recipe.chunks.len());
            return Ok((bytes, report));
        }
        if let Some((_, error)) = failure {
            return Err(error);
        }
        debug_assert_eq!(out.len() as u64, recipe.size, "planned size was checked");
        Ok((out, report))
    }

    /// Resolves a fingerprint to `(owning node, record extent)`, following
    /// forwarding tombstones with the same lazily-computed hop cap as
    /// [`read_chunk`](Self::read_chunk).
    fn locate_chunk(
        &self,
        node: usize,
        fingerprint: &Fingerprint,
        hop_cap: usize,
    ) -> Result<(usize, ChunkLocation)> {
        let mut node_id = node;
        let mut hops = 0usize;
        loop {
            let current = self
                .node_by_id(node_id)
                .ok_or_else(|| SigmaError::ChunkMissing {
                    node: node_id,
                    fingerprint: fingerprint.to_string(),
                })?;
            match current.plan_chunk_read(fingerprint) {
                Ok(location) => return Ok((node_id, location)),
                Err(SigmaError::ChunkMigrated { node: next, .. }) => {
                    hops += 1;
                    if hops > hop_cap {
                        return Err(SigmaError::ChunkMissing {
                            node: next,
                            fingerprint: fingerprint.to_string(),
                        });
                    }
                    node_id = next;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Runs one group: a batched container read, with a per-chunk serial
    /// fallback that re-follows tombstones when the batch fails (a migration
    /// or GC raced the plan, or the group contains a synthetic chunk).
    fn fetch_group(&self, group: Group<'_>) -> GroupOutcome {
        let mut stats = GroupStats {
            containers_read: 1,
            ..GroupStats::default()
        };
        let meta: Vec<(usize, usize)> = group
            .fetches
            .iter()
            .map(|f| (f.index, f.recipe_node))
            .collect();
        let mut fetches: Vec<ChunkFetch<'_>> = group
            .fetches
            .into_iter()
            .map(|f| ChunkFetch {
                fingerprint: f.fingerprint,
                offset: f.offset,
                out: f.out,
            })
            .collect();
        let batched = match self.node_by_id(group.node) {
            Some(node) => node.read_chunks_batched(&group.container, &mut fetches),
            None => Err(SigmaError::ChunkMissing {
                node: group.node,
                fingerprint: fetches[0].fingerprint.to_string(),
            }),
        };
        match batched {
            Ok(s) => {
                stats.chunks = s.chunks;
                stats.backend_bytes_read = s.backend_bytes_read;
                stats.coalesced_runs = s.coalesced_runs;
                stats.cache_hits = s.cache_hits;
                stats.cache_misses = s.cache_misses;
                // Volatile serves and cache hits still copy each payload into
                // the output exactly once.
                stats.bytes_copied = fetches.iter().map(|f| f.out.len() as u64).sum();
                if s.backend_bytes_read == 0 {
                    // Served from RAM: count the logical bytes so read
                    // amplification stays 1.0 on volatile backends...
                    if s.cache_hits == 0 {
                        stats.backend_bytes_read = stats.bytes_copied;
                    }
                    // ...but a cache hit genuinely skipped the medium.
                }
                GroupOutcome::Done(stats)
            }
            Err(_) => {
                let mut failure: Option<(usize, SigmaError)> = None;
                for (fetch, (index, recipe_node)) in fetches.iter_mut().zip(&meta) {
                    match self.read_chunk(*recipe_node, &fetch.fingerprint) {
                        Ok(data) if data.len() == fetch.out.len() => {
                            fetch.out.copy_from_slice(&data);
                            stats.chunks += 1;
                            stats.serial_fallback_chunks += 1;
                            stats.backend_bytes_read += data.len() as u64;
                            // One copy into the chunk's Vec, one into place.
                            stats.bytes_copied += 2 * data.len() as u64;
                        }
                        Ok(_) => return GroupOutcome::Replan,
                        Err(error) => {
                            if failure.as_ref().map_or(true, |(i, _)| index < i) {
                                failure = Some((*index, error));
                            }
                        }
                    }
                }
                match failure {
                    Some((index, error)) => GroupOutcome::Failed { index, error },
                    None => GroupOutcome::Done(stats),
                }
            }
        }
    }
}
