//! Wall-clock measurement helpers for throughput-style experiments.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// A started stopwatch.
///
/// # Example
///
/// ```
/// use sigma_metrics::Stopwatch;
///
/// let sw = Stopwatch::start();
/// let work: u64 = (0..1000u64).sum();
/// assert!(work > 0);
/// let t = sw.stop(8 << 20);
/// assert!(t.elapsed_secs() >= 0.0);
/// assert!(t.mb_per_sec() > 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Stops and converts to a [`Throughput`] for `bytes` bytes of work.
    pub fn stop(self, bytes: u64) -> Throughput {
        Throughput::new(bytes, self.elapsed())
    }
}

/// Bytes processed over a span of wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    /// Bytes of work performed.
    pub bytes: u64,
    /// Elapsed wall-clock seconds.
    pub seconds: f64,
}

impl Throughput {
    /// Creates a measurement from raw parts.
    pub fn new(bytes: u64, elapsed: Duration) -> Self {
        Throughput {
            bytes,
            seconds: elapsed.as_secs_f64(),
        }
    }

    /// Elapsed seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.seconds
    }

    /// Megabytes (2^20 bytes) processed per second; 0 for a zero-length interval.
    pub fn mb_per_sec(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / (1024.0 * 1024.0) / self.seconds
        }
    }

    /// Combines two measurements (summing bytes and time), e.g. across benchmark
    /// repetitions.
    pub fn combine(&self, other: &Throughput) -> Throughput {
        Throughput {
            bytes: self.bytes + other.bytes,
            seconds: self.seconds + other.seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let t = Throughput {
            bytes: 10 * 1024 * 1024,
            seconds: 2.0,
        };
        assert!((t.mb_per_sec() - 5.0).abs() < 1e-9);
        let zero = Throughput {
            bytes: 100,
            seconds: 0.0,
        };
        assert_eq!(zero.mb_per_sec(), 0.0);
    }

    #[test]
    fn combine_sums_both_fields() {
        let a = Throughput {
            bytes: 100,
            seconds: 1.0,
        };
        let b = Throughput {
            bytes: 300,
            seconds: 3.0,
        };
        let c = a.combine(&b);
        assert_eq!(c.bytes, 400);
        assert!((c.seconds - 4.0).abs() < 1e-12);
    }

    #[test]
    fn stopwatch_measures_nonzero_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let t = sw.stop(1024);
        assert!(t.elapsed_secs() > 0.0);
    }
}
