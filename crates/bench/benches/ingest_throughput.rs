//! Ingest throughput vs. worker-thread count.
//!
//! Two sweeps, both in the spirit of the paper's Figure 4 throughput study but
//! measuring the new parallel ingest pipeline end to end:
//!
//! * **payload pipeline** — real bytes (versioned backup generations) pushed
//!   through [`IngestPipeline`]: chunking + SHA-1 fingerprinting on the worker
//!   pool, concurrent multi-stream routing into a cluster.  Reported as MB/s
//!   of *logical pre-dedup* client bytes (the paper's Figure 4 basis —
//!   post-dedup MB/s would scale with the dedup ratio and say nothing about
//!   backup-window sizing).
//! * **linux-like trace** — the linux-like workload preset replayed through the
//!   threaded `SimulationRunner`, exercising the sharded node indexes and the
//!   per-container store locks without client-side hashing cost.
//!
//! On a multi-core machine the pipeline at 4+ threads beats the serial path; on a
//! single-core machine the sweep degenerates to measuring the (small) coordination
//! overhead.  The banner prints a one-shot MB/s-per-thread-count table so the
//! comparison is visible without reading criterion output.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sigma_core::{DedupCluster, IngestPipeline, SigmaConfig, StreamPayload};
use sigma_simulation::runner::{run_cluster, SimulationConfig};
use sigma_workloads::payload::{versioned_payloads, VersionedPayloadParams};
use sigma_workloads::{presets, Scale};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const STREAMS: usize = 8;
const STREAM_BYTES: usize = 2 << 20;

fn payload_streams() -> Vec<StreamPayload> {
    // 8 streams, each a distinct "user" backing up a versioned dataset: streams
    // share no data with each other, versions inside a stream mostly deduplicate.
    (0..STREAMS as u64)
        .flat_map(|s| {
            versioned_payloads(VersionedPayloadParams {
                seed: 0xF00D + s,
                versions: 1,
                version_size: STREAM_BYTES,
                mutation_rate: 0.05,
            })
            .into_iter()
            .map(move |(name, data)| StreamPayload::new(s, format!("u{s}/{name}"), data))
        })
        .collect()
}

fn ingest_once(threads: usize, streams: &[StreamPayload]) -> f64 {
    let config = SigmaConfig::builder().parallelism(threads).build().unwrap();
    let cluster = Arc::new(DedupCluster::with_similarity_router(4, config));
    let pipeline = IngestPipeline::new(cluster.clone());
    let total: u64 = streams.iter().map(|s| s.data.len() as u64).sum();
    let start = std::time::Instant::now();
    pipeline
        .backup_streams(streams.to_vec())
        .expect("payload ingest cannot fail");
    cluster.flush();
    total as f64 / 1e6 / start.elapsed().as_secs_f64()
}

fn report() {
    sigma_bench::banner(
        "ingest throughput",
        "parallel pipeline MB/s vs. worker threads (8 streams x 2 MiB, 4 nodes)",
    );
    let streams = payload_streams();
    let serial = ingest_once(1, &streams);
    let mut table = sigma_metrics::report::TextTable::new(vec!["threads", "MB/s", "speedup"]);
    table.add_row(vec![
        "1 (serial)".to_string(),
        format!("{serial:.1}"),
        "1.00x".to_string(),
    ]);
    for &threads in &THREAD_COUNTS[1..] {
        let mbps = ingest_once(threads, &streams);
        table.add_row(vec![
            threads.to_string(),
            format!("{mbps:.1}"),
            format!("{:.2}x", mbps / serial),
        ]);
    }
    sigma_bench::print_table("pipeline ingest MB/s", &table.render());
}

fn bench_pipeline_ingest(c: &mut Criterion) {
    report();
    let streams = payload_streams();
    let total: u64 = streams.iter().map(|s| s.data.len() as u64).sum();
    let mut group = c.benchmark_group("ingest_throughput/pipeline");
    group.throughput(Throughput::Bytes(total));
    for &threads in &THREAD_COUNTS {
        group.bench_function(&format!("threads_{threads}"), |b| {
            b.iter(|| std::hint::black_box(ingest_once(threads, &streams)))
        });
    }
    group.finish();
}

fn bench_trace_ingest(c: &mut Criterion) {
    let dataset = presets::linux_dataset(Scale::Tiny);
    let mut group = c.benchmark_group("ingest_throughput/linux_trace");
    group.throughput(Throughput::Bytes(dataset.logical_bytes()));
    for &threads in &THREAD_COUNTS {
        group.bench_function(&format!("threads_{threads}"), |b| {
            b.iter(|| {
                let sigma = SigmaConfig::builder().parallelism(threads).build().unwrap();
                let config = SimulationConfig {
                    node_count: 4,
                    sigma,
                    client_streams: 8,
                };
                std::hint::black_box(run_cluster(
                    &dataset,
                    Box::new(sigma_core::SimilarityRouter::new(true)),
                    &config,
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline_ingest, bench_trace_ingest
}
criterion_main!(benches);
