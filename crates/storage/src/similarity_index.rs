//! The similarity index: representative fingerprint → container ID.
//!
//! This is the central RAM structure of Σ-Dedupe's intra-node design (Section 3.3).
//! Each entry maps a representative fingerprint (RFP — a member of some stored
//! super-chunk's handprint) to the container that super-chunk was written to.  The
//! index is consulted twice:
//!
//! 1. during **pre-routing**, when a backup client asks a candidate node how many of
//!    a super-chunk's representative fingerprints it has already stored (the
//!    resemblance count of Algorithm 1), and
//! 2. during **deduplication**, when a matched RFP identifies a container whose full
//!    fingerprint list is prefetched into the chunk fingerprint cache.
//!
//! To let multiple backup streams query concurrently on a multi-core node, the hash
//! table is partitioned into lock *stripes*; Figure 4(b) of the paper studies the
//! lookup throughput as a function of the number of locks, which is reproduced by
//! the `fig4b_index_locks` bench.

use crate::ContainerId;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use sigma_hashkit::Fingerprint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregate statistics of a [`SimilarityIndex`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimilarityIndexStats {
    /// Number of lookup calls served.
    pub lookups: u64,
    /// Number of lookups that found an entry.
    pub hits: u64,
    /// Number of insert calls.
    pub inserts: u64,
    /// Current number of entries.
    pub entries: u64,
}

impl SimilarityIndexStats {
    /// Fraction of lookups that hit, or 0 when no lookups were made.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// A striped, thread-safe map from representative fingerprints to container IDs.
///
/// # Example
///
/// ```
/// use sigma_storage::{ContainerId, SimilarityIndex};
/// use sigma_hashkit::{Digest, Sha1};
///
/// let index = SimilarityIndex::new(64);
/// let rfp = Sha1::fingerprint(b"representative");
/// index.insert(rfp, ContainerId::new(3));
/// assert_eq!(index.lookup(&rfp), Some(ContainerId::new(3)));
/// assert_eq!(index.len(), 1);
/// ```
#[derive(Debug)]
pub struct SimilarityIndex {
    stripes: Vec<RwLock<HashMap<Fingerprint, ContainerId>>>,
    /// Reverse map for container migration: candidate RFPs per container, so
    /// [`extract_container`](SimilarityIndex::extract_container) does not have to
    /// scan every stripe.  Entries are *candidates* — an RFP later overwritten to
    /// another container stays listed here and is filtered against the forward
    /// map at extraction time.
    by_container: RwLock<HashMap<ContainerId, Vec<Fingerprint>>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    inserts: AtomicU64,
}

impl SimilarityIndex {
    /// Creates an index with `lock_count` lock stripes.
    ///
    /// The paper finds 1024 locks to be a good setting for 8 concurrent streams;
    /// the count is rounded up to a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `lock_count` is zero.
    pub fn new(lock_count: usize) -> Self {
        assert!(lock_count > 0, "lock count must be non-zero");
        let stripes = lock_count.next_power_of_two();
        SimilarityIndex {
            stripes: (0..stripes).map(|_| RwLock::new(HashMap::new())).collect(),
            by_container: RwLock::new(HashMap::new()),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// Number of lock stripes (always a power of two).
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    fn stripe_of(&self, fp: &Fingerprint) -> usize {
        (fp.prefix_u64() as usize) & (self.stripes.len() - 1)
    }

    /// Inserts (or overwrites) the container mapping for a representative fingerprint.
    pub fn insert(&self, rfp: Fingerprint, container: ContainerId) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let stripe = self.stripe_of(&rfp);
        let previous = self.stripes[stripe].write().insert(rfp, container);
        // Track the reverse candidate only on a fresh mapping: re-inserting the
        // same rfp → container pair (the common repeated-super-chunk case) must
        // not grow the candidate list.
        if previous != Some(container) {
            self.by_container
                .write()
                .entry(container)
                .or_default()
                .push(rfp);
        }
    }

    /// Looks up the container that stores the super-chunk this RFP belongs to.
    pub fn lookup(&self, rfp: &Fingerprint) -> Option<ContainerId> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let stripe = self.stripe_of(rfp);
        let found = self.stripes[stripe].read().get(rfp).copied();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Counts how many of the given representative fingerprints are present.
    ///
    /// This is the "resemblance count" a candidate node returns during pre-routing
    /// (step 2 of Algorithm 1); it costs one message regardless of handprint size.
    pub fn count_matches(&self, rfps: &[Fingerprint]) -> usize {
        rfps.iter().filter(|rfp| self.lookup(rfp).is_some()).count()
    }

    /// Looks up many RFPs at once, returning the matched container IDs (deduplicated,
    /// in first-match order) for cache prefetching.
    pub fn matched_containers(&self, rfps: &[Fingerprint]) -> Vec<ContainerId> {
        let mut out = Vec::new();
        for rfp in rfps {
            if let Some(cid) = self.lookup(rfp) {
                if !out.contains(&cid) {
                    out.push(cid);
                }
            }
        }
        out
    }

    /// Returns every representative fingerprint currently mapped to `container`,
    /// sorted ascending, *without* removing anything.
    ///
    /// The read-only half of a container migration: the destination needs the
    /// RFPs before it durably adopts the container, but the source must keep
    /// them until the adoption is known to have succeeded — otherwise a crashed
    /// destination would silently discard the container's similarity state.
    pub fn peek_container(&self, container: ContainerId) -> Vec<Fingerprint> {
        let candidates = self
            .by_container
            .read()
            .get(&container)
            .cloned()
            .unwrap_or_default();
        let mut out = Vec::with_capacity(candidates.len());
        for rfp in candidates {
            let stripe = self.stripe_of(&rfp);
            if self.stripes[stripe].read().get(&rfp) == Some(&container) {
                out.push(rfp);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Removes and returns every representative fingerprint mapped to `container`,
    /// sorted ascending.
    ///
    /// This is the source-side half of a container migration: the extracted RFPs
    /// are re-inserted on the destination node under the container's new local ID,
    /// so similar super-chunks route to (and deduplicate on) the new owner.  Cost
    /// is proportional to the container's own candidate list, not the index size,
    /// so draining a many-container node stays linear overall.
    pub fn extract_container(&self, container: ContainerId) -> Vec<Fingerprint> {
        let candidates = self
            .by_container
            .write()
            .remove(&container)
            .unwrap_or_default();
        let mut extracted = Vec::with_capacity(candidates.len());
        for rfp in candidates {
            let stripe = self.stripe_of(&rfp);
            let mut map = self.stripes[stripe].write();
            // Only candidates still mapping to this container belong to it; an
            // rfp since overwritten to another container stays where it is.
            if map.get(&rfp) == Some(&container) {
                map.remove(&rfp);
                extracted.push(rfp);
            }
        }
        extracted.sort_unstable();
        extracted.dedup();
        extracted
    }

    /// Every entry as `(representative fingerprint, container)` pairs, sorted by
    /// fingerprint — the similarity-index half of a compaction snapshot.
    pub fn entries(&self) -> Vec<(Fingerprint, ContainerId)> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            for (fp, cid) in stripe.read().iter() {
                out.push((*fp, *cid));
            }
        }
        out.sort_unstable_by_key(|(fp, _)| *fp);
        out
    }

    /// Current number of entries across all stripes.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.read().len()).sum()
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated RAM usage in bytes (entries × (fingerprint + container id)).
    ///
    /// This is the figure used for the RAM-usage comparison of Section 4.3
    /// (similarity index vs. full chunk index vs. Extreme Binning file index).
    pub fn estimated_ram_bytes(&self) -> usize {
        self.len() * (Fingerprint::LEN + std::mem::size_of::<ContainerId>())
    }

    /// Snapshot of the aggregate statistics.
    pub fn stats(&self) -> SimilarityIndexStats {
        SimilarityIndexStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

impl Default for SimilarityIndex {
    /// An index with the paper's preferred 1024 lock stripes.
    fn default() -> Self {
        SimilarityIndex::new(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_hashkit::{Digest, Sha1};
    use std::sync::Arc;

    fn fp(i: u64) -> Fingerprint {
        Sha1::fingerprint(&i.to_le_bytes())
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let idx = SimilarityIndex::new(8);
        for i in 0..100u64 {
            idx.insert(fp(i), ContainerId::new(i));
        }
        assert_eq!(idx.len(), 100);
        for i in 0..100u64 {
            assert_eq!(idx.lookup(&fp(i)), Some(ContainerId::new(i)));
        }
        assert_eq!(idx.lookup(&fp(1000)), None);
    }

    #[test]
    fn insert_overwrites() {
        let idx = SimilarityIndex::new(4);
        idx.insert(fp(1), ContainerId::new(1));
        idx.insert(fp(1), ContainerId::new(2));
        assert_eq!(idx.lookup(&fp(1)), Some(ContainerId::new(2)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn count_matches_counts_only_present() {
        let idx = SimilarityIndex::new(4);
        idx.insert(fp(1), ContainerId::new(1));
        idx.insert(fp(2), ContainerId::new(1));
        let queries = vec![fp(1), fp(2), fp(3), fp(4)];
        assert_eq!(idx.count_matches(&queries), 2);
    }

    #[test]
    fn matched_containers_deduplicates() {
        let idx = SimilarityIndex::new(4);
        idx.insert(fp(1), ContainerId::new(9));
        idx.insert(fp(2), ContainerId::new(9));
        idx.insert(fp(3), ContainerId::new(5));
        let got = idx.matched_containers(&[fp(1), fp(2), fp(3), fp(4)]);
        assert_eq!(got, vec![ContainerId::new(9), ContainerId::new(5)]);
    }

    #[test]
    fn extract_container_removes_exactly_its_entries() {
        let idx = SimilarityIndex::new(8);
        idx.insert(fp(1), ContainerId::new(9));
        idx.insert(fp(2), ContainerId::new(9));
        idx.insert(fp(3), ContainerId::new(5));
        // fp(2) is overwritten to container 5: it must NOT be extracted with 9.
        idx.insert(fp(2), ContainerId::new(5));
        // Repeated identical insert must not duplicate the extracted entry.
        idx.insert(fp(1), ContainerId::new(9));

        let mut expected = vec![fp(1)];
        expected.sort_unstable();
        assert_eq!(idx.extract_container(ContainerId::new(9)), expected);
        assert_eq!(idx.lookup(&fp(1)), None, "extracted entries are removed");
        assert_eq!(idx.lookup(&fp(2)), Some(ContainerId::new(5)));
        assert_eq!(idx.lookup(&fp(3)), Some(ContainerId::new(5)));
        // Extracting again (or a never-seen container) yields nothing.
        assert!(idx.extract_container(ContainerId::new(9)).is_empty());
        assert!(idx.extract_container(ContainerId::new(77)).is_empty());
        // Remaining entries are still extractable.
        let mut rest = idx.extract_container(ContainerId::new(5));
        rest.sort_unstable();
        let mut expected = vec![fp(2), fp(3)];
        expected.sort_unstable();
        assert_eq!(rest, expected);
        assert!(idx.is_empty());
    }

    #[test]
    fn stripe_count_rounds_to_power_of_two() {
        assert_eq!(SimilarityIndex::new(1).stripe_count(), 1);
        assert_eq!(SimilarityIndex::new(3).stripe_count(), 4);
        assert_eq!(SimilarityIndex::new(1000).stripe_count(), 1024);
        assert_eq!(SimilarityIndex::default().stripe_count(), 1024);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let idx = SimilarityIndex::new(4);
        idx.insert(fp(1), ContainerId::new(1));
        idx.lookup(&fp(1));
        idx.lookup(&fp(2));
        let s = idx.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.inserts, 1);
        assert_eq!(s.entries, 1);
        assert!((s.hit_ratio() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn ram_estimate_grows_linearly() {
        let idx = SimilarityIndex::new(4);
        assert_eq!(idx.estimated_ram_bytes(), 0);
        for i in 0..10u64 {
            idx.insert(fp(i), ContainerId::new(i));
        }
        assert_eq!(idx.estimated_ram_bytes(), 10 * (Fingerprint::LEN + 8));
    }

    #[test]
    fn concurrent_inserts_and_lookups() {
        let idx = Arc::new(SimilarityIndex::new(64));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let idx = idx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let key = t * 1000 + i;
                    idx.insert(fp(key), ContainerId::new(key));
                    assert_eq!(idx.lookup(&fp(key)), Some(ContainerId::new(key)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(idx.len(), 8000);
    }
}
