//! The director: backup-session and file-recipe management.
//!
//! The director (Figure 2) is the control-plane component that keeps track of which
//! files were backed up, in which session, and how to reconstruct them: a *file
//! recipe* lists, in order, every chunk fingerprint of the file together with its
//! size and the node that stores it.  No chunk data flows through the director.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sigma_hashkit::Fingerprint;

/// Identifier of a backed-up file.
pub type FileId = u64;

/// One entry of a file recipe: a chunk and where it lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecipeEntry {
    /// The chunk's fingerprint.
    pub fingerprint: Fingerprint,
    /// The chunk's length in bytes.
    pub len: u32,
    /// The deduplication node holding the chunk.
    pub node: usize,
}

/// Everything needed to reconstruct one file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileRecipe {
    /// The file's identifier (assigned by the director).
    pub file_id: FileId,
    /// Client-supplied file name.
    pub name: String,
    /// Logical file size in bytes.
    pub size: u64,
    /// Chunks in file order.
    pub chunks: Vec<RecipeEntry>,
    /// The backup session this file belongs to.
    pub session_id: u64,
}

/// A group of files backed up together by one client.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackupSession {
    /// Session identifier.
    pub session_id: u64,
    /// Client-supplied name (e.g. hostname).
    pub client: String,
    /// Files registered in this session.
    pub files: Vec<FileId>,
}

#[derive(Debug, Default)]
struct DirectorInner {
    next_file_id: FileId,
    next_session_id: u64,
    recipes: std::collections::HashMap<FileId, FileRecipe>,
    sessions: std::collections::HashMap<u64, BackupSession>,
}

/// The metadata service of the cluster.
///
/// # Example
///
/// ```
/// use sigma_core::Director;
///
/// let director = Director::new();
/// let session = director.open_session("client-a");
/// let file = director.register_file(session, "etc/passwd", 1234, Vec::new());
/// assert_eq!(director.recipe(file).unwrap().name, "etc/passwd");
/// assert_eq!(director.session(session).unwrap().files, vec![file]);
/// ```
#[derive(Debug, Default)]
pub struct Director {
    inner: Mutex<DirectorInner>,
}

impl Director {
    /// Creates an empty director.
    pub fn new() -> Self {
        Director::default()
    }

    /// Opens a new backup session for `client`.
    pub fn open_session(&self, client: &str) -> u64 {
        let mut inner = self.inner.lock();
        let id = inner.next_session_id;
        inner.next_session_id += 1;
        inner.sessions.insert(
            id,
            BackupSession {
                session_id: id,
                client: client.to_string(),
                files: Vec::new(),
            },
        );
        id
    }

    /// Registers a completed file backup and returns its file ID.
    ///
    /// Unknown session IDs are tolerated (a session record is created lazily), so
    /// trace-driven callers may pass `0`.
    pub fn register_file(
        &self,
        session_id: u64,
        name: &str,
        size: u64,
        chunks: Vec<RecipeEntry>,
    ) -> FileId {
        let mut inner = self.inner.lock();
        let file_id = inner.next_file_id;
        inner.next_file_id += 1;
        inner.recipes.insert(
            file_id,
            FileRecipe {
                file_id,
                name: name.to_string(),
                size,
                chunks,
                session_id,
            },
        );
        inner
            .sessions
            .entry(session_id)
            .or_insert_with(|| BackupSession {
                session_id,
                client: String::new(),
                files: Vec::new(),
            })
            .files
            .push(file_id);
        file_id
    }

    /// The recipe of a file, if it exists.
    pub fn recipe(&self, file_id: FileId) -> Option<FileRecipe> {
        self.inner.lock().recipes.get(&file_id).cloned()
    }

    /// A backup session, if it exists.
    pub fn session(&self, session_id: u64) -> Option<BackupSession> {
        self.inner.lock().sessions.get(&session_id).cloned()
    }

    /// Number of registered files.
    pub fn file_count(&self) -> usize {
        self.inner.lock().recipes.len()
    }

    /// Number of sessions.
    pub fn session_count(&self) -> usize {
        self.inner.lock().sessions.len()
    }

    /// Total logical bytes across all registered files.
    pub fn total_logical_bytes(&self) -> u64 {
        self.inner.lock().recipes.values().map(|r| r.size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_hashkit::{Digest, Sha1};

    fn entry(i: u64) -> RecipeEntry {
        RecipeEntry {
            fingerprint: Sha1::fingerprint(&i.to_le_bytes()),
            len: 4096,
            node: (i % 4) as usize,
        }
    }

    #[test]
    fn sessions_group_files() {
        let d = Director::new();
        let s1 = d.open_session("alpha");
        let s2 = d.open_session("beta");
        let f1 = d.register_file(s1, "a.txt", 100, vec![entry(1)]);
        let f2 = d.register_file(s1, "b.txt", 200, vec![entry(2)]);
        let f3 = d.register_file(s2, "c.txt", 300, vec![entry(3)]);
        assert_eq!(d.session(s1).unwrap().files, vec![f1, f2]);
        assert_eq!(d.session(s2).unwrap().files, vec![f3]);
        assert_eq!(d.session(s1).unwrap().client, "alpha");
        assert_eq!(d.file_count(), 3);
        assert_eq!(d.session_count(), 2);
        assert_eq!(d.total_logical_bytes(), 600);
    }

    #[test]
    fn recipes_preserve_chunk_order() {
        let d = Director::new();
        let chunks: Vec<RecipeEntry> = (0..10).map(entry).collect();
        let f = d.register_file(0, "ordered.bin", 40960, chunks.clone());
        assert_eq!(d.recipe(f).unwrap().chunks, chunks);
    }

    #[test]
    fn unknown_ids_return_none() {
        let d = Director::new();
        assert!(d.recipe(42).is_none());
        assert!(d.session(42).is_none());
    }

    #[test]
    fn lazy_session_creation_for_unknown_session_ids() {
        let d = Director::new();
        let f = d.register_file(99, "orphan", 1, Vec::new());
        assert_eq!(d.session(99).unwrap().files, vec![f]);
    }

    #[test]
    fn file_ids_are_unique_and_monotonic() {
        let d = Director::new();
        let ids: Vec<FileId> = (0..100)
            .map(|i| d.register_file(0, &format!("f{}", i), 1, Vec::new()))
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
    }
}
