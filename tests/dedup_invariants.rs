//! Property-based integration tests of the core deduplication invariants, driven
//! through the public façade.

use proptest::prelude::*;
use sigma_dedupe::prelude::*;
use std::sync::Arc;

fn small_cluster(nodes: usize) -> Arc<DedupCluster> {
    let config = SigmaConfig::builder()
        .super_chunk_size(64 * 1024)
        .container_capacity(512 * 1024)
        .cache_containers(32)
        .build()
        .unwrap();
    Arc::new(DedupCluster::with_similarity_router(nodes, config))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever is backed up restores bit-exactly, for arbitrary sizes and node counts.
    #[test]
    fn prop_backup_restore_roundtrip(
        len in 0usize..300_000,
        seed in any::<u64>(),
        nodes in 1usize..6,
    ) {
        let cluster = small_cluster(nodes);
        let client = BackupClient::new(cluster.clone(), 0);
        let data = random_bytes(len, seed);
        let report = client.backup_bytes("prop-file", &data).unwrap();
        prop_assert_eq!(report.logical_bytes, len as u64);
        cluster.flush();
        prop_assert_eq!(cluster.restore_file(report.file_id).unwrap(), data);
    }

    /// Physical storage never exceeds logical data, and backing the same bytes up
    /// twice never increases physical storage.
    #[test]
    fn prop_physical_never_exceeds_logical(
        len in 1usize..200_000,
        seed in any::<u64>(),
    ) {
        let cluster = small_cluster(3);
        let client = BackupClient::new(cluster.clone(), 0);
        let data = random_bytes(len, seed);
        client.backup_bytes("first", &data).unwrap();
        let physical_after_first = cluster.stats().physical_bytes;
        prop_assert!(physical_after_first <= len as u64);

        let second = client.backup_bytes("second", &data).unwrap();
        let stats = cluster.stats();
        prop_assert_eq!(stats.physical_bytes, physical_after_first);
        prop_assert_eq!(second.transferred_bytes, 0);
        prop_assert_eq!(stats.logical_bytes, 2 * len as u64);
    }

    /// With content-defined chunking, concatenating two previously seen files still
    /// deduplicates almost entirely on a single node: CDC boundaries resynchronise
    /// shortly after the splice point, so only the chunks straddling it are new.
    /// (A single-node cluster is used on purpose: on multiple nodes the two source
    /// files may legitimately live on different nodes, and cross-node redundancy is
    /// exactly what cluster deduplication gives up — Section 1 of the paper.)
    #[test]
    fn prop_concatenation_of_known_data_is_cheap_with_cdc(
        len_a in 32_768usize..120_000,
        len_b in 32_768usize..120_000,
        seed in any::<u64>(),
    ) {
        let config = SigmaConfig::builder()
            .super_chunk_size(64 * 1024)
            .container_capacity(512 * 1024)
            .cache_containers(32)
            .chunker(ChunkerParams::cdc(1024, 4096, 16 * 1024))
            .build()
            .unwrap();
        let cluster = Arc::new(DedupCluster::with_similarity_router(1, config));
        let client = BackupClient::new(cluster.clone(), 0);
        let a = random_bytes(len_a, seed);
        let b = random_bytes(len_b, seed.wrapping_add(1));
        client.backup_bytes("a", &a).unwrap();
        client.backup_bytes("b", &b).unwrap();

        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        let report = client.backup_bytes("a+b", &joined).unwrap();
        // Only a handful of chunks around the splice (each at most 16 KB) may be new.
        prop_assert!(
            report.transferred_bytes <= 4 * 16 * 1024,
            "transferred {} of {}",
            report.transferred_bytes,
            joined.len()
        );
    }
}
