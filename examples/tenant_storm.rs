//! Multi-tenant heavy-traffic storm: fairness, admission and isolation.
//!
//! A thousand-plus concurrent clients across a hundred tenants push
//! generational backups through the full service stack (auth → admission →
//! quota → rate-limit → fair-scheduler) against one shared cluster.  A hot
//! tenant runs 4× everyone else's client count; deficit-round-robin must keep
//! the Jain fairness index near 1.0 anyway.  A quarter of the tenants then
//! expire their oldest generation (delete + GC) while the rest concurrently
//! restore-verify their files byte for byte, and the run ends with full
//! isolation, partition and accounting checks.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example tenant_storm
//! ```
//!
//! Environment knobs (all optional):
//!
//! * `STORM_SCALE=ci` — the CI-sized reduction (24 tenants, 104 clients).
//! * `STORM_CRASH=1` — crash one node at a journal boundary mid-churn and
//!   supervise it back (switches the cluster to journaled durability).
//! * `SIGMA_FAULT_SEED=<n>` — perturbs payloads and the crash choice, the
//!   same matrix axis the fault-injection CI jobs sweep.

use sigma_dedupe::prelude::*;

fn main() {
    let env_seed: u64 = std::env::var("SIGMA_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let ci_scale = std::env::var("STORM_SCALE").is_ok_and(|s| s == "ci");
    let crash = std::env::var("STORM_CRASH").is_ok_and(|s| s == "1");

    let mut config = if ci_scale {
        TenantStormConfig::ci()
    } else {
        TenantStormConfig::default()
    };
    config.seed ^= env_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    if crash {
        config.crash_during_churn = true;
        config.sigma = SigmaConfig::builder()
            .super_chunk_size(16 * 1024)
            .container_capacity(256 * 1024)
            .durability(true)
            .build()
            .expect("storm crash config is valid");
    }

    println!("tenant storm: fair scheduling + admission + isolation");
    println!(
        "  traffic    : {} tenants x {} clients (+{} hot-tenant extras) x {} generations, seed {:#x}",
        config.tenants,
        config.clients_per_tenant,
        config.hot_tenant_extra_clients,
        config.generations,
        config.seed,
    );
    println!(
        "  stack      : admission {} reqs / {} MiB, DRR quantum {} KiB, {} KiB/tenant in flight, {} slots",
        config.max_inflight_requests,
        config.max_inflight_bytes >> 20,
        config.quantum_bytes >> 10,
        config.max_tenant_inflight_bytes >> 10,
        config.max_concurrent,
    );
    println!(
        "  churn      : every {}th tenant expires generation 0{}",
        config.churn_every,
        if config.crash_during_churn {
            " (with a supervised node crash)"
        } else {
            ""
        },
    );

    let report = run_tenant_storm(&config);

    let mut table = TextTable::new(vec!["figure", "value"]);
    table.add_row(vec![
        "clients / backups".into(),
        format!("{} / {}", report.clients, report.backups),
    ]);
    table.add_row(vec![
        "admitted / shed / retried".into(),
        format!("{} / {} / {}", report.admitted, report.shed, report.retries),
    ]);
    table.add_row(vec![
        "Jain fairness index".into(),
        format!(
            "{:.4} (first finisher: {})",
            report.fairness_index, report.first_finisher
        ),
    ]);
    table.add_row(vec![
        "hot tenant share / mean".into(),
        format!("{:.3}", report.hot_tenant_share_ratio),
    ]);
    table.add_row(vec![
        "restores intact".into(),
        format!("{} / {}", report.intact_restores, report.expected_restores),
    ]);
    table.add_row(vec![
        "expired unreachable".into(),
        format!("{} / {}", report.expired_unreachable, report.expired_files),
    ]);
    table.add_row(vec![
        "foreign probes isolated".into(),
        format!(
            "{} / {}",
            report.foreign_probes_isolated, report.foreign_probes
        ),
    ]);
    table.add_row(vec![
        "churned tenants / reclaimed".into(),
        format!(
            "{} / {}",
            report.churned_tenants,
            human_bytes(report.reclaimed_bytes)
        ),
    ]);
    table.add_row(vec![
        "crash recoveries".into(),
        report.recoveries.to_string(),
    ]);
    table.add_row(vec![
        "cluster physical vs Σ logical".into(),
        format!(
            "{} vs {}",
            human_bytes(report.cluster_physical_bytes),
            human_bytes(report.sum_tenant_logical_bytes)
        ),
    ]);
    println!();
    println!("{}", table.render());

    // Machine-readable summary lines: CI greps these and asserts on them.
    println!("fairness_index={:.4}", report.fairness_index);
    println!("isolation_holds={}", report.isolation_holds());
    println!("partition_holds={}", report.partition_holds());
    println!("accounting_consistent={}", report.accounting_consistent);
    println!("storm_holds={}", report.holds());

    assert!(
        report.holds(),
        "storm invariants failed: fairness {:.3}, isolation {}, partition {}, accounting {}",
        report.fairness_index,
        report.isolation_holds(),
        report.partition_holds(),
        report.accounting_consistent,
    );
    assert!(
        report.cross_tenant_dedup_observed(),
        "overlap groups should share chunks across tenants"
    );
}
