//! The multi-tenant heavy-traffic storm: hundreds of tenants, a thousand-plus
//! concurrent clients, one fixed cluster behind the full service stack.
//!
//! The scenario exercises exactly the properties the fairness and admission
//! layers exist for:
//!
//! 1. **ingest storm** — every client backs up its generational dataset
//!    through auth → admission → quota → rate-limit → fair-scheduler, retrying
//!    shed (503) responses with the service's own retry-after hint.  Tenants in
//!    the same *overlap group* back up identical datasets, so physical chunks
//!    are shared across tenants while logical accounting stays strictly
//!    per-tenant.  One **hot tenant** runs several times the client count of
//!    everyone else and must not starve the rest: at the moment the first
//!    tenant completes its workload, the scheduler's per-tenant completed
//!    bytes are snapshotted and scored with
//!    [`jain_fairness_index`] — deficit-round-robin keeps the index near 1.0
//!    even though the hot tenant's *demand* is wildly unequal.
//! 2. **churn** — a subset of tenants expires its oldest generation
//!    (delete + garbage collection) while every other tenant concurrently
//!    restore-verifies its files byte for byte; optionally a node is crashed
//!    at a journal-record boundary mid-churn and supervised back to life.
//! 3. **verification** — surviving files restore byte-identically, expired
//!    files and cross-tenant probes both read as `NotFound`, per-tenant live
//!    logical bytes partition the cluster's logical total, and cumulative
//!    per-tenant accounting converges (`live == ingested − freed`).
//!
//! The driver is [`run_tenant_storm`]; [`TenantStormConfig::default`] is the
//! full-scale storm (100 tenants, 1030 clients), [`TenantStormConfig::ci`] a
//! debug-friendly reduction with the same phase structure.

use sigma_core::{DedupCluster, SigmaConfig};
use sigma_metrics::jain_fairness_index;
use sigma_service::middleware::{
    AdmissionControl, FairScheduler, Middleware, Next, RateLimit, TenantQuota, TokenAuth,
};
use sigma_service::{
    backend::FILE_ID_KEY, Backend, BackupService, Operation, RequestEnvelope, ResponseEnvelope,
    ServiceBuilder, ServiceCode, ServiceStack,
};
use sigma_storage::CrashMode;
use sigma_workloads::payload::{generational_payloads, GenerationalPayloadParams};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::Duration;

/// One client's generational dataset: `(file name, payload)` per generation,
/// shared between the clients of an overlap group.
type ClientDataset = Arc<Vec<(String, Arc<Vec<u8>>)>>;
/// A tenant's surviving files for mid-churn verification: `(file id, payload)`.
type TenantFiles = Vec<(u64, Arc<Vec<u8>>)>;

/// Parameters of one tenant-storm run.
#[derive(Debug, Clone)]
pub struct TenantStormConfig {
    /// Number of tenants (each gets its own token, quota and scheduler queue).
    pub tenants: usize,
    /// Concurrent clients per tenant.
    pub clients_per_tenant: usize,
    /// Extra clients for tenant 0, the *hot* tenant whose demand dwarfs
    /// everyone else's.
    pub hot_tenant_extra_clients: usize,
    /// Backup generations per client.
    pub generations: usize,
    /// Bytes of each client's generation 0.
    pub initial_payload_bytes: usize,
    /// Fresh bytes appended per generation.
    pub growth_per_generation: usize,
    /// Fraction of 4 KB regions rewritten between generations.
    pub mutation_rate: f64,
    /// Tenants per overlap group: members back up identical datasets, so
    /// their chunks deduplicate across tenants (1 = no overlap).
    pub overlap_group: usize,
    /// Every Nth tenant expires its generation 0 during the churn phase
    /// (0 = no churn phase).
    pub churn_every: usize,
    /// Crash one node at a journal boundary mid-churn and supervise it back
    /// (requires [`SigmaConfig::durability`]).
    pub crash_during_churn: bool,
    /// Deduplication nodes in the (fixed) cluster.
    pub nodes: usize,
    /// Deterministic seed for payloads and fault choice.
    pub seed: u64,
    /// Admission bound on concurrent in-flight requests.
    pub max_inflight_requests: u64,
    /// Admission bound on in-flight payload bytes.
    pub max_inflight_bytes: u64,
    /// Fair-scheduler deficit quantum per round (bytes).
    pub quantum_bytes: u64,
    /// Fair-scheduler cap on one tenant's executing bytes.
    pub max_tenant_inflight_bytes: u64,
    /// Fair-scheduler global execution slots.
    pub max_concurrent: usize,
    /// Simulated service time per request, in microseconds (0 = none).
    ///
    /// Real dedup service spends milliseconds per super-chunk; the in-process
    /// store answers in microseconds, so without a service-time floor the
    /// scheduler's backlog drains faster than clients can refill it and the
    /// fairness figure measures thread-wakeup jitter instead of scheduling.
    pub service_time_us: u64,
    /// Cluster configuration.
    pub sigma: SigmaConfig,
}

impl Default for TenantStormConfig {
    fn default() -> Self {
        TenantStormConfig {
            tenants: 100,
            clients_per_tenant: 10,
            hot_tenant_extra_clients: 30,
            generations: 3,
            initial_payload_bytes: 8 * 1024,
            growth_per_generation: 2 * 1024,
            mutation_rate: 0.1,
            overlap_group: 4,
            churn_every: 4,
            crash_during_churn: false,
            nodes: 3,
            seed: 0x5709,
            max_inflight_requests: 4096,
            max_inflight_bytes: 256 << 20,
            quantum_bytes: 8 << 10,
            max_tenant_inflight_bytes: 24 << 10,
            max_concurrent: 8,
            service_time_us: 200,
            sigma: SigmaConfig::builder()
                .super_chunk_size(16 * 1024)
                .container_capacity(256 * 1024)
                .build()
                .expect("default storm config is valid"),
        }
    }
}

impl TenantStormConfig {
    /// A debug-friendly storm with the same phase structure: 24 tenants,
    /// 104 clients, two generations.
    pub fn ci() -> Self {
        TenantStormConfig {
            tenants: 24,
            clients_per_tenant: 4,
            hot_tenant_extra_clients: 8,
            generations: 2,
            ..TenantStormConfig::default()
        }
    }

    /// Total client count including the hot tenant's extras.
    pub fn total_clients(&self) -> usize {
        self.tenants * self.clients_per_tenant + self.hot_tenant_extra_clients
    }

    fn tenant_name(t: usize) -> String {
        format!("tenant-{:03}", t)
    }

    fn token(t: usize) -> String {
        format!("storm-token-{}", t)
    }

    /// Logical bytes one client ingests across all generations.
    fn bytes_per_client(&self) -> u64 {
        (0..self.generations)
            .map(|g| (self.initial_payload_bytes + g * self.growth_per_generation) as u64)
            .sum()
    }
}

/// The outcome of one tenant-storm run: fairness, isolation and accounting
/// figures plus the raw traffic counts.
#[derive(Debug, Clone)]
pub struct TenantStormReport {
    /// Tenants simulated.
    pub tenants: usize,
    /// Clients simulated (including the hot tenant's extras).
    pub clients: usize,
    /// Backups acknowledged.
    pub backups: usize,
    /// Requests the admission layer let in (including retries).
    pub admitted: u64,
    /// Requests the admission layer shed with a 503.
    pub shed: u64,
    /// Client-side retries (shed and crash-unavailable responses replayed).
    pub retries: u64,
    /// Jain fairness index over per-tenant scheduler-completed bytes,
    /// snapshotted the moment the first tenant finished ingesting.
    pub fairness_index: f64,
    /// The tenant whose completion triggered the fairness snapshot.
    pub first_finisher: String,
    /// The hot tenant's share of snapshot bytes, divided by the mean share.
    pub hot_tenant_share_ratio: f64,
    /// Restores attempted on files that should have survived.
    pub expected_restores: usize,
    /// Of those, restores that came back byte-identical.
    pub intact_restores: usize,
    /// Generation-0 files of churned tenants (expired during the run).
    pub expired_files: usize,
    /// Of those, files that correctly read as `NotFound` afterwards.
    pub expired_unreachable: usize,
    /// Cross-tenant restore probes attempted.
    pub foreign_probes: usize,
    /// Of those, probes correctly answered `NotFound`.
    pub foreign_probes_isolated: usize,
    /// Tenants that ran the delete + GC churn.
    pub churned_tenants: usize,
    /// Physical bytes the churn-phase garbage collections reclaimed.
    pub reclaimed_bytes: u64,
    /// Node crash recoveries supervised during churn.
    pub recoveries: usize,
    /// Cluster logical bytes at the end.
    pub cluster_logical_bytes: u64,
    /// Cluster physical bytes at the end.
    pub cluster_physical_bytes: u64,
    /// Σ per-tenant live logical bytes (director tags) at the end.
    pub sum_tenant_live_bytes: u64,
    /// Σ per-tenant cumulative ingested logical bytes.
    pub sum_tenant_logical_bytes: u64,
    /// True when every tenant's `live == ingested − freed` held.
    pub accounting_consistent: bool,
}

impl TenantStormReport {
    /// Per-tenant live logical bytes partition the cluster's logical total.
    pub fn partition_holds(&self) -> bool {
        self.sum_tenant_live_bytes == self.cluster_logical_bytes
    }

    /// Every surviving file restored byte-identically, every expired file and
    /// every cross-tenant probe read as `NotFound`.
    pub fn isolation_holds(&self) -> bool {
        self.intact_restores == self.expected_restores
            && self.expired_unreachable == self.expired_files
            && self.foreign_probes_isolated == self.foreign_probes
    }

    /// Overlapping tenants actually shared chunks: the cluster stores fewer
    /// physical bytes than the tenants ingested logically.
    pub fn cross_tenant_dedup_observed(&self) -> bool {
        self.cluster_physical_bytes < self.sum_tenant_logical_bytes
    }

    /// The headline acceptance: isolation, accounting, partition and a Jain
    /// fairness index of at least 0.9 while the hot tenant saturates.
    pub fn holds(&self) -> bool {
        self.isolation_holds()
            && self.partition_holds()
            && self.accounting_consistent
            && self.fairness_index >= 0.9
    }
}

/// Ground truth for one acknowledged backup.
struct StoredFile {
    tenant: usize,
    file_id: u64,
    generation: u64,
    data: Arc<Vec<u8>>,
}

/// Shared scenario state visible to every client thread.
struct Storm {
    stack: ServiceStack,
    backend: Arc<BackupService>,
    scheduler: Arc<FairScheduler>,
    admission: Arc<AdmissionControl>,
    next_request_id: AtomicU64,
    retries: AtomicU64,
    /// Clients still ingesting, per tenant; the thread that drops a tenant's
    /// count to zero takes the fairness snapshot (first tenant only).
    remaining_clients: Vec<AtomicUsize>,
    snapshot: Mutex<Option<(String, BTreeMap<String, u64>)>>,
}

impl Storm {
    fn next_id(&self) -> u64 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Calls the stack, replaying 503s (shed *and* crashed-node unavailability)
    /// after honouring the response's retry-after hint, capped so a storm of
    /// retries stays fast.
    fn call_with_retry(&self, req: &RequestEnvelope) -> ResponseEnvelope {
        const MAX_ATTEMPTS: usize = 200_000;
        for _ in 0..MAX_ATTEMPTS {
            let resp = self.stack.call(req.clone());
            if resp.code != ServiceCode::Unavailable {
                return resp;
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
            let hint_ms = parse_retry_hint_ms(&resp.message).unwrap_or(1).clamp(1, 2);
            thread::sleep(Duration::from_millis(hint_ms));
        }
        panic!("request never admitted after {} attempts", MAX_ATTEMPTS);
    }
}

/// A start gate below the fair scheduler: requests granted before the storm
/// officially begins block here, occupying every execution slot while the
/// remaining clients park their first request in the scheduler's queues.
/// Opening the gate therefore starts service at the moment of *maximum*
/// contention — the window the fairness snapshot is meant to measure —
/// instead of letting early-spawned clients race through an idle scheduler.
#[derive(Default)]
struct StartGate {
    open: Mutex<bool>,
    all_clear: std::sync::Condvar,
}

impl StartGate {
    fn open(&self) {
        *self.open.lock().expect("gate lock") = true;
        self.all_clear.notify_all();
    }
}

impl Middleware for StartGate {
    fn name(&self) -> &'static str {
        "start-gate"
    }

    fn handle(
        &self,
        req: RequestEnvelope,
        next: &dyn Next,
    ) -> Result<ResponseEnvelope, sigma_core::SigmaError> {
        let mut open = self.open.lock().expect("gate lock");
        while !*open {
            open = self.all_clear.wait(open).expect("gate lock");
        }
        drop(open);
        next.run(req)
    }
}

/// Extracts `N` from a "… retry after N ms …" rejection message.
fn parse_retry_hint_ms(message: &str) -> Option<u64> {
    let after = message.split("retry after ").nth(1)?;
    let digits: String = after.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Runs the full storm: ingest under contention, churn with concurrent
/// verification (and optional supervised crash), then final verification.
///
/// # Panics
///
/// Panics on configuration nonsense (zero tenants/clients/generations,
/// `crash_during_churn` without [`SigmaConfig::durability`]) and on any
/// response that violates the service contract (a non-503 rejection of a
/// legitimate request).
pub fn run_tenant_storm(config: &TenantStormConfig) -> TenantStormReport {
    assert!(config.tenants > 0, "need at least one tenant");
    assert!(config.clients_per_tenant > 0, "need at least one client");
    assert!(config.generations > 0, "need at least one generation");
    assert!(config.overlap_group > 0, "overlap group must be positive");
    assert!(
        !config.crash_during_churn || config.sigma.durability,
        "crash injection requires durability (journaled nodes)"
    );

    let cluster = Arc::new(DedupCluster::with_similarity_router(
        config.nodes,
        config.sigma.clone(),
    ));
    let backend = Arc::new(BackupService::new(cluster.clone()));
    let scheduler = Arc::new(FairScheduler::new(
        config.quantum_bytes,
        config.max_tenant_inflight_bytes,
        config.max_concurrent,
    ));
    let admission = Arc::new(
        AdmissionControl::new(config.max_inflight_requests, config.max_inflight_bytes)
            .with_retry_after_ms(1),
    );

    let mut auth = TokenAuth::new();
    let mut quota = TenantQuota::new();
    let budget_per_client = config.bytes_per_client() * 2 + (1 << 20);
    for t in 0..config.tenants {
        auth = auth.tenant(
            TenantStormConfig::tenant_name(t),
            TenantStormConfig::token(t),
        );
        let clients = config.clients_per_tenant
            + if t == 0 {
                config.hot_tenant_extra_clients
            } else {
                0
            };
        quota = quota.budget(
            TenantStormConfig::tenant_name(t),
            budget_per_client * clients as u64,
        );
    }
    let total_requests = (config.total_clients() * config.generations * 8 + 4096) as u64;
    let gate = Arc::new(StartGate::default());
    // The gate only makes sense when admission can hold every client's first
    // request at once; under a deliberately tight admission bound the storm
    // starts hot immediately (shed/retry is the behaviour under test there).
    let gated = config.max_inflight_requests >= config.total_clients() as u64;
    let mut builder = ServiceBuilder::new()
        .auth(auth)
        .layer(admission.clone())
        .quota(quota)
        .rate_limit(RateLimit::new(total_requests, total_requests as f64))
        .fair_scheduler_with(scheduler.clone());
    if gated {
        builder = builder.layer(gate.clone());
    }
    let service_time = Duration::from_micros(config.service_time_us);
    let stack = if service_time.is_zero() {
        builder.build_with_backend(backend.clone())
    } else {
        let service = backend.clone();
        builder.build_with_backend(Arc::new(move |req: RequestEnvelope| {
            thread::sleep(service_time);
            service.call(req)
        }))
    };

    // Per-client datasets.  Tenants in the same overlap group use the same
    // seeds, so their datasets — and therefore their chunks — are identical.
    struct ClientSpec {
        tenant: usize,
        index: usize,
        dataset: ClientDataset,
    }
    let mut specs: Vec<ClientSpec> = Vec::with_capacity(config.total_clients());
    let mut shared: BTreeMap<(usize, usize), ClientDataset> = BTreeMap::new();
    for t in 0..config.tenants {
        let group = t / config.overlap_group;
        let clients = config.clients_per_tenant
            + if t == 0 {
                config.hot_tenant_extra_clients
            } else {
                0
            };
        for c in 0..clients {
            let dataset = shared
                .entry((group, c))
                .or_insert_with(|| {
                    Arc::new(
                        generational_payloads(GenerationalPayloadParams {
                            seed: config
                                .seed
                                .wrapping_add((group as u64) << 32)
                                .wrapping_add(c as u64),
                            generations: config.generations,
                            initial_size: config.initial_payload_bytes,
                            mutation_rate: config.mutation_rate,
                            growth_per_generation: config.growth_per_generation,
                        })
                        .into_iter()
                        .map(|(name, data)| (name, Arc::new(data)))
                        .collect(),
                    )
                })
                .clone();
            specs.push(ClientSpec {
                tenant: t,
                index: c,
                dataset,
            });
        }
    }

    let storm = Arc::new(Storm {
        stack,
        backend,
        scheduler,
        admission,
        next_request_id: AtomicU64::new(1),
        retries: AtomicU64::new(0),
        remaining_clients: (0..config.tenants)
            .map(|t| {
                AtomicUsize::new(
                    config.clients_per_tenant
                        + if t == 0 {
                            config.hot_tenant_extra_clients
                        } else {
                            0
                        },
                )
            })
            .collect(),
        snapshot: Mutex::new(None),
    });

    // ── Phase 1: ingest storm ────────────────────────────────────────────
    // Every client parks on a start barrier, so all tenants contend from the
    // same instant — without it, early-spawned tenants would finish before
    // late ones even start and the fairness snapshot would be meaningless.
    let start = Arc::new(Barrier::new(specs.len()));
    let handles: Vec<_> = specs
        .into_iter()
        .map(|spec| {
            let storm = storm.clone();
            let start = start.clone();
            thread::Builder::new()
                .stack_size(256 * 1024)
                .spawn(move || {
                    start.wait();
                    ingest_client(&storm, &spec_tenant(&spec), &spec)
                })
                .expect("spawn client thread")
        })
        .collect();
    fn spec_tenant(spec: &ClientSpec) -> String {
        TenantStormConfig::tenant_name(spec.tenant)
    }
    fn ingest_client(storm: &Storm, tenant: &str, spec: &ClientSpec) -> Vec<StoredFile> {
        let token = TenantStormConfig::token(spec.tenant);
        let mut stored = Vec::with_capacity(spec.dataset.len());
        for (generation, (name, data)) in spec.dataset.iter().enumerate() {
            let req = RequestEnvelope::new(
                storm.next_id(),
                tenant,
                Operation::Backup {
                    file_name: format!("client-{}/{}", spec.index, name),
                    generation: generation as u64,
                },
            )
            .with_payload(data.as_ref().clone())
            .with_token(token.clone());
            let resp = storm.call_with_retry(&req);
            assert!(
                resp.is_ok(),
                "backup rejected for a non-overload reason: {:?} {}",
                resp.code,
                resp.message
            );
            stored.push(StoredFile {
                tenant: spec.tenant,
                file_id: resp.metadata_u64(FILE_ID_KEY).expect("backup returns id"),
                generation: generation as u64,
                data: data.clone(),
            });
        }
        // Last client of a tenant out: snapshot scheduler service shares the
        // first time any tenant completes — the maximally contended moment.
        if storm.remaining_clients[spec.tenant].fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut snap = storm.snapshot.lock().expect("snapshot lock");
            if snap.is_none() {
                *snap = Some((tenant.to_string(), storm.scheduler.completed_bytes()));
            }
        }
        stored
    }
    if gated {
        // Wait until every execution slot is occupied (blocked in the gate)
        // and every other client has parked its first request, then release.
        let want_parked = config.total_clients().saturating_sub(config.max_concurrent);
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while std::time::Instant::now() < deadline {
            let parked: usize = (0..config.tenants)
                .map(|t| {
                    storm
                        .scheduler
                        .pending_requests(&TenantStormConfig::tenant_name(t))
                })
                .sum();
            if parked >= want_parked {
                break;
            }
            thread::sleep(Duration::from_micros(200));
        }
        gate.open();
    }
    let mut files: Vec<StoredFile> = Vec::new();
    for handle in handles {
        files.extend(handle.join().expect("client thread panicked"));
    }
    let backups = files.len();
    cluster.flush();

    let (first_finisher, shares) = storm
        .snapshot
        .lock()
        .expect("snapshot lock")
        .clone()
        .expect("at least one tenant finished");
    let share_vec: Vec<f64> = (0..config.tenants)
        .map(|t| {
            shares
                .get(&TenantStormConfig::tenant_name(t))
                .copied()
                .unwrap_or(0) as f64
        })
        .collect();
    let fairness_index = jain_fairness_index(&share_vec);
    let mean_share = share_vec.iter().sum::<f64>() / share_vec.len() as f64;
    let hot_tenant_share_ratio = if mean_share > 0.0 {
        share_vec[0] / mean_share
    } else {
        0.0
    };

    // ── Phase 2: churn with concurrent verification ──────────────────────
    let churned: Vec<usize> = if config.churn_every == 0 {
        Vec::new()
    } else {
        (0..config.tenants)
            .filter(|t| t % config.churn_every == 0)
            .collect()
    };
    let reclaimed = Arc::new(AtomicU64::new(0));
    let recoveries = Arc::new(AtomicUsize::new(0));
    if !churned.is_empty() {
        let gc_turnstile = Arc::new(Mutex::new(()));
        let mut workers = Vec::new();
        for &t in &churned {
            let storm = storm.clone();
            let reclaimed = reclaimed.clone();
            let gc_turnstile = gc_turnstile.clone();
            workers.push(
                thread::Builder::new()
                    .stack_size(256 * 1024)
                    .spawn(move || {
                        let tenant = TenantStormConfig::tenant_name(t);
                        let token = TenantStormConfig::token(t);
                        let del = storm.call_with_retry(
                            &RequestEnvelope::new(
                                storm.next_id(),
                                tenant.clone(),
                                Operation::DeleteGeneration { generation: 0 },
                            )
                            .with_token(token.clone()),
                        );
                        assert!(del.is_ok(), "delete failed: {}", del.message);
                        // GC is cluster-scoped: serialize the sweeps so each
                        // one's report stays attributable, while restores on
                        // other threads keep running underneath.
                        let _turn = gc_turnstile.lock().expect("gc turnstile");
                        let gc = storm.call_with_retry(
                            &RequestEnvelope::new(
                                storm.next_id(),
                                tenant,
                                Operation::CollectGarbage,
                            )
                            .with_token(token),
                        );
                        assert!(gc.is_ok(), "gc failed: {}", gc.message);
                        reclaimed.fetch_add(
                            gc.metadata_u64("bytes_reclaimed").unwrap_or(0),
                            Ordering::Relaxed,
                        );
                    })
                    .expect("spawn churn thread"),
            );
        }
        // Every non-churned tenant restore-verifies all its files while the
        // deletes and sweeps run.
        let files_by_tenant: BTreeMap<usize, TenantFiles> = {
            let mut map: BTreeMap<usize, TenantFiles> = BTreeMap::new();
            for f in &files {
                if !churned.contains(&f.tenant) {
                    map.entry(f.tenant)
                        .or_default()
                        .push((f.file_id, f.data.clone()));
                }
            }
            map
        };
        for (t, tenant_files) in files_by_tenant {
            let storm = storm.clone();
            workers.push(
                thread::Builder::new()
                    .stack_size(256 * 1024)
                    .spawn(move || {
                        let tenant = TenantStormConfig::tenant_name(t);
                        let token = TenantStormConfig::token(t);
                        for (file_id, data) in tenant_files {
                            let resp = storm.call_with_retry(
                                &RequestEnvelope::new(
                                    storm.next_id(),
                                    tenant.clone(),
                                    Operation::Restore { file_id },
                                )
                                .with_token(token.clone()),
                            );
                            assert!(resp.is_ok(), "mid-churn restore failed: {}", resp.message);
                            assert!(
                                resp.payload == *data,
                                "tenant {} file {} corrupted during another tenant's churn",
                                tenant,
                                file_id
                            );
                        }
                    })
                    .expect("spawn verify thread"),
            );
        }
        // Optional mid-churn crash, supervised back to life.
        let supervisor = if config.crash_during_churn {
            let victim = cluster.node_ids()[config.seed as usize % config.nodes];
            let node = cluster.node_by_id(victim).expect("victim exists");
            let journal = node
                .journal()
                .expect("durability gives every node a journal");
            let mode = if config.seed % 2 == 0 {
                CrashMode::Clean
            } else {
                CrashMode::Torn
            };
            journal.arm_crash_at_seq(journal.next_seq() + 1, mode);
            let cluster = cluster.clone();
            let recoveries = recoveries.clone();
            let stop = Arc::new(AtomicUsize::new(0));
            let stop_flag = stop.clone();
            let handle = thread::spawn(move || {
                while stop_flag.load(Ordering::Acquire) == 0 {
                    for id in cluster.crashed_nodes() {
                        cluster
                            .restart_node(id)
                            .expect("journaled node must recover");
                        recoveries.fetch_add(1, Ordering::Relaxed);
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                // One final sweep so nothing stays down after the last worker.
                for id in cluster.crashed_nodes() {
                    cluster
                        .restart_node(id)
                        .expect("journaled node must recover");
                    recoveries.fetch_add(1, Ordering::Relaxed);
                }
            });
            Some((handle, stop))
        } else {
            None
        };
        for worker in workers {
            worker.join().expect("churn worker panicked");
        }
        if let Some((handle, stop)) = supervisor {
            stop.store(1, Ordering::Release);
            handle.join().expect("supervisor panicked");
        }
    }

    // ── Phase 3: final verification ──────────────────────────────────────
    let mut expected_restores = 0usize;
    let mut intact_restores = 0usize;
    let mut expired_files = 0usize;
    let mut expired_unreachable = 0usize;
    for f in &files {
        let tenant = TenantStormConfig::tenant_name(f.tenant);
        let resp = storm.call_with_retry(
            &RequestEnvelope::new(
                storm.next_id(),
                tenant,
                Operation::Restore { file_id: f.file_id },
            )
            .with_token(TenantStormConfig::token(f.tenant)),
        );
        if churned.contains(&f.tenant) && f.generation == 0 {
            expired_files += 1;
            if resp.code == ServiceCode::NotFound {
                expired_unreachable += 1;
            }
        } else {
            expected_restores += 1;
            if resp.is_ok() && resp.payload == *f.data {
                intact_restores += 1;
            }
        }
    }

    // Cross-tenant probes: a tenant restoring another tenant's file must see
    // the same NotFound as a nonexistent ID.
    let mut foreign_probes = 0usize;
    let mut foreign_probes_isolated = 0usize;
    for f in files.iter().step_by((files.len() / 16).max(1)) {
        let prober = (f.tenant + 1) % config.tenants;
        if prober == f.tenant {
            continue;
        }
        foreign_probes += 1;
        let resp = storm.call_with_retry(
            &RequestEnvelope::new(
                storm.next_id(),
                TenantStormConfig::tenant_name(prober),
                Operation::Restore { file_id: f.file_id },
            )
            .with_token(TenantStormConfig::token(prober)),
        );
        if resp.code == ServiceCode::NotFound {
            foreign_probes_isolated += 1;
        }
    }

    // Accounting convergence: live == ingested − freed per tenant, and the
    // live bytes partition the cluster's logical total.
    let reports = storm.backend.tenant_stats();
    let accounting_consistent = reports.values().all(|r| {
        r.live_logical_bytes == r.logical_bytes.saturating_sub(r.freed_bytes)
            && r.logical_bytes >= r.freed_bytes
    });
    let sum_tenant_live_bytes: u64 = reports.values().map(|r| r.live_logical_bytes).sum();
    let sum_tenant_logical_bytes: u64 = reports.values().map(|r| r.logical_bytes).sum();
    let stats = cluster.stats();

    TenantStormReport {
        tenants: config.tenants,
        clients: config.total_clients(),
        backups,
        admitted: storm.admission.admitted_count(),
        shed: storm.admission.shed_count(),
        retries: storm.retries.load(Ordering::Relaxed),
        fairness_index,
        first_finisher,
        hot_tenant_share_ratio,
        expected_restores,
        intact_restores,
        expired_files,
        expired_unreachable,
        foreign_probes,
        foreign_probes_isolated,
        churned_tenants: churned.len(),
        reclaimed_bytes: reclaimed.load(Ordering::Relaxed),
        recoveries: recoveries.load(Ordering::Relaxed),
        cluster_logical_bytes: stats.logical_bytes,
        cluster_physical_bytes: stats.physical_bytes,
        sum_tenant_live_bytes,
        sum_tenant_logical_bytes,
        accounting_consistent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Storms spawn dozens of threads and assert on timing-sensitive
    /// fairness figures; running two at once would oversubscribe the CPU and
    /// turn the Jain index into a coin flip, so the tests take turns (shared
    /// with fig4b's striping comparison, which is timing-sensitive too).
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        crate::test_support::cpu_heavy_test_turn()
    }

    fn tiny() -> TenantStormConfig {
        TenantStormConfig {
            tenants: 8,
            clients_per_tenant: 2,
            hot_tenant_extra_clients: 4,
            generations: 4,
            initial_payload_bytes: 6 * 1024,
            growth_per_generation: 1024,
            overlap_group: 4,
            churn_every: 4,
            // ≈ one request: each tenant keeps a parked backlog until its
            // demand is exhausted, so no DRR turn is ever forfeited to
            // client-wakeup jitter (tenants here have only two clients).
            max_tenant_inflight_bytes: 8 << 10,
            ..TenantStormConfig::default()
        }
    }

    #[test]
    fn tiny_storm_is_fair_isolated_and_accounted() {
        let _turn = serial();
        let report = run_tenant_storm(&tiny());
        assert_eq!(report.tenants, 8);
        assert_eq!(report.clients, 20);
        assert_eq!(report.backups, 80);
        assert!(
            report.holds(),
            "storm invariants failed: fairness {:.3}, isolation {}, partition {}, accounting {}",
            report.fairness_index,
            report.isolation_holds(),
            report.partition_holds(),
            report.accounting_consistent
        );
        assert!(
            report.cross_tenant_dedup_observed(),
            "overlap groups must share chunks: physical {} vs logical {}",
            report.cluster_physical_bytes,
            report.sum_tenant_logical_bytes
        );
        assert_eq!(report.churned_tenants, 2, "tenants 0 and 4 churn");
        assert!(report.expired_files > 0);
    }

    #[test]
    fn storm_sheds_and_retries_under_a_tight_admission_bound() {
        let _turn = serial();
        let report = run_tenant_storm(&TenantStormConfig {
            max_inflight_requests: 2,
            churn_every: 0,
            ..tiny()
        });
        // With 2 admission slots for 20 clients, whoever wins the retry race
        // finishes first — fairness is admission luck, not scheduling, so this
        // test asserts the shedding mechanics and the safety invariants only.
        assert!(report.isolation_holds(), "isolation must survive shedding");
        assert!(report.partition_holds(), "partition must survive shedding");
        assert!(
            report.accounting_consistent,
            "accounting must survive retries"
        );
        assert!(
            report.shed > 0,
            "20 clients against 2 admission slots must shed"
        );
        assert_eq!(report.retries, report.shed, "every shed request retried");
    }

    #[test]
    fn storm_survives_a_mid_churn_crash() {
        let _turn = serial();
        let report = run_tenant_storm(&TenantStormConfig {
            crash_during_churn: true,
            sigma: SigmaConfig::builder()
                .super_chunk_size(16 * 1024)
                .container_capacity(256 * 1024)
                .durability(true)
                .build()
                .unwrap(),
            ..tiny()
        });
        assert!(
            report.holds(),
            "crash-churn storm failed: fairness {:.3}, isolation {}",
            report.fairness_index,
            report.isolation_holds()
        );
    }

    #[test]
    fn ci_storm_structure() {
        let config = TenantStormConfig::ci();
        assert_eq!(config.total_clients(), 104);
        let full = TenantStormConfig::default();
        assert!(full.total_clients() >= 1000, "full storm is ≥1000 clients");
        assert!(full.tenants >= 100, "full storm is ≥100 tenants");
    }
}
